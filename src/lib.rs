//! Umbrella crate for the STAIR codes reproduction workspace.
//!
//! Re-exports the public API of every member crate so that the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/`
//! can use a single dependency. Library users should normally depend on the
//! individual crates (`stair`, `stair-rs`, `stair-reliability`, ...)
//! directly.

pub use stair;
pub use stair_arraysim as arraysim;
pub use stair_cache as cache;
pub use stair_code as code;
pub use stair_device as device;
pub use stair_gf as gf;
pub use stair_gfmatrix as gfmatrix;
pub use stair_net as net;
pub use stair_obs as obs;
pub use stair_reliability as reliability;
pub use stair_rs as rs;
pub use stair_sd as sd;
pub use stair_store as store;
