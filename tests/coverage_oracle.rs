//! Exhaustive oracle for the central fault-tolerance theorem (§4.2): for a
//! small configuration, enumerate *every* subset of stored sectors; every
//! subset within the `(m, e)` coverage must decode back to the pristine
//! stripe. (Out-of-coverage subsets may or may not be recoverable — the
//! guarantee is one-directional — but whenever decode claims success the
//! result must be correct.)

use stair::{Config, StairCodec, Stripe};

#[test]
fn every_covered_pattern_decodes_and_no_success_is_wrong() {
    let (n, r) = (5usize, 3usize);
    let config = Config::new(n, r, 1, &[1, 2]).unwrap();
    let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
    let mut stripe = Stripe::new(config.clone(), 2).unwrap();
    stripe.fill_pattern(77);
    codec.encode(&mut stripe).unwrap();
    let pristine = stripe.clone();

    let cells = n * r;
    let mut covered_cases = 0usize;
    let mut lucky_recoveries = 0usize;
    for mask in 1u32..(1 << cells) {
        let erased: Vec<(usize, usize)> = (0..cells)
            .filter(|&q| mask & (1 << q) != 0)
            .map(|q| (q / n, q % n))
            .collect();
        let covered = config.covers(&erased).unwrap();
        // Keep runtime sane: decode every covered pattern, and sample the
        // uncovered ones (they only assert "success implies correctness").
        if !covered && mask % 17 != 0 {
            continue;
        }
        let mut damaged = pristine.clone();
        damaged.erase(&erased).unwrap();
        match codec.decode(&mut damaged, &erased) {
            Ok(()) => {
                assert_eq!(
                    damaged, pristine,
                    "decode succeeded but produced wrong data for {erased:?}"
                );
                if covered {
                    covered_cases += 1;
                } else {
                    lucky_recoveries += 1;
                }
            }
            Err(stair::Error::Unrecoverable { .. }) => {
                assert!(
                    !covered,
                    "pattern {erased:?} is within coverage but failed to decode"
                );
            }
            Err(e) => panic!("unexpected error for {erased:?}: {e}"),
        }
    }
    // Sanity on the census: the coverage space is non-trivial, and peeling
    // really does recover some out-of-coverage patterns (e.g. one erasure
    // in m + m' + 1 distinct rows), which is why coverage is a guarantee,
    // not a characterization.
    assert!(
        covered_cases > 500,
        "only {covered_cases} covered cases seen"
    );
    assert!(
        lucky_recoveries > 0,
        "expected some recoverable out-of-coverage patterns"
    );
}
