//! Workspace-level integration: the full Fig. 11 configuration grid
//! constructs and round-trips; STAIR covers configurations where the SD
//! candidate construction provably is not SD; analytic and simulated
//! reliability agree end-to-end.

use stair::{Config, StairCodec, Stripe};
use stair_arraysim::montecarlo::estimate_p_str;
use stair_gf::Gf8;
use stair_reliability::{p_chk, p_str, Scheme, SectorModel};
use stair_sd::SdCode;

/// Every configuration of the paper's speed sweeps (§6.2) must construct
/// and survive its worst-case failure pattern.
#[test]
fn fig11_grid_constructs_and_round_trips() {
    for &(n, r) in &[
        (8usize, 16usize),
        (16, 16),
        (24, 16),
        (16, 8),
        (16, 24),
        (32, 16),
    ] {
        for m in 1..=3usize {
            for s in 1..=4usize {
                let Some(e) = worst_case_e(n, r, m, s) else {
                    continue;
                };
                let config = Config::new(n, r, m, &e).unwrap();
                let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
                let mut stripe = Stripe::new(config, 8).unwrap();
                stripe.fill_pattern((n + r + m + s) as u8);
                codec.encode(&mut stripe).unwrap();
                let pristine = stripe.clone();
                // Worst case: m leftmost devices + e at the bottoms of the
                // next m' chunks.
                let mut erased: Vec<(usize, usize)> = Vec::new();
                for c in 0..m {
                    erased.extend((0..r).map(|row| (row, c)));
                }
                for (i, &el) in e.iter().enumerate() {
                    erased.extend((r - el..r).map(|row| (row, m + i)));
                }
                stripe.erase(&erased).unwrap();
                codec.decode(&mut stripe, &erased).unwrap();
                assert_eq!(stripe, pristine, "n={n} r={r} m={m} e={e:?}");
            }
        }
    }
}

fn worst_case_e(n: usize, r: usize, m: usize, s: usize) -> Option<Vec<usize>> {
    // Smallest-m' feasible partition is enough for a construction test.
    for m_prime in 1..=s {
        let base = s / m_prime;
        let rem = s % m_prime;
        let mut e: Vec<usize> = vec![base; m_prime];
        for i in 0..rem {
            let idx = m_prime - 1 - i;
            e[idx] += 1;
        }
        e.sort_unstable();
        if Config::new(n, r, m, &e).is_ok() {
            return Some(e);
        }
    }
    None
}

/// The paper's motivating gap: an SD candidate construction that fails
/// exhaustive verification at parameters where STAIR provably works.
#[test]
fn stair_covers_where_sd_candidate_fails() {
    // Search small parameter space for a candidate that is NOT SD.
    let mut found = None;
    'outer: for n in 4..=6usize {
        for r in 2..=4usize {
            for s in 2..=3usize {
                if s + 1 >= n {
                    continue;
                }
                if let Ok(code) = SdCode::<Gf8>::new(n, r, 1, s) {
                    if code.verify_fault_tolerance().is_err() {
                        found = Some((n, r, 1usize, s));
                        break 'outer;
                    }
                }
            }
        }
    }
    let Some((n, r, m, s)) = found else {
        // All small candidates verified — the algebraic family is strong
        // here; that is fine, the claim is about generality, not about a
        // specific failure. Exercise STAIR at s = 4 instead (beyond any
        // known SD construction).
        let config = Config::new(8, 8, 1, &[1, 1, 1, 1]).unwrap();
        assert!(StairCodec::<Gf8>::new(config).is_ok());
        return;
    };
    // STAIR at the same (n, r, m) with e = (1,...,1) summing to s always
    // constructs and repairs its coverage.
    let e = vec![1usize; s];
    let config = Config::new(n, r, m, &e).unwrap();
    let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
    let mut stripe = Stripe::new(config, 4).unwrap();
    stripe.fill_pattern(1);
    codec.encode(&mut stripe).unwrap();
    let pristine = stripe.clone();
    let mut erased: Vec<(usize, usize)> = (0..r).map(|i| (i, 0)).collect();
    for k in 0..s {
        erased.push((0, 1 + k));
    }
    stripe.erase(&erased).unwrap();
    codec.decode(&mut stripe, &erased).unwrap();
    assert_eq!(stripe, pristine, "STAIR at (n={n}, r={r}, m={m}, s={s})");
}

/// End-to-end reliability pipeline: the Monte-Carlo estimate through the
/// arraysim failure injector agrees with the Appendix-B enumerator.
#[test]
fn reliability_pipeline_agrees() {
    let (n, m, r) = (8usize, 1usize, 8usize);
    let p = 0.01;
    let scheme = Scheme::stair(&[1, 1]);
    let pchk = p_chk(&SectorModel::Independent, p, r);
    let analytic = p_str(&scheme, n, m, &pchk);
    let est = estimate_p_str(
        &scheme,
        n,
        m,
        r,
        p,
        &SectorModel::Independent,
        300_000,
        4,
        99,
    );
    assert!(
        (est.p - analytic).abs() < 5.0 * est.std_err.max(1e-6),
        "MC {} ± {} vs analytic {}",
        est.p,
        est.std_err,
        analytic
    );
}

/// Umbrella crate re-exports compose.
#[test]
fn umbrella_reexports_work() {
    let config = stair_repro::stair::Config::new(4, 2, 1, &[1]).unwrap();
    let _ = stair_repro::gf::Gf8;
    assert_eq!(config.s(), 1);
}
