//! Cross-crate tests of the paper's §2 special-case equivalences: specific
//! `e` vectors make STAIR behave like an SD code, like a plain systematic
//! `(n, n−m−1)` code, or like the IDR scheme.

use stair::{Config, StairCodec, Stripe};
use stair_gf::Gf8;
use stair_sd::{IdrScheme, SdCode, SdStripe};

fn encoded(config: &Config, seed: u8) -> (StairCodec, Stripe) {
    let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
    let mut stripe = Stripe::new(config.clone(), 8).unwrap();
    stripe.fill_pattern(seed);
    codec.encode(&mut stripe).unwrap();
    (codec, stripe)
}

/// e = (1): "the STAIR code is a new construction of such a PMDS/SD code
/// with s = 1" — both repair any m devices plus any one extra sector.
#[test]
fn e_equals_1_matches_sd_coverage() {
    let (n, r, m) = (6usize, 4usize, 1usize);
    let config = Config::new(n, r, m, &[1]).unwrap();
    let (codec, pristine) = encoded(&config, 3);
    let sd: SdCode<Gf8> = SdCode::new(n, r, m, 1).unwrap();
    let mut sd_stripe = SdStripe::new(&sd, 8);
    sd_stripe.fill_pattern(3);
    sd.encode(&mut sd_stripe).unwrap();
    let sd_pristine = sd_stripe.clone();

    // Every (device, extra-sector) combination must be repairable by both.
    for dev in 0..n {
        for q in 0..r * n {
            let (row, col) = (q / n, q % n);
            if col == dev {
                continue;
            }
            let mut erased: Vec<(usize, usize)> = (0..r).map(|i| (i, dev)).collect();
            erased.push((row, col));

            let mut damaged = pristine.clone();
            damaged.erase(&erased).unwrap();
            codec.decode(&mut damaged, &erased).unwrap();
            assert_eq!(
                damaged, pristine,
                "STAIR failed at dev={dev} extra=({row},{col})"
            );

            let mut sd_damaged = sd_pristine.clone();
            sd_damaged.erase(&erased);
            sd.decode(&mut sd_damaged, &erased).unwrap();
            assert_eq!(
                sd_damaged, sd_pristine,
                "SD failed at dev={dev} extra=({row},{col})"
            );
        }
    }
}

/// e = (r): "the corresponding STAIR code has the same function as a
/// systematic (n, n−m−1)-code" — i.e., it tolerates m + 1 full device
/// failures.
#[test]
fn e_equals_r_tolerates_one_extra_device() {
    let (n, r, m) = (7usize, 4usize, 2usize);
    let config = Config::new(n, r, m, &[r]).unwrap();
    let (codec, pristine) = encoded(&config, 9);
    // Any 3 = m + 1 devices may fail.
    for d1 in 0..n {
        for d2 in d1 + 1..n {
            for d3 in d2 + 1..n {
                let erased: Vec<(usize, usize)> = [d1, d2, d3]
                    .iter()
                    .flat_map(|&d| (0..r).map(move |i| (i, d)))
                    .collect();
                assert!(codec.config().covers(&erased).unwrap());
                let mut damaged = pristine.clone();
                damaged.erase(&erased).unwrap();
                codec.decode(&mut damaged, &erased).unwrap();
                assert_eq!(damaged, pristine, "failed for devices {d1},{d2},{d3}");
            }
        }
    }
}

/// e = (ε, …, ε) with m' = n − m: "the same function as an intra-device
/// redundancy (IDR) scheme" — every surviving chunk may lose ε sectors.
#[test]
fn e_uniform_matches_idr_coverage() {
    let (n, r, m, eps) = (6usize, 6usize, 1usize, 2usize);
    let e = vec![eps; n - m];
    let config = Config::new(n, r, m, &e).unwrap();
    let (codec, pristine) = encoded(&config, 17);

    // One full device + ε failures in every other *data* chunk (the IDR
    // scheme keeps no local parity inside its device-parity chunks, so the
    // comparable pattern confines sector failures to data chunks).
    let dev = 2usize;
    let mut erased: Vec<(usize, usize)> = (0..r).map(|i| (i, dev)).collect();
    for c in 0..n - m {
        if c != dev {
            erased.push((c % r, c));
            erased.push(((c + 3) % r, c));
        }
    }
    assert!(codec.config().covers(&erased).unwrap());
    let mut damaged = pristine.clone();
    damaged.erase(&erased).unwrap();
    codec.decode(&mut damaged, &erased).unwrap();
    assert_eq!(damaged, pristine);

    // The IDR scheme handles the same pattern with more redundancy.
    let idr: IdrScheme<Gf8> = IdrScheme::new(n, r, m, eps).unwrap();
    let mut cells = vec![vec![0u8; 8]; n * r];
    for i in 0..r - eps {
        for c in 0..n - m {
            cells[i * n + c].fill((i * 11 + c * 3 + 1) as u8);
        }
    }
    idr.encode(&mut cells).unwrap();
    let idr_pristine = cells.clone();
    for &(i, c) in &erased {
        cells[i * n + c].fill(0);
    }
    idr.decode(&mut cells, &erased).unwrap();
    assert_eq!(cells, idr_pristine);

    // ...but IDR costs (n−m)·ε redundant sectors vs STAIR's flexibility to
    // shrink e. Space accounting from §2:
    let idr_cost = idr.redundant_sectors();
    let stair_cost = m * r + codec.config().s();
    assert_eq!(idr_cost, stair_cost, "with e uniform the two coincide");
    let leaner = Config::new(n, r, m, &[1, eps]).unwrap();
    assert!(m * r + leaner.s() < idr_cost, "a leaner e saves space");
}
