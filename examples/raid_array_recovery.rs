//! A storage-array session: latent sector errors accumulate, a scrub
//! repairs them, then two devices fail with fresh bursts present — the
//! exact mixed failure mode STAIR codes are designed for.
//!
//! Run with: `cargo run --release --example raid_array_recovery`

use stair::Config;
use stair_arraysim::StorageArray;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // n = 10 devices, 32-sector chunks, 2 device failures tolerated,
    // bursts up to 3 sectors in one chunk plus 1 more sector elsewhere.
    let config = Config::new(10, 32, 2, &[1, 3])?;
    let mut array = StorageArray::new(config, 512, 64)?;
    array.write_blocks(0x42)?;
    println!("array: 10 devices × 64 stripes × 32 sectors, e = (1,3)");

    // Month 1: scattered latent sector errors, found by the scrubber.
    array.inject_sector_failure(3, 1, 7);
    array.inject_sector_failure(17, 4, 0);
    array.inject_burst(40, 8, 12, 2);
    let report = array.scrub()?;
    println!(
        "scrub: repaired {} sectors across {} stripes",
        report.sectors_repaired, report.stripes_repaired
    );

    // Month 2: two whole devices fail while stripes 5 and 6 carry fresh
    // damage discovered during rebuild.
    array.fail_device(2);
    array.fail_device(9);
    array.inject_burst(5, 6, 20, 3);
    array.inject_sector_failure(6, 0, 31);
    let report = array.repair_all()?;
    println!(
        "rebuild: repaired {} sectors across {} stripes",
        report.sectors_repaired, report.stripes_repaired
    );

    array.verify_blocks(0x42)?;
    println!("all payloads verified ✔");
    Ok(())
}
