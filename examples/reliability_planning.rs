//! Capacity/reliability planning with the §7 analytical models: given a
//! target MTTDL, find the cheapest sector-failure coverage `e` under both
//! independent and bursty sector-failure assumptions.
//!
//! Run with: `cargo run --release --example reliability_planning`

use stair_reliability::{BurstModel, Scheme, SectorModel, SystemParams};

fn main() {
    let params = SystemParams::paper_defaults();
    let p_bit = 1e-12;
    let target_hours = 1.0e4;

    let candidates: Vec<Vec<usize>> = vec![
        vec![1],
        vec![2],
        vec![1, 1],
        vec![3],
        vec![1, 2],
        vec![1, 1, 1],
        vec![4],
        vec![1, 3],
        vec![2, 2],
    ];

    for (name, model) in [
        ("independent sector failures", SectorModel::Independent),
        (
            "bursty failures (b1=0.9, α=1)",
            SectorModel::Correlated(BurstModel::from_pareto(0.9, 1.0, params.r)),
        ),
    ] {
        println!("assuming {name}, P_bit = {p_bit:.0e}, target MTTDL ≥ {target_hours:.0e} h:");
        let mut best: Option<(&Vec<usize>, usize, f64)> = None;
        for e in &candidates {
            let scheme = Scheme::stair(e);
            let mttdl = params.mttdl_sys(&scheme, &model, p_bit);
            let s = scheme.s();
            println!(
                "  e={:<12} s={s}  MTTDL_sys = {mttdl:>12.3e} h",
                format!("{e:?}")
            );
            if mttdl >= target_hours {
                match best {
                    Some((_, bs, bm)) if (bs, -bm) <= (s, -mttdl) => {}
                    _ => best = Some((e, s, mttdl)),
                }
            }
        }
        match best {
            Some((e, s, mttdl)) => println!(
                "  -> cheapest passing configuration: e = {e:?} ({s} parity sectors, \
                 {mttdl:.3e} h)\n"
            ),
            None => println!("  -> no candidate meets the target; widen e or add devices\n"),
        }
    }
}
