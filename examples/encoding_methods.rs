//! A look inside the codec: the upstairs/downstairs schedules (the paper's
//! Tables 2–3), the Mult_XOR cost model (Eq. 5/6), and automatic method
//! selection (§5.3).
//!
//! Run with: `cargo run --release --example encoding_methods`

use stair::{Config, EncodingMethod, MultXorCounts, StairCodec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Config::new(8, 4, 2, &[1, 1, 2])?;
    let codec: StairCodec = StairCodec::new(config.clone())?;

    println!("config: n=8 r=4 m=2 e=(1,1,2) — the paper's running example\n");
    println!("downstairs encoding schedule (Table 3):");
    let down = codec
        .encode_schedule(EncodingMethod::Downstairs)
        .expect("inside placement");
    print!("{}", down.render(codec.layout()));

    println!("\nupstairs encoding schedule:");
    let up = codec
        .encode_schedule(EncodingMethod::Upstairs)
        .expect("inside placement");
    print!("{}", up.render(codec.layout()));

    let counts = codec.mult_xor_counts();
    println!(
        "\nMult_XOR counts: upstairs={} downstairs={} standard={}",
        counts.upstairs, counts.downstairs, counts.standard
    );
    println!("selected method: {:?}", codec.best_method());

    // The crossover: small m' favours downstairs, large m' upstairs.
    println!("\nmethod selection across e for n=8, r=16, m=2, s=4:");
    for e in [
        vec![4],
        vec![1, 3],
        vec![2, 2],
        vec![1, 1, 2],
        vec![1, 1, 1, 1],
    ] {
        let cfg = Config::new(8, 16, 2, &e)?;
        let c = MultXorCounts::analytic(&cfg);
        let codec: StairCodec = StairCodec::new(cfg)?;
        println!(
            "  e={:<12} up={:<5} down={:<5} -> {:?}",
            format!("{e:?}"),
            c.upstairs,
            c.downstairs,
            codec.best_method()
        );
    }
    Ok(())
}
