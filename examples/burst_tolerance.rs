//! Configuring the sector-failure coverage `e` for burst tolerance (§2):
//! compares STAIR against intra-device redundancy (IDR), SD codes, and
//! whole-device parity for a β = 4 burst requirement, and demonstrates a
//! recovery SD codes cannot be built for.
//!
//! Run with: `cargo run --release --example burst_tolerance`

use stair::{Config, SpaceComparison, StairCodec, Stripe};
use stair_gf::Gf8;
use stair_sd::SdCode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Requirement from the paper's §2: n = 8, m = 2 (RAID-6), tolerate a
    // burst of β = 4 sector failures plus one more sector elsewhere.
    let (n, r, m) = (8usize, 16usize, 2usize);
    let config = Config::new(n, r, m, &[1, 4])?;
    let cmp = SpaceComparison::for_config(&config);

    println!("burst requirement: β = 4 plus one extra sector; n=8, r=16, m=2\n");
    println!("redundant sectors per stripe (beyond nothing):");
    println!(
        "  traditional EC (m+m' devices): {}",
        cmp.traditional_sectors
    );
    println!("  IDR (ε = 4 in every chunk)   : {}", cmp.idr_sectors);
    println!("  STAIR e = (1,4)              : {}", cmp.stair_sectors);
    println!(
        "  -> STAIR saves {} sectors over IDR per stripe",
        cmp.idr_sectors - cmp.stair_sectors
    );

    // SD codes cannot express this: they would need s = 5 > 3.
    match SdCode::<Gf8>::new(n, r, m, 5) {
        Ok(code) => match code.verify_fault_tolerance() {
            Ok(()) => println!("\nSD s=5: unexpectedly verified (construction found!)"),
            Err(e) => println!("\nSD s=5 candidate construction fails verification: {e}"),
        },
        Err(e) => println!("\nSD s=5: {e}"),
    }

    // STAIR handles it: survive two device failures + a 4-burst + 1 sector.
    let codec: StairCodec = StairCodec::new(config.clone())?;
    let mut stripe = Stripe::new(config.clone(), 512)?;
    let payload: Vec<u8> = (0..stripe.data_capacity())
        .map(|i| (i * 7 % 253) as u8)
        .collect();
    stripe.write_data(&payload)?;
    codec.encode(&mut stripe)?;

    let mut erased: Vec<(usize, usize)> = Vec::new();
    erased.extend((0..r).map(|i| (i, 6))); // device 6
    erased.extend((0..r).map(|i| (i, 7))); // device 7
    erased.extend((5..9).map(|i| (i, 3))); // 4-sector burst in device 3
    erased.push((0, 0)); // one more sector in device 0
    stripe.erase(&erased)?;
    codec.decode(&mut stripe, &erased)?;
    assert_eq!(stripe.read_data()?, payload);
    println!("STAIR e=(1,4): recovered 2 devices + 4-burst + 1 sector ✔");
    Ok(())
}
