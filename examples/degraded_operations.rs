//! Operating a degraded array: incremental sector updates, degraded reads
//! that reconstruct only what they need, and parallel rebuild of a failed
//! device across all stripes.
//!
//! Run with: `cargo run --release --example degraded_operations`

use stair::{Config, StairCodec, Stripe};
use stair_arraysim::parallel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Config::new(8, 16, 2, &[1, 2])?;
    let codec: StairCodec = StairCodec::new(config.clone())?;

    // A small array of 32 stripes, encoded in parallel.
    let mut stripes: Vec<Stripe> = (0..32)
        .map(|i| {
            let mut s = Stripe::new(config.clone(), 512).expect("stripe");
            s.fill_pattern(i as u8);
            s
        })
        .collect();
    parallel::encode_stripes(&codec, &mut stripes, 4)?;
    println!("encoded 32 stripes across 4 threads");

    // In-place update of one sector: only the dependent parities change.
    let touched = codec.update_data(&mut stripes[3], 2, 1, &vec![0xAB; 512])?;
    println!(
        "updated one data sector; {} parity sectors patched (avg penalty {:.2})",
        touched,
        codec.relations().update_penalty().average
    );

    // Device 5 dies. Serve a degraded read immediately...
    let erased: Vec<(usize, usize)> = (0..16).map(|row| (row, 5)).collect();
    for s in &mut stripes {
        s.erase(&erased)?;
    }
    let single = codec.plan_recover(&erased, &[(7, 5)])?;
    let full = codec.plan_decode(&erased)?;
    let sector = codec.read_sector_degraded(&mut stripes[0], &erased, 7, 5)?;
    println!(
        "degraded read of sector (7,5): {} bytes via a {}-Mult_XOR plan \
         (full rebuild plan costs {})",
        sector.len(),
        single.mult_xors(),
        full.mult_xors()
    );

    // ...then rebuild the whole device in parallel with one shared plan.
    parallel::repair_stripes(&codec, &full, &mut stripes, 4)?;
    println!("device 5 rebuilt across all 32 stripes ✔");

    // Verify stripe 3 still carries the update.
    assert!(stripes[3].cell(2, 1).iter().all(|&b| b == 0xAB));
    println!("post-rebuild consistency check passed ✔");
    Ok(())
}
