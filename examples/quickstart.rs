//! Quickstart: protect a stripe with a STAIR code, lose two devices plus a
//! sector burst, and recover everything.
//!
//! Run with: `cargo run --release --example quickstart`

use stair::{Config, StairCodec, Stripe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A RAID-6-like array: n = 8 devices, r = 16 sectors per chunk,
    // m = 2 tolerated device failures, and sector-failure coverage
    // e = (1, 2): one chunk may lose a 2-sector burst while another loses
    // a single sector — at a cost of only 3 extra parity sectors.
    let config = Config::new(8, 16, 2, &[1, 2])?;
    let codec: StairCodec = StairCodec::new(config.clone())?;

    println!(
        "STAIR({}, {}, {}, {:?})",
        config.n(),
        config.r(),
        config.m(),
        config.e()
    );
    println!("  data sectors per stripe : {}", config.data_symbols());
    println!(
        "  parity sectors          : {}",
        config.r() * config.n() - config.data_symbols()
    );
    println!("  encoding method chosen  : {:?}", codec.best_method());
    println!("  Mult_XORs per stripe    : {:?}", codec.mult_xor_counts());

    // Write application data (512-byte sectors).
    let mut stripe = Stripe::new(config.clone(), 512)?;
    let payload: Vec<u8> = (0..stripe.data_capacity())
        .map(|i| (i % 251) as u8)
        .collect();
    stripe.write_data(&payload)?;
    codec.encode(&mut stripe)?;

    // Disaster: devices 6 and 7 die; device 2 develops a 2-sector burst;
    // device 4 loses one more sector.
    let mut erased: Vec<(usize, usize)> = Vec::new();
    erased.extend((0..16).map(|i| (i, 6)));
    erased.extend((0..16).map(|i| (i, 7)));
    erased.extend([(9, 2), (10, 2), (3, 4)]);
    assert!(config.covers(&erased)?, "within the configured coverage");
    stripe.erase(&erased)?;

    codec.decode(&mut stripe, &erased)?;
    assert_eq!(stripe.read_data()?, payload);
    println!(
        "\nrecovered {} lost sectors; payload intact ✔",
        erased.len()
    );
    Ok(())
}
