//! Error type for the baseline codes.

use core::fmt;

/// Errors returned by the baseline codes.
#[derive(Clone, Debug, Eq, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid construction parameters.
    InvalidParams(String),
    /// The erasure pattern is malformed (out of range / duplicates).
    InvalidPattern(String),
    /// The pattern exceeds what the code can repair (no unique solution to
    /// the decoding system).
    Unrecoverable(String),
    /// A stripe/buffer shape did not match the code.
    ShapeMismatch(String),
    /// The algebraic construction failed verification for these parameters
    /// (the paper's point: SD constructions are only known for limited
    /// configurations).
    ConstructionFailed(String),
    /// Underlying linear-algebra error.
    Matrix(stair_gfmatrix::Error),
    /// Underlying MDS-code error.
    Mds(stair_rs::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            Error::InvalidPattern(m) => write!(f, "invalid erasure pattern: {m}"),
            Error::Unrecoverable(m) => write!(f, "unrecoverable pattern: {m}"),
            Error::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            Error::ConstructionFailed(m) => write!(f, "construction failed: {m}"),
            Error::Matrix(e) => write!(f, "matrix error: {e}"),
            Error::Mds(e) => write!(f, "MDS code error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Matrix(e) => Some(e),
            Error::Mds(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stair_gfmatrix::Error> for Error {
    fn from(e: stair_gfmatrix::Error) -> Self {
        Error::Matrix(e)
    }
}

impl From<stair_rs::Error> for Error {
    fn from(e: stair_rs::Error) -> Self {
        Error::Mds(e)
    }
}

impl From<Error> for stair_code::CodeError {
    fn from(e: Error) -> stair_code::CodeError {
        use stair_code::CodeError;
        match e {
            Error::InvalidParams(m) | Error::ConstructionFailed(m) => CodeError::InvalidConfig(m),
            Error::InvalidPattern(m) => CodeError::InvalidPattern(m),
            Error::Unrecoverable(m) => CodeError::Unrecoverable(m),
            Error::ShapeMismatch(m) => CodeError::ShapeMismatch(m),
            other => CodeError::Internal(other.to_string()),
        }
    }
}
