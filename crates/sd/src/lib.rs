//! Baseline erasure codes the STAIR paper compares against.
//!
//! * [`SdCode`] — sector-disk (SD) codes [32, 33]: `m` parity devices plus
//!   `s` parity sectors per stripe, tolerating any `m` device failures plus
//!   any `s` sector failures. Built from the Blaum–Plank check-equation
//!   construction; encoded "in a decoding manner without any parity reuse",
//!   exactly like the open-source SD implementation the paper benchmarks
//!   against (§6.2).
//! * [`IdrScheme`] — intra-device redundancy [11, 12, 41]: each chunk
//!   carries its own `(r, r−ε)` code, plus `m` device-level parity chunks.
//! * [`RsArrayCode`] — a plain Reed–Solomon array code with `m` parity
//!   devices and no sector-level protection (the paper's "traditional
//!   erasure code" baseline).
//!
//! # Example
//!
//! ```
//! use stair_gf::Gf8;
//! use stair_sd::{SdCode, SdStripe};
//!
//! // n = 6 devices, r = 4 sectors/chunk, 1 parity device + 2 parity sectors.
//! let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 2)?;
//! let mut stripe = SdStripe::new(&code, 64);
//! stripe.fill_pattern(3);
//! code.encode(&mut stripe)?;
//!
//! // Any one device plus any two extra sectors may fail.
//! let erased = vec![(0, 5), (1, 5), (2, 5), (3, 5), (2, 0), (0, 3)];
//! let pristine = stripe.clone();
//! stripe.erase(&erased);
//! code.decode(&mut stripe, &erased)?;
//! assert_eq!(stripe, pristine);
//! # Ok::<(), stair_sd::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod idr;
mod rs_array;
mod sd;

pub use error::Error;
pub use idr::IdrScheme;
pub use rs_array::RsArrayCode;
pub use sd::{SdCode, SdStripe};
