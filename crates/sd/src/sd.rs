//! Sector-disk (SD) codes, after Plank & Blaum [32, 33].
//!
//! An SD code with parameters `(n, r, m, s)` devotes `m` entire devices and
//! `s` additional sectors to parity, and tolerates the failure of any `m`
//! devices plus any `s` further sectors. The construction here is the
//! algebraic candidate family of Blaum & Plank: the stripe symbols
//! (indexed `q = i·n + c` for sector `i` of device `c`) satisfy
//!
//! * `Σ_c α^(l·c) · x[i,c] = 0`  for every row `i` and `l ∈ 0..m`, and
//! * `Σ_q α^((m+l)·q) · x[q] = 0` for `l ∈ 0..s`,
//!
//! over GF(2^w). Such constructions are *proven* SD only for limited
//! parameter ranges (`s ≤ 3` and bounded `n`, `r` — the paper's motivation
//! for STAIR); [`SdCode::verify_fault_tolerance`] checks the property
//! exhaustively for small stripes.
//!
//! Encoding deliberately has **no parity reuse**: every parity symbol is a
//! dense combination of the data symbols ("the open-source implementation
//! of SD codes encodes stripes in a decoding manner", §6.2 of the STAIR
//! paper) — this is the property the paper's speed comparison measures.

use stair_code::{CellIdx, CodeError, ErasureCode, ErasureSet, Geometry, Plan, StripeBuf};
use stair_gf::Field;
use stair_gfmatrix::{Error as MatrixError, Matrix};

use crate::Error;

/// An SD code over the field `F`; see the module documentation for the
/// construction.
#[derive(Clone, Debug)]
pub struct SdCode<F: Field> {
    n: usize,
    r: usize,
    m: usize,
    s: usize,
    /// Parity-check matrix, `(m·r + s) × (r·n)`.
    check: Matrix<F>,
    /// Symbol indices (q = i·n + c) of the parity positions.
    parity_pos: Vec<usize>,
    /// Symbol indices of the data positions.
    data_pos: Vec<usize>,
    /// Dense encoding matrix: `parity = encode · data`.
    encode: Matrix<F>,
}

/// A plain `r × n` stripe of sector buffers for [`SdCode`].
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct SdStripe {
    n: usize,
    r: usize,
    symbol: usize,
    cells: Vec<Vec<u8>>,
    parity_pos: Vec<usize>,
}

impl<F: Field> SdCode<F> {
    /// Builds the code and its dense encoder.
    ///
    /// Parity layout: the last `m` devices, plus the `s` sectors of the
    /// bottom row of devices `n−m−s .. n−m`.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParams`] for impossible shapes (`m = 0` is allowed
    ///   — a pure-PMDS-style sector-only code — but `m + ⌈s/r⌉ ≥ n` is not);
    /// * [`Error::ConstructionFailed`] if the candidate check matrix cannot
    ///   be solved for the parity positions (the construction does not
    ///   exist at these parameters over this field).
    pub fn new(n: usize, r: usize, m: usize, s: usize) -> Result<Self, Error> {
        if n < 2 || r == 0 {
            return Err(Error::InvalidParams(format!(
                "need n ≥ 2, r ≥ 1 (got n={n}, r={r})"
            )));
        }
        if m >= n {
            return Err(Error::InvalidParams(format!("m = {m} must be < n = {n}")));
        }
        if s > (n - m).saturating_sub(1) {
            return Err(Error::InvalidParams(format!(
                "s = {s} parity sectors must fit in one row of the n−m−1 = {} remaining data \
                 devices",
                n - m - 1
            )));
        }
        if m == 0 && s == 0 {
            return Err(Error::InvalidParams(
                "m = s = 0 provides no redundancy".into(),
            ));
        }
        if r * n > F::ORDER - 1 {
            return Err(Error::ConstructionFailed(format!(
                "stripe has {} symbols but the global-check coefficients α^q only take {} \
                 distinct values; use a wider field",
                r * n,
                F::ORDER - 1
            )));
        }

        let total = r * n;
        let rows = m * r + s;
        let mut check = Matrix::<F>::zero(rows.max(1), total);
        // Row checks: Σ_c α^(l·c) x[i,c] = 0.
        for i in 0..r {
            for l in 0..m {
                for c in 0..n {
                    check.set(i * m + l, i * n + c, F::exp(l * c));
                }
            }
        }
        // Global checks: Σ_q α^((m+l)·q) x[q] = 0.
        for l in 0..s {
            for q in 0..total {
                check.set(m * r + l, q, F::exp((m + l) * q));
            }
        }

        let mut parity_pos: Vec<usize> = Vec::with_capacity(rows);
        for c in n - m..n {
            for i in 0..r {
                parity_pos.push(i * n + c);
            }
        }
        for k in 0..s {
            parity_pos.push((r - 1) * n + (n - m - s + k));
        }
        parity_pos.sort_unstable();
        let data_pos: Vec<usize> = (0..total).filter(|q| !parity_pos.contains(q)).collect();

        let h_p = check.select_cols(&parity_pos);
        let h_d = check.select_cols(&data_pos);
        let encode = match h_p.solve(&h_d) {
            Ok(e) => e,
            Err(MatrixError::Singular | MatrixError::Underdetermined { .. }) => {
                return Err(Error::ConstructionFailed(format!(
                    "parity submatrix is singular for (n={n}, r={r}, m={m}, s={s}) over \
                     GF(2^{})",
                    F::W
                )));
            }
            Err(e) => return Err(e.into()),
        };
        Ok(SdCode {
            n,
            r,
            m,
            s,
            check,
            parity_pos,
            data_pos,
            encode,
        })
    }

    /// Devices per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sectors per chunk.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Parity devices.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Parity sectors beyond the parity devices.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Symbol indices (`q = i·n + c`) of parity positions.
    pub fn parity_positions(&self) -> &[usize] {
        &self.parity_pos
    }

    /// Symbol indices of data positions, in payload order.
    pub fn data_positions(&self) -> &[usize] {
        &self.data_pos
    }

    /// The dense-encoding coefficient of data symbol `data_idx` (index into
    /// [`SdCode::data_positions`]) in parity symbol `parity_idx` (index
    /// into [`SdCode::parity_positions`]). Non-zero entries determine the
    /// update penalty (§6.3 of the STAIR paper).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn encode_coefficient(&self, parity_idx: usize, data_idx: usize) -> F::Elem {
        self.encode.get(parity_idx, data_idx)
    }

    /// `Mult_XOR` cost of one stripe encode (dense, no reuse): the number of
    /// non-zero entries of the encoding matrix.
    pub fn encode_mult_xors(&self) -> usize {
        let mut count = 0;
        for p in 0..self.encode.rows() {
            for d in 0..self.encode.cols() {
                if self.encode.get(p, d) != F::zero() {
                    count += 1;
                }
            }
        }
        count
    }

    /// Encodes a stripe in place (recomputes every parity sector).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the stripe shape differs.
    pub fn encode(&self, stripe: &mut SdStripe) -> Result<(), Error> {
        self.check_stripe(stripe)?;
        for (p, &ppos) in self.parity_pos.iter().enumerate() {
            let mut buf = std::mem::take(&mut stripe.cells[ppos]);
            buf.fill(0);
            for (d, &dpos) in self.data_pos.iter().enumerate() {
                let coeff = self.encode.get(p, d);
                if coeff != F::zero() {
                    F::mult_xor_region(&mut buf, &stripe.cells[dpos], coeff);
                }
            }
            stripe.cells[ppos] = buf;
        }
        Ok(())
    }

    /// Repairs the erased sectors in place by solving the check equations.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPattern`] for malformed patterns;
    /// * [`Error::Unrecoverable`] if the pattern exceeds the code's
    ///   capability (`> m` devices, `> s` extra sectors, or an admissible
    ///   pattern at parameters where the construction is simply not SD —
    ///   the situation STAIR codes eliminate).
    pub fn decode(&self, stripe: &mut SdStripe, erased: &[(usize, usize)]) -> Result<(), Error> {
        self.check_stripe(stripe)?;
        let coeff = self.recovery_matrix(erased)?;
        let erased_q: Vec<usize> = erased.iter().map(|&(i, c)| i * self.n + c).collect();
        let known_q: Vec<usize> = (0..self.r * self.n)
            .filter(|q| !erased_q.contains(q))
            .collect();
        for (x, &q) in erased_q.iter().enumerate() {
            let mut buf = std::mem::take(&mut stripe.cells[q]);
            buf.fill(0);
            for (k, &kq) in known_q.iter().enumerate() {
                let c = coeff.get(x, k);
                if c != F::zero() {
                    F::mult_xor_region(&mut buf, &stripe.cells[kq], c);
                }
            }
            stripe.cells[q] = buf;
        }
        Ok(())
    }

    /// Solves the check equations symbolically for an erasure pattern,
    /// returning the `|erased| × |known|` recovery matrix.
    ///
    /// # Errors
    ///
    /// See [`SdCode::decode`].
    pub fn recovery_matrix(&self, erased: &[(usize, usize)]) -> Result<Matrix<F>, Error> {
        let total = self.r * self.n;
        let mut seen = vec![false; total];
        for &(i, c) in erased {
            if i >= self.r || c >= self.n {
                return Err(Error::InvalidPattern(format!("({i},{c}) out of range")));
            }
            if seen[i * self.n + c] {
                return Err(Error::InvalidPattern(format!("duplicate ({i},{c})")));
            }
            seen[i * self.n + c] = true;
        }
        if erased.is_empty() {
            return Err(Error::InvalidPattern("empty erasure pattern".into()));
        }
        let erased_q: Vec<usize> = erased.iter().map(|&(i, c)| i * self.n + c).collect();
        let known_q: Vec<usize> = (0..total).filter(|&q| !seen[q]).collect();
        let h_x = self.check.select_cols(&erased_q);
        let h_k = self.check.select_cols(&known_q);
        // Patterns smaller than the check count leave surplus equations
        // relating only surviving symbols; every codeword satisfies them,
        // so the subspace solver ignores them rather than failing.
        match h_x.solve_subspace(&h_k) {
            Ok(m) => Ok(m),
            Err(MatrixError::Singular | MatrixError::Underdetermined { .. }) => {
                Err(Error::Unrecoverable(format!(
                    "{} erasures exceed this SD code's capability",
                    erased.len()
                )))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// True if the pattern is within the *claimed* SD coverage: at most `m`
    /// whole devices plus at most `s` further sectors.
    pub fn covers(&self, erased: &[(usize, usize)]) -> bool {
        let mut per_dev = vec![0usize; self.n];
        for &(_, c) in erased {
            if c >= self.n {
                return false;
            }
            per_dev[c] += 1;
        }
        let mut counts: Vec<usize> = per_dev.into_iter().filter(|&c| c > 0).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let extra: usize = counts.iter().skip(self.m).sum();
        let full_ok = counts.iter().take(self.m).all(|&c| c <= self.r);
        full_ok && extra <= self.s
    }

    /// Exhaustively verifies the SD property: every pattern of `m` failed
    /// devices plus `s` sectors anywhere else must be solvable. Exponential
    /// in stripe size — intended for the small configurations used in tests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ConstructionFailed`] with the first failing pattern.
    pub fn verify_fault_tolerance(&self) -> Result<(), Error> {
        let device_sets = combinations(self.n, self.m);
        for devs in &device_sets {
            let dev_erased: Vec<(usize, usize)> = devs
                .iter()
                .flat_map(|&c| (0..self.r).map(move |i| (i, c)))
                .collect();
            let rest: Vec<(usize, usize)> = (0..self.r * self.n)
                .map(|q| (q / self.n, q % self.n))
                .filter(|&(_, c)| !devs.contains(&c))
                .collect();
            for extra in combinations(rest.len(), self.s) {
                let mut pattern = dev_erased.clone();
                pattern.extend(extra.iter().map(|&k| rest[k]));
                if pattern.is_empty() {
                    continue;
                }
                let erased_q: Vec<usize> = pattern.iter().map(|&(i, c)| i * self.n + c).collect();
                let h_x = self.check.select_cols(&erased_q);
                if h_x.rank() < erased_q.len() {
                    return Err(Error::ConstructionFailed(format!(
                        "pattern {pattern:?} is not recoverable: construction is not SD at \
                         (n={}, r={}, m={}, s={})",
                        self.n, self.r, self.m, self.s
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_stripe(&self, stripe: &SdStripe) -> Result<(), Error> {
        if stripe.n != self.n || stripe.r != self.r {
            return Err(Error::ShapeMismatch(format!(
                "stripe is {}x{}, code needs {}x{}",
                stripe.r, stripe.n, self.r, self.n
            )));
        }
        Ok(())
    }
}

impl SdStripe {
    /// Allocates a zeroed stripe matching `code`.
    pub fn new<F: Field>(code: &SdCode<F>, symbol_size: usize) -> Self {
        assert!(symbol_size > 0, "symbol size must be positive");
        assert!(
            symbol_size.is_multiple_of(F::ELEM_BYTES),
            "symbol size must be a multiple of the field element size"
        );
        SdStripe {
            n: code.n(),
            r: code.r(),
            symbol: symbol_size,
            cells: vec![vec![0u8; symbol_size]; code.n() * code.r()],
            parity_pos: code.parity_positions().to_vec(),
        }
    }

    /// Bytes per sector.
    pub fn symbol_size(&self) -> usize {
        self.symbol
    }

    /// Borrows sector `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, row: usize, col: usize) -> &[u8] {
        assert!(row < self.r && col < self.n, "cell out of range");
        &self.cells[row * self.n + col]
    }

    /// Mutably borrows sector `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell_mut(&mut self, row: usize, col: usize) -> &mut [u8] {
        assert!(row < self.r && col < self.n, "cell out of range");
        &mut self.cells[row * self.n + col]
    }

    /// Fills every *data* sector with a deterministic pattern.
    pub fn fill_pattern(&mut self, seed: u8) {
        for q in 0..self.r * self.n {
            if self.parity_pos.contains(&q) {
                continue;
            }
            let base = (q as u8).wrapping_mul(37).wrapping_add(seed);
            for (b, byte) in self.cells[q].iter_mut().enumerate() {
                *byte = base.wrapping_add((b as u8).wrapping_mul(11));
            }
        }
    }

    /// Zero-fills the listed sectors (simulated loss).
    pub fn erase(&mut self, erased: &[(usize, usize)]) {
        for &(row, col) in erased {
            self.cell_mut(row, col).fill(0);
        }
    }
}

// ---------------------------------------------------------------------
// The codec-generic face: `stair_code::ErasureCode` for `SdCode`.
// ---------------------------------------------------------------------

/// The codec-private payload of an SD decoding [`Plan`]: the solved
/// recovery matrix plus the symbol-index bookkeeping to apply it.
#[derive(Debug)]
struct SdPlanDetail<F: Field> {
    erased_q: Vec<usize>,
    known_q: Vec<usize>,
    coeff: Matrix<F>,
}

impl<F: Field> SdCode<F> {
    fn check_buf(&self, buf: &StripeBuf) -> Result<(), CodeError> {
        buf.check_shape(self.r, self.n, F::ELEM_BYTES)
    }

    fn cell_of(&self, q: usize) -> CellIdx {
        (q / self.n, q % self.n)
    }
}

impl<F: Field> ErasureCode for SdCode<F> {
    fn geometry(&self) -> Geometry {
        Geometry {
            n: self.n,
            r: self.r,
            m: self.m,
            s: self.s,
            burst: self.s.min(self.r),
            data_cells: self.data_pos.iter().map(|&q| self.cell_of(q)).collect(),
            parity_cells: self.parity_pos.iter().map(|&q| self.cell_of(q)).collect(),
        }
    }

    fn encode(&self, stripe: &mut StripeBuf) -> Result<(), CodeError> {
        self.check_buf(stripe)?;
        // Dense, no parity reuse — the §6.2 "encoding in a decoding
        // manner" the paper measures against.
        let mut scratch = vec![0u8; stripe.symbol()];
        for (p, &ppos) in self.parity_pos.iter().enumerate() {
            scratch.fill(0);
            for (d, &dpos) in self.data_pos.iter().enumerate() {
                let coeff = self.encode.get(p, d);
                if coeff != F::zero() {
                    F::mult_xor_region(&mut scratch, stripe.cell(self.cell_of(dpos)), coeff);
                }
            }
            stripe.set_cell(self.cell_of(ppos), &scratch);
        }
        Ok(())
    }

    fn plan(&self, erased: &ErasureSet) -> Result<Plan, CodeError> {
        erased.check_bounds(self.r, self.n)?;
        if erased.is_empty() {
            return Err(CodeError::InvalidPattern("empty erasure pattern".into()));
        }
        let coeff = self.recovery_matrix(erased.cells())?;
        let erased_q: Vec<usize> = erased.iter().map(|(i, c)| i * self.n + c).collect();
        let known_q: Vec<usize> = (0..self.r * self.n)
            .filter(|q| !erased_q.contains(q))
            .collect();
        let mut cost = 0usize;
        for x in 0..coeff.rows() {
            for k in 0..coeff.cols() {
                if coeff.get(x, k) != F::zero() {
                    cost += 1;
                }
            }
        }
        let detail = SdPlanDetail {
            erased_q,
            known_q,
            coeff,
        };
        Ok(Plan::new(erased.cells().to_vec(), detail).with_mult_xors(cost))
    }

    fn apply(&self, plan: &Plan, stripe: &mut StripeBuf) -> Result<(), CodeError> {
        self.check_buf(stripe)?;
        let detail = plan.detail::<SdPlanDetail<F>>().ok_or_else(|| {
            CodeError::InvalidPattern("plan was built by a different codec".into())
        })?;
        let mut scratch = vec![0u8; stripe.symbol()];
        // Erased cells are never inputs (the recovery matrix combines
        // known symbols only), so writing them one by one is safe.
        for (x, &q) in detail.erased_q.iter().enumerate() {
            scratch.fill(0);
            for (k, &kq) in detail.known_q.iter().enumerate() {
                let c = detail.coeff.get(x, k);
                if c != F::zero() {
                    F::mult_xor_region(&mut scratch, stripe.cell(self.cell_of(kq)), c);
                }
            }
            stripe.set_cell(self.cell_of(q), &scratch);
        }
        Ok(())
    }

    fn update(
        &self,
        stripe: &mut StripeBuf,
        cell: CellIdx,
        new_contents: &[u8],
    ) -> Result<Vec<CellIdx>, CodeError> {
        self.check_buf(stripe)?;
        let (row, col) = cell;
        if row >= self.r || col >= self.n {
            return Err(CodeError::InvalidPattern(format!(
                "({row},{col}) out of range"
            )));
        }
        let q = row * self.n + col;
        let Some(d) = self.data_pos.iter().position(|&dq| dq == q) else {
            return Err(CodeError::InvalidPattern(format!(
                "({row},{col}) is a parity sector; updates must target data"
            )));
        };
        let delta = stripe.begin_update(cell, new_contents)?;
        let mut touched = Vec::new();
        for (p, &ppos) in self.parity_pos.iter().enumerate() {
            let coeff = self.encode.get(p, d);
            if coeff == F::zero() {
                continue;
            }
            let pcell = self.cell_of(ppos);
            F::mult_xor_region(stripe.cell_mut(pcell), &delta, coeff);
            touched.push(pcell);
        }
        Ok(touched)
    }
}

/// All `k`-element subsets of `0..n`, lexicographic. `k = 0` yields one
/// empty subset.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            if n - i < k - cur.len() {
                break;
            }
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_gf::{Gf16, Gf8};

    #[test]
    fn construction_and_shapes() {
        let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 2).unwrap();
        assert_eq!(code.parity_positions().len(), 4 + 2);
        assert_eq!(code.data_positions().len(), 24 - 6);
        // Parity sectors live in the bottom row next to the parity device.
        assert!(code.parity_positions().contains(&(3 * 6 + 3)));
        assert!(code.parity_positions().contains(&(3 * 6 + 4)));
    }

    #[test]
    fn parameter_validation() {
        assert!(matches!(
            SdCode::<Gf8>::new(1, 4, 0, 1),
            Err(Error::InvalidParams(_))
        ));
        assert!(matches!(
            SdCode::<Gf8>::new(6, 4, 6, 1),
            Err(Error::InvalidParams(_))
        ));
        assert!(matches!(
            SdCode::<Gf8>::new(6, 4, 1, 5),
            Err(Error::InvalidParams(_))
        ));
        assert!(matches!(
            SdCode::<Gf8>::new(6, 4, 0, 0),
            Err(Error::InvalidParams(_))
        ));
        // 16 × 16 = 256 symbols exceed GF(2^8)'s 255 distinct coefficients.
        assert!(matches!(
            SdCode::<Gf8>::new(16, 16, 1, 1),
            Err(Error::ConstructionFailed(_))
        ));
        assert!(SdCode::<Gf16>::new(16, 16, 1, 1).is_ok());
    }

    #[test]
    fn encode_then_checks_hold() {
        let code: SdCode<Gf8> = SdCode::new(5, 3, 1, 1).unwrap();
        let mut stripe = SdStripe::new(&code, 2);
        stripe.fill_pattern(9);
        code.encode(&mut stripe).unwrap();
        // Verify every check equation over the first byte of each sector.
        for row in 0..code.check.rows() {
            let mut acc = 0u8;
            for q in 0..15 {
                let x = stripe.cells[q][0];
                acc ^= Gf8::mul(code.check.get(row, q), x);
            }
            assert_eq!(acc, 0, "check {row} violated");
        }
    }

    #[test]
    fn device_plus_sector_failures_decode() {
        let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 2).unwrap();
        let mut stripe = SdStripe::new(&code, 8);
        stripe.fill_pattern(17);
        code.encode(&mut stripe).unwrap();
        let pristine = stripe.clone();
        let erased = vec![(0, 2), (1, 2), (2, 2), (3, 2), (0, 0), (3, 5)];
        assert!(code.covers(&erased));
        stripe.erase(&erased);
        code.decode(&mut stripe, &erased).unwrap();
        assert_eq!(stripe, pristine);
    }

    /// Regression: patterns *smaller* than the check count must decode.
    /// The recovery solve is overdetermined there, and the surplus checks
    /// (relating only known symbols) used to surface as `Inconsistent`.
    #[test]
    fn partial_patterns_decode() {
        let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 2).unwrap();
        let mut stripe = SdStripe::new(&code, 8);
        stripe.fill_pattern(5);
        code.encode(&mut stripe).unwrap();
        let pristine = stripe.clone();
        for erased in [
            vec![(2, 1)],                                 // one sector
            vec![(0, 0), (3, 4)],                         // two sectors
            vec![(0, 2), (1, 2), (2, 2), (3, 2)],         // one device only
            vec![(0, 5), (1, 5), (2, 5), (3, 5), (1, 3)], // device + one sector
        ] {
            stripe.erase(&erased);
            code.decode(&mut stripe, &erased).unwrap();
            assert_eq!(stripe, pristine, "pattern {erased:?}");
        }
    }

    /// Exhaustive SD-property verification on a small configuration.
    #[test]
    fn small_config_is_fully_sd() {
        let code: SdCode<Gf8> = SdCode::new(4, 3, 1, 1).unwrap();
        code.verify_fault_tolerance().unwrap();
    }

    #[test]
    fn beyond_coverage_fails_cleanly() {
        let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 1).unwrap();
        let mut stripe = SdStripe::new(&code, 4);
        stripe.fill_pattern(3);
        code.encode(&mut stripe).unwrap();
        // Two full devices exceed m = 1 by far.
        let erased: Vec<(usize, usize)> = (0..4).flat_map(|i| [(i, 0), (i, 1)]).collect();
        assert!(!code.covers(&erased));
        assert!(matches!(
            code.decode(&mut stripe, &erased),
            Err(Error::Unrecoverable(_))
        ));
    }

    #[test]
    fn combinations_enumerates_correctly() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }
}
