//! Plain Reed–Solomon array coding: `m` parity devices, no sector-level
//! protection. The paper's "traditional erasure code" baseline (§6.1, §7).

use stair_code::{CellIdx, CodeError, ErasureCode, ErasureSet, Geometry, Plan, StripeBuf};
use stair_gf::Field;
use stair_gfmatrix::Matrix;
use stair_rs::MdsCode;

use crate::Error;

/// An `r × n` array protected row-wise by an `(n, n−m)` MDS code.
///
/// # Example
///
/// ```
/// use stair_gf::Gf8;
/// use stair_sd::RsArrayCode;
///
/// let code: RsArrayCode<Gf8> = RsArrayCode::new(8, 16, 2)?;
/// let mut chunks: Vec<Vec<u8>> = (0..8).map(|c| vec![c as u8; 16 * 4]).collect();
/// code.encode_chunks(&mut chunks)?;
/// # Ok::<(), stair_sd::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct RsArrayCode<F: Field> {
    n: usize,
    r: usize,
    m: usize,
    code: MdsCode<F>,
    /// `(n−m) × m` data→parity coefficients, precomputed so the
    /// small-write update path pays no per-call solve.
    update_coeff: Matrix<F>,
}

impl<F: Field> RsArrayCode<F> {
    /// Builds the code.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] for degenerate shapes.
    pub fn new(n: usize, r: usize, m: usize) -> Result<Self, Error> {
        if n < 2 || r == 0 || m == 0 || m >= n {
            return Err(Error::InvalidParams(format!(
                "need n ≥ 2, r ≥ 1, 0 < m < n (got n={n}, r={r}, m={m})"
            )));
        }
        let code = MdsCode::new(n, n - m)?;
        let data_idx: Vec<usize> = (0..n - m).collect();
        let parity_idx: Vec<usize> = (n - m..n).collect();
        let update_coeff = code.recovery_coefficients(&data_idx, &parity_idx)?;
        Ok(RsArrayCode {
            n,
            r,
            m,
            code,
            update_coeff,
        })
    }

    /// Devices per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sectors per chunk.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Parity devices.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Encodes whole chunks: `chunks[0..n−m]` are data, the last `m` are
    /// overwritten with parity. Each chunk is one contiguous buffer of
    /// `r · sector` bytes (row interleaving is irrelevant to RS coding).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] on wrong chunk count or sizes.
    pub fn encode_chunks(&self, chunks: &mut [Vec<u8>]) -> Result<(), Error> {
        if chunks.len() != self.n {
            return Err(Error::ShapeMismatch(format!(
                "expected {} chunks, got {}",
                self.n,
                chunks.len()
            )));
        }
        let len = chunks[0].len();
        if chunks.iter().any(|c| c.len() != len) {
            return Err(Error::ShapeMismatch("chunks must have equal length".into()));
        }
        let (data, parity) = chunks.split_at_mut(self.n - self.m);
        let data_refs: Vec<&[u8]> = data.iter().map(|c| c.as_slice()).collect();
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(|c| c.as_mut_slice()).collect();
        self.code.encode_regions(&data_refs, &mut parity_refs)?;
        Ok(())
    }

    /// Recovers up to `m` lost chunks from the survivors.
    ///
    /// # Errors
    ///
    /// * [`Error::Unrecoverable`] if more than `m` chunks are lost;
    /// * [`Error::ShapeMismatch`] / [`Error::InvalidPattern`] on malformed
    ///   input.
    pub fn decode_chunks(&self, chunks: &mut [Vec<u8>], lost: &[usize]) -> Result<(), Error> {
        if chunks.len() != self.n {
            return Err(Error::ShapeMismatch(format!(
                "expected {} chunks, got {}",
                self.n,
                chunks.len()
            )));
        }
        if lost.iter().any(|&c| c >= self.n) {
            return Err(Error::InvalidPattern(
                "lost chunk index out of range".into(),
            ));
        }
        if lost.len() > self.m {
            return Err(Error::Unrecoverable(format!(
                "{} chunks lost, only {} tolerated",
                lost.len(),
                self.m
            )));
        }
        let survivors: Vec<usize> = (0..self.n)
            .filter(|c| !lost.contains(c))
            .take(self.n - self.m)
            .collect();
        let available: Vec<(usize, &[u8])> = survivors
            .iter()
            .map(|&c| (c, chunks[c].as_slice()))
            .collect();
        let coeff = self.code.recovery_coefficients(&survivors, lost)?;
        let len = chunks[0].len();
        let mut outs: Vec<Vec<u8>> = lost.iter().map(|_| vec![0u8; len]).collect();
        {
            let avail_refs: Vec<&[u8]> = available.iter().map(|&(_, r)| r).collect();
            let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
            self.code
                .apply_coefficients(&coeff, &avail_refs, &mut out_refs)?;
        }
        for (&c, buf) in lost.iter().zip(outs) {
            chunks[c] = buf;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The codec-generic face: `stair_code::ErasureCode` for `RsArrayCode`.
//
// Each stripe row is one (n, n−m) MDS codeword, so every operation is
// row-local: a row with more than m erasures is unrecoverable (plain RS
// has no sector-level protection — the comparison point of §6.1/§7).
// ---------------------------------------------------------------------

/// One row's recovery recipe inside an RS [`Plan`].
#[derive(Debug)]
struct RsRowPlan<F: Field> {
    row: usize,
    lost: Vec<usize>,
    survivors: Vec<usize>,
    /// `|survivors| × |lost|` recovery coefficients.
    coeff: Matrix<F>,
}

impl<F: Field> RsArrayCode<F> {
    fn check_buf(&self, buf: &StripeBuf) -> Result<(), CodeError> {
        buf.check_shape(self.r, self.n, F::ELEM_BYTES)
    }
}

impl<F: Field> ErasureCode for RsArrayCode<F> {
    fn geometry(&self) -> Geometry {
        let data_cells = (0..self.r)
            .flat_map(|i| (0..self.n - self.m).map(move |c| (i, c)))
            .collect();
        let parity_cells = (0..self.r)
            .flat_map(|i| (self.n - self.m..self.n).map(move |c| (i, c)))
            .collect();
        Geometry {
            n: self.n,
            r: self.r,
            m: self.m,
            s: 0,
            burst: 0,
            data_cells,
            parity_cells,
        }
    }

    fn encode(&self, stripe: &mut StripeBuf) -> Result<(), CodeError> {
        self.check_buf(stripe)?;
        let symbol = stripe.symbol();
        // Rows are contiguous in the flat buffer, so each row splits into
        // data and parity regions without copying.
        for i in 0..self.r {
            let row = stripe.row_mut(i);
            let (data, parity) = row.split_at_mut((self.n - self.m) * symbol);
            let data_refs: Vec<&[u8]> = data.chunks(symbol).collect();
            let mut parity_refs: Vec<&mut [u8]> = parity.chunks_mut(symbol).collect();
            self.code.encode_regions(&data_refs, &mut parity_refs)?;
        }
        Ok(())
    }

    fn plan(&self, erased: &ErasureSet) -> Result<Plan, CodeError> {
        erased.check_bounds(self.r, self.n)?;
        if erased.is_empty() {
            return Err(CodeError::InvalidPattern("empty erasure pattern".into()));
        }
        let mut lost_by_row: Vec<Vec<usize>> = vec![Vec::new(); self.r];
        for (row, col) in erased.iter() {
            lost_by_row[row].push(col);
        }
        let mut rows = Vec::new();
        let mut cost = 0usize;
        for (row, lost) in lost_by_row.into_iter().enumerate() {
            if lost.is_empty() {
                continue;
            }
            if lost.len() > self.m {
                return Err(CodeError::Unrecoverable(format!(
                    "row {row} lost {} sectors, an (n, n-m) MDS row repairs at most {}",
                    lost.len(),
                    self.m
                )));
            }
            let survivors: Vec<usize> = (0..self.n)
                .filter(|c| !lost.contains(c))
                .take(self.n - self.m)
                .collect();
            let coeff = self.code.recovery_coefficients(&survivors, &lost)?;
            for i in 0..coeff.rows() {
                for j in 0..coeff.cols() {
                    if coeff.get(i, j) != F::zero() {
                        cost += 1;
                    }
                }
            }
            rows.push(RsRowPlan {
                row,
                lost,
                survivors,
                coeff,
            });
        }
        Ok(Plan::new(erased.cells().to_vec(), rows).with_mult_xors(cost))
    }

    fn apply(&self, plan: &Plan, stripe: &mut StripeBuf) -> Result<(), CodeError> {
        self.check_buf(stripe)?;
        let rows = plan.detail::<Vec<RsRowPlan<F>>>().ok_or_else(|| {
            CodeError::InvalidPattern("plan was built by a different codec".into())
        })?;
        let mut scratch = vec![0u8; stripe.symbol()];
        for rp in rows {
            // Lost cells are never survivors, so in-place writes are safe.
            for (x, &lc) in rp.lost.iter().enumerate() {
                scratch.fill(0);
                for (k, &sc) in rp.survivors.iter().enumerate() {
                    let c = rp.coeff.get(k, x);
                    if c != F::zero() {
                        F::mult_xor_region(&mut scratch, stripe.cell((rp.row, sc)), c);
                    }
                }
                stripe.set_cell((rp.row, lc), &scratch);
            }
        }
        Ok(())
    }

    fn update(
        &self,
        stripe: &mut StripeBuf,
        cell: CellIdx,
        new_contents: &[u8],
    ) -> Result<Vec<CellIdx>, CodeError> {
        self.check_buf(stripe)?;
        let (row, col) = cell;
        if row >= self.r || col >= self.n {
            return Err(CodeError::InvalidPattern(format!(
                "({row},{col}) out of range"
            )));
        }
        if col >= self.n - self.m {
            return Err(CodeError::InvalidPattern(format!(
                "({row},{col}) is a parity sector; updates must target data"
            )));
        }
        let delta = stripe.begin_update(cell, new_contents)?;
        let mut touched = Vec::new();
        for (j, pc) in (self.n - self.m..self.n).enumerate() {
            let c = self.update_coeff.get(col, j);
            if c == F::zero() {
                continue;
            }
            F::mult_xor_region(stripe.cell_mut((row, pc)), &delta, c);
            touched.push((row, pc));
        }
        Ok(touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_gf::Gf8;

    #[test]
    fn chunk_round_trip() {
        let code: RsArrayCode<Gf8> = RsArrayCode::new(6, 4, 2).unwrap();
        let mut chunks: Vec<Vec<u8>> = (0..6)
            .map(|c| (0..32).map(|b| (c * 31 + b) as u8).collect())
            .collect();
        code.encode_chunks(&mut chunks).unwrap();
        let pristine = chunks.clone();
        chunks[1].fill(0);
        chunks[5].fill(0);
        code.decode_chunks(&mut chunks, &[1, 5]).unwrap();
        assert_eq!(chunks, pristine);
    }

    #[test]
    fn too_many_losses_rejected() {
        let code: RsArrayCode<Gf8> = RsArrayCode::new(4, 2, 1).unwrap();
        let mut chunks: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 8]).collect();
        code.encode_chunks(&mut chunks).unwrap();
        assert!(matches!(
            code.decode_chunks(&mut chunks, &[0, 1]),
            Err(Error::Unrecoverable(_))
        ));
    }

    #[test]
    fn validation() {
        assert!(RsArrayCode::<Gf8>::new(4, 0, 1).is_err());
        assert!(RsArrayCode::<Gf8>::new(4, 2, 4).is_err());
        assert!(RsArrayCode::<Gf8>::new(4, 2, 0).is_err());
    }
}
