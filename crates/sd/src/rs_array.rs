//! Plain Reed–Solomon array coding: `m` parity devices, no sector-level
//! protection. The paper's "traditional erasure code" baseline (§6.1, §7).

use stair_gf::Field;
use stair_rs::MdsCode;

use crate::Error;

/// An `r × n` array protected row-wise by an `(n, n−m)` MDS code.
///
/// # Example
///
/// ```
/// use stair_gf::Gf8;
/// use stair_sd::RsArrayCode;
///
/// let code: RsArrayCode<Gf8> = RsArrayCode::new(8, 16, 2)?;
/// let mut chunks: Vec<Vec<u8>> = (0..8).map(|c| vec![c as u8; 16 * 4]).collect();
/// code.encode_chunks(&mut chunks)?;
/// # Ok::<(), stair_sd::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct RsArrayCode<F: Field> {
    n: usize,
    r: usize,
    m: usize,
    code: MdsCode<F>,
}

impl<F: Field> RsArrayCode<F> {
    /// Builds the code.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] for degenerate shapes.
    pub fn new(n: usize, r: usize, m: usize) -> Result<Self, Error> {
        if n < 2 || r == 0 || m == 0 || m >= n {
            return Err(Error::InvalidParams(format!(
                "need n ≥ 2, r ≥ 1, 0 < m < n (got n={n}, r={r}, m={m})"
            )));
        }
        Ok(RsArrayCode {
            n,
            r,
            m,
            code: MdsCode::new(n, n - m)?,
        })
    }

    /// Devices per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sectors per chunk.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Parity devices.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Encodes whole chunks: `chunks[0..n−m]` are data, the last `m` are
    /// overwritten with parity. Each chunk is one contiguous buffer of
    /// `r · sector` bytes (row interleaving is irrelevant to RS coding).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] on wrong chunk count or sizes.
    pub fn encode_chunks(&self, chunks: &mut [Vec<u8>]) -> Result<(), Error> {
        if chunks.len() != self.n {
            return Err(Error::ShapeMismatch(format!(
                "expected {} chunks, got {}",
                self.n,
                chunks.len()
            )));
        }
        let len = chunks[0].len();
        if chunks.iter().any(|c| c.len() != len) {
            return Err(Error::ShapeMismatch("chunks must have equal length".into()));
        }
        let (data, parity) = chunks.split_at_mut(self.n - self.m);
        let data_refs: Vec<&[u8]> = data.iter().map(|c| c.as_slice()).collect();
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(|c| c.as_mut_slice()).collect();
        self.code.encode_regions(&data_refs, &mut parity_refs)?;
        Ok(())
    }

    /// Recovers up to `m` lost chunks from the survivors.
    ///
    /// # Errors
    ///
    /// * [`Error::Unrecoverable`] if more than `m` chunks are lost;
    /// * [`Error::ShapeMismatch`] / [`Error::InvalidPattern`] on malformed
    ///   input.
    pub fn decode_chunks(&self, chunks: &mut [Vec<u8>], lost: &[usize]) -> Result<(), Error> {
        if chunks.len() != self.n {
            return Err(Error::ShapeMismatch(format!(
                "expected {} chunks, got {}",
                self.n,
                chunks.len()
            )));
        }
        if lost.iter().any(|&c| c >= self.n) {
            return Err(Error::InvalidPattern(
                "lost chunk index out of range".into(),
            ));
        }
        if lost.len() > self.m {
            return Err(Error::Unrecoverable(format!(
                "{} chunks lost, only {} tolerated",
                lost.len(),
                self.m
            )));
        }
        let survivors: Vec<usize> = (0..self.n)
            .filter(|c| !lost.contains(c))
            .take(self.n - self.m)
            .collect();
        let available: Vec<(usize, &[u8])> = survivors
            .iter()
            .map(|&c| (c, chunks[c].as_slice()))
            .collect();
        let coeff = self.code.recovery_coefficients(&survivors, lost)?;
        let len = chunks[0].len();
        let mut outs: Vec<Vec<u8>> = lost.iter().map(|_| vec![0u8; len]).collect();
        {
            let avail_refs: Vec<&[u8]> = available.iter().map(|&(_, r)| r).collect();
            let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
            self.code
                .apply_coefficients(&coeff, &avail_refs, &mut out_refs)?;
        }
        for (&c, buf) in lost.iter().zip(outs) {
            chunks[c] = buf;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_gf::Gf8;

    #[test]
    fn chunk_round_trip() {
        let code: RsArrayCode<Gf8> = RsArrayCode::new(6, 4, 2).unwrap();
        let mut chunks: Vec<Vec<u8>> = (0..6)
            .map(|c| (0..32).map(|b| (c * 31 + b) as u8).collect())
            .collect();
        code.encode_chunks(&mut chunks).unwrap();
        let pristine = chunks.clone();
        chunks[1].fill(0);
        chunks[5].fill(0);
        code.decode_chunks(&mut chunks, &[1, 5]).unwrap();
        assert_eq!(chunks, pristine);
    }

    #[test]
    fn too_many_losses_rejected() {
        let code: RsArrayCode<Gf8> = RsArrayCode::new(4, 2, 1).unwrap();
        let mut chunks: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 8]).collect();
        code.encode_chunks(&mut chunks).unwrap();
        assert!(matches!(
            code.decode_chunks(&mut chunks, &[0, 1]),
            Err(Error::Unrecoverable(_))
        ));
    }

    #[test]
    fn validation() {
        assert!(RsArrayCode::<Gf8>::new(4, 0, 1).is_err());
        assert!(RsArrayCode::<Gf8>::new(4, 2, 4).is_err());
        assert!(RsArrayCode::<Gf8>::new(4, 2, 0).is_err());
    }
}
