//! Intra-device redundancy (IDR) [11, 12, 41]: every chunk carries its own
//! `(r, r−ε)` code so that up to `ε` sector failures per chunk are repaired
//! *locally*; `m` device-level parity chunks handle whole-device failures.
//!
//! The STAIR paper uses IDR as the space baseline for burst protection
//! (§2): protecting every chunk against an `ε`-sector burst costs
//! `(n−m)·ε` redundant sectors per stripe, versus STAIR's `s`.

use stair_gf::Field;
use stair_rs::MdsCode;

use crate::Error;

/// The IDR scheme: per-chunk `(r, r−ε)` codes plus `m` parity devices.
///
/// Chunk layout: sectors `0..r−ε` of each data chunk hold data, sectors
/// `r−ε..r` hold the chunk's local parity. The last `m` chunks are
/// device-level parity (computed over the *entire* chunk contents,
/// including local parities — so a repaired stripe is consistent).
#[derive(Clone, Debug)]
pub struct IdrScheme<F: Field> {
    n: usize,
    r: usize,
    m: usize,
    epsilon: usize,
    row_code: MdsCode<F>,
    col_code: MdsCode<F>,
}

impl<F: Field> IdrScheme<F> {
    /// Builds the scheme.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] for degenerate shapes (`ε = 0`,
    /// `ε ≥ r`, `m ≥ n`, ...).
    pub fn new(n: usize, r: usize, m: usize, epsilon: usize) -> Result<Self, Error> {
        if n < 2 || m == 0 || m >= n {
            return Err(Error::InvalidParams(format!(
                "need 0 < m < n (got n={n}, m={m})"
            )));
        }
        if epsilon == 0 || epsilon >= r {
            return Err(Error::InvalidParams(format!(
                "need 0 < ε < r (got ε={epsilon}, r={r})"
            )));
        }
        Ok(IdrScheme {
            n,
            r,
            m,
            epsilon,
            row_code: MdsCode::new(n, n - m)?,
            col_code: MdsCode::new(r, r - epsilon)?,
        })
    }

    /// Devices per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sectors per chunk.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Parity devices.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Per-chunk local parity sectors.
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }

    /// Redundant sectors per stripe: `m·r` device parity + `(n−m)·ε` local.
    pub fn redundant_sectors(&self) -> usize {
        self.m * self.r + (self.n - self.m) * self.epsilon
    }

    /// Encodes a stripe of `n` chunks × `r` sectors (row-major cells like
    /// [`crate::SdStripe`]): fills each data chunk's local parity sectors,
    /// then the `m` parity chunks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] on wrong shapes.
    pub fn encode(&self, cells: &mut [Vec<u8>]) -> Result<(), Error> {
        self.check_cells(cells)?;
        let (n, r, m, eps) = (self.n, self.r, self.m, self.epsilon);
        // Local parity inside each data chunk.
        for c in 0..n - m {
            let data: Vec<Vec<u8>> = (0..r - eps).map(|i| cells[i * n + c].clone()).collect();
            let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let mut parity: Vec<Vec<u8>> = (0..eps).map(|_| vec![0u8; cells[c].len()]).collect();
            {
                let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
                self.col_code.encode_regions(&data_refs, &mut prefs)?;
            }
            for (k, p) in parity.into_iter().enumerate() {
                cells[(r - eps + k) * n + c] = p;
            }
        }
        // Device-level parity chunks, row by row.
        for i in 0..r {
            let data: Vec<Vec<u8>> = (0..n - m).map(|c| cells[i * n + c].clone()).collect();
            let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let mut parity: Vec<Vec<u8>> = (0..m).map(|_| vec![0u8; cells[0].len()]).collect();
            {
                let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
                self.row_code.encode_regions(&data_refs, &mut prefs)?;
            }
            for (k, p) in parity.into_iter().enumerate() {
                cells[i * n + (n - m + k)] = p;
            }
        }
        Ok(())
    }

    /// Repairs a stripe: first local (intra-chunk) repair of chunks with at
    /// most `ε` lost sectors, then device-level repair of chunks lost
    /// entirely or beyond local repair.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unrecoverable`] if more than `m` chunks need
    /// device-level repair.
    pub fn decode(&self, cells: &mut [Vec<u8>], erased: &[(usize, usize)]) -> Result<(), Error> {
        self.check_cells(cells)?;
        let (n, r, m, eps) = (self.n, self.r, self.m, self.epsilon);
        let mut per_chunk: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, c) in erased {
            if i >= r || c >= n {
                return Err(Error::InvalidPattern(format!("({i},{c}) out of range")));
            }
            per_chunk[c].push(i);
        }
        let mut device_repair: Vec<usize> = Vec::new();
        for c in 0..n {
            let lost = &per_chunk[c];
            if lost.is_empty() {
                continue;
            }
            // Parity chunks have no local code in this scheme.
            if c >= n - m || lost.len() > eps {
                device_repair.push(c);
                continue;
            }
            // Local repair via the (r, r−ε) column code.
            let survivors: Vec<usize> = (0..r).filter(|i| !lost.contains(i)).collect();
            let use_rows = &survivors[..r - eps];
            let coeff = self.col_code.recovery_coefficients(use_rows, lost)?;
            let avail: Vec<Vec<u8>> = use_rows.iter().map(|&i| cells[i * n + c].clone()).collect();
            let avail_refs: Vec<&[u8]> = avail.iter().map(Vec::as_slice).collect();
            let mut outs: Vec<Vec<u8>> = lost.iter().map(|_| vec![0u8; cells[0].len()]).collect();
            {
                let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
                self.col_code
                    .apply_coefficients(&coeff, &avail_refs, &mut orefs)?;
            }
            for (&i, buf) in lost.iter().zip(outs) {
                cells[i * n + c] = buf;
            }
        }
        if device_repair.len() > m {
            return Err(Error::Unrecoverable(format!(
                "{} chunks need device-level repair, only {} tolerated",
                device_repair.len(),
                m
            )));
        }
        if device_repair.is_empty() {
            return Ok(());
        }
        // Row-wise repair of the remaining chunks.
        let survivors: Vec<usize> = (0..n)
            .filter(|c| !device_repair.contains(c))
            .take(n - m)
            .collect();
        let coeff = self
            .row_code
            .recovery_coefficients(&survivors, &device_repair)?;
        for i in 0..r {
            let avail: Vec<Vec<u8>> = survivors
                .iter()
                .map(|&c| cells[i * n + c].clone())
                .collect();
            let avail_refs: Vec<&[u8]> = avail.iter().map(Vec::as_slice).collect();
            let mut outs: Vec<Vec<u8>> = device_repair
                .iter()
                .map(|_| vec![0u8; cells[0].len()])
                .collect();
            {
                let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
                self.row_code
                    .apply_coefficients(&coeff, &avail_refs, &mut orefs)?;
            }
            for (&c, buf) in device_repair.iter().zip(outs) {
                cells[i * n + c] = buf;
            }
        }
        Ok(())
    }

    fn check_cells(&self, cells: &[Vec<u8>]) -> Result<(), Error> {
        if cells.len() != self.n * self.r {
            return Err(Error::ShapeMismatch(format!(
                "expected {} cells, got {}",
                self.n * self.r,
                cells.len()
            )));
        }
        let len = cells[0].len();
        if cells.iter().any(|c| c.len() != len) {
            return Err(Error::ShapeMismatch("cells must have equal length".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_gf::Gf8;

    fn filled(n: usize, r: usize, scheme: &IdrScheme<Gf8>) -> Vec<Vec<u8>> {
        let mut cells = vec![vec![0u8; 8]; n * r];
        for i in 0..r - scheme.epsilon() {
            for c in 0..n - scheme.m() {
                let v = (i * 17 + c * 5 + 1) as u8;
                cells[i * n + c].fill(v);
            }
        }
        cells
    }

    #[test]
    fn local_burst_repaired_without_device_parity() {
        let scheme: IdrScheme<Gf8> = IdrScheme::new(6, 8, 1, 2).unwrap();
        let mut cells = filled(6, 8, &scheme);
        scheme.encode(&mut cells).unwrap();
        let pristine = cells.clone();
        // Two-sector burst in chunk 2: within ε = 2, repaired locally.
        let erased = vec![(3, 2), (4, 2)];
        for &(i, c) in &erased {
            cells[i * 6 + c].fill(0);
        }
        scheme.decode(&mut cells, &erased).unwrap();
        assert_eq!(cells, pristine);
    }

    #[test]
    fn device_failure_plus_local_burst() {
        let scheme: IdrScheme<Gf8> = IdrScheme::new(6, 8, 1, 2).unwrap();
        let mut cells = filled(6, 8, &scheme);
        scheme.encode(&mut cells).unwrap();
        let pristine = cells.clone();
        let mut erased: Vec<(usize, usize)> = (0..8).map(|i| (i, 1)).collect();
        erased.extend([(0, 4), (1, 4)]);
        for &(i, c) in &erased {
            cells[i * 6 + c].fill(0);
        }
        scheme.decode(&mut cells, &erased).unwrap();
        assert_eq!(cells, pristine);
    }

    #[test]
    fn too_many_damaged_chunks_fail() {
        let scheme: IdrScheme<Gf8> = IdrScheme::new(4, 4, 1, 1).unwrap();
        let mut cells = filled(4, 4, &scheme);
        scheme.encode(&mut cells).unwrap();
        // Two chunks each lose 2 > ε sectors: both need device repair > m.
        let erased = vec![(0, 0), (1, 0), (0, 1), (1, 1)];
        assert!(matches!(
            scheme.decode(&mut cells, &erased),
            Err(Error::Unrecoverable(_))
        ));
    }

    #[test]
    fn redundancy_accounting_matches_section_2() {
        // §2: n=8, m=2, β=4 → IDR spends 4·6 = 24 extra sectors.
        let scheme: IdrScheme<Gf8> = IdrScheme::new(8, 16, 2, 4).unwrap();
        assert_eq!(scheme.redundant_sectors() - 2 * 16, 24);
    }

    #[test]
    fn validation() {
        assert!(IdrScheme::<Gf8>::new(4, 4, 0, 1).is_err());
        assert!(IdrScheme::<Gf8>::new(4, 4, 1, 0).is_err());
        assert!(IdrScheme::<Gf8>::new(4, 4, 1, 4).is_err());
    }
}
