//! The codec-generic face of the baseline codes: `ErasureCode` round
//! trips for [`SdCode`] and [`RsArrayCode`] on flat stripe buffers.

use stair_code::{CodeError, ErasureCode, ErasureSet, StripeBuf};
use stair_gf::Gf8;
use stair_sd::{RsArrayCode, SdCode};

fn filled_buf(code: &dyn ErasureCode, symbol: usize, seed: u8) -> StripeBuf {
    let geom = code.geometry();
    let mut buf = StripeBuf::new(geom.r, geom.n, symbol).unwrap();
    let payload: Vec<u8> = (0..geom.data_per_stripe() * symbol)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect();
    buf.write_cells(&geom.data_cells, &payload).unwrap();
    code.encode(&mut buf).unwrap();
    buf
}

#[test]
fn sd_device_plus_sectors_round_trip() {
    let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 2).unwrap();
    let mut buf = filled_buf(&code, 8, 17);
    let pristine = buf.clone();
    // One whole device plus two extra sectors — the full claimed coverage.
    let erased = ErasureSet::new((0..4).map(|i| (i, 2)).chain([(0, 0), (3, 5)]));
    buf.erase(erased.cells());
    let plan = code.plan(&erased).unwrap();
    assert!(plan.mult_xors().unwrap() > 0);
    code.apply(&plan, &mut buf).unwrap();
    assert_eq!(buf, pristine);
}

#[test]
fn sd_trait_encode_matches_inherent_encode() {
    let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 2).unwrap();
    let buf = filled_buf(&code, 8, 3);
    let geom = code.geometry();
    let mut stripe = stair_sd::SdStripe::new(&code, 8);
    for &(row, col) in &geom.data_cells {
        stripe
            .cell_mut(row, col)
            .copy_from_slice(buf.cell((row, col)));
    }
    code.encode(&mut stripe).unwrap();
    for row in 0..4 {
        for col in 0..6 {
            assert_eq!(stripe.cell(row, col), buf.cell((row, col)), "({row},{col})");
        }
    }
}

#[test]
fn sd_update_equals_reencode() {
    let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 2).unwrap();
    let mut buf = filled_buf(&code, 8, 29);
    let geom = code.geometry();
    let cell = geom.data_cells[5];
    let touched = code.update(&mut buf, cell, &[0xAB; 8]).unwrap();
    // At least the row parity plus the global sectors depend on this cell.
    assert!(!touched.is_empty() && touched.len() <= geom.parity_cells.len());
    let mut reference = StripeBuf::new(geom.r, geom.n, 8).unwrap();
    reference
        .write_cells(&geom.data_cells, &buf.read_cells(&geom.data_cells))
        .unwrap();
    ErasureCode::encode(&code, &mut reference).unwrap();
    assert_eq!(buf, reference);
}

#[test]
fn sd_beyond_coverage_unrecoverable() {
    let code: SdCode<Gf8> = SdCode::new(6, 4, 1, 1).unwrap();
    let erased = ErasureSet::devices(&[0, 1], 4);
    assert!(matches!(
        code.plan(&erased),
        Err(CodeError::Unrecoverable(_))
    ));
}

#[test]
fn rs_device_failures_round_trip() {
    let code: RsArrayCode<Gf8> = RsArrayCode::new(6, 4, 2).unwrap();
    let mut buf = filled_buf(&code, 16, 41);
    let pristine = buf.clone();
    let erased = ErasureSet::devices(&[1, 4], 4);
    buf.erase(erased.cells());
    let plan = code.plan(&erased).unwrap();
    code.apply(&plan, &mut buf).unwrap();
    assert_eq!(buf, pristine);
}

#[test]
fn rs_has_no_sector_tolerance_beyond_m_per_row() {
    let code: RsArrayCode<Gf8> = RsArrayCode::new(6, 4, 2).unwrap();
    assert_eq!(code.geometry().s, 0);
    // Three erasures in one row exceed m = 2.
    let erased = ErasureSet::new([(1, 0), (1, 2), (1, 5)]);
    assert!(matches!(
        code.plan(&erased),
        Err(CodeError::Unrecoverable(_))
    ));
    // But m erasures per row, across many rows, are fine.
    let mut buf = filled_buf(&code, 4, 2);
    let pristine = buf.clone();
    let spread = ErasureSet::new([(0, 0), (0, 3), (1, 1), (1, 2), (2, 4), (3, 5)]);
    buf.erase(spread.cells());
    let plan = code.plan(&spread).unwrap();
    code.apply(&plan, &mut buf).unwrap();
    assert_eq!(buf, pristine);
}

#[test]
fn rs_update_patches_row_parities_only() {
    let code: RsArrayCode<Gf8> = RsArrayCode::new(6, 4, 2).unwrap();
    let mut buf = filled_buf(&code, 8, 13);
    let touched = code.update(&mut buf, (2, 1), &[0x5A; 8]).unwrap();
    assert_eq!(touched, vec![(2, 4), (2, 5)]);
    let geom = code.geometry();
    let mut reference = StripeBuf::new(geom.r, geom.n, 8).unwrap();
    reference
        .write_cells(&geom.data_cells, &buf.read_cells(&geom.data_cells))
        .unwrap();
    code.encode(&mut reference).unwrap();
    assert_eq!(buf, reference);
    // Parity targets rejected.
    assert!(matches!(
        code.update(&mut buf, (0, 5), &[0; 8]),
        Err(CodeError::InvalidPattern(_))
    ));
}

#[test]
fn plans_do_not_cross_codecs() {
    let sd: SdCode<Gf8> = SdCode::new(6, 4, 1, 2).unwrap();
    let rs: RsArrayCode<Gf8> = RsArrayCode::new(6, 4, 1).unwrap();
    let erased = ErasureSet::devices(&[0], 4);
    let sd_plan = sd.plan(&erased).unwrap();
    let mut buf = filled_buf(&rs, 8, 7);
    assert!(matches!(
        rs.apply(&sd_plan, &mut buf),
        Err(CodeError::InvalidPattern(_))
    ));
}
