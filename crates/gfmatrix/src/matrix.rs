//! Dense row-major matrices over a GF(2^w) field.

// Coordinate-indexed loops mirror the paper's (row, column) notation and
// stay symmetric with the write side; iterator adaptors would obscure that.
#![allow(clippy::needless_range_loop)]
use core::fmt;

use stair_gf::Field;

use crate::Error;

/// A dense matrix over the field `F`, stored row-major.
///
/// All arithmetic is exact field arithmetic; there is no rounding and no
/// pivoting-for-stability concern, so Gaussian elimination only needs to find
/// *any* non-zero pivot.
///
/// # Example
///
/// ```
/// use stair_gf::{Field, Gf8};
/// use stair_gfmatrix::Matrix;
///
/// let m: Matrix<Gf8> = Matrix::from_fn(2, 2, |r, c| Gf8::elem(r * 2 + c + 1));
/// let inv = m.inverted()?;
/// assert!(m.mul(&inv)?.is_identity());
/// # Ok::<(), stair_gfmatrix::Error>(())
/// ```
#[derive(Clone, Eq, Hash, PartialEq)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F::Elem>,
}

impl<F: Field> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix<GF(2^{})> {}x{} [", F::W, self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>3}", F::value(self.get(r, c)))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl<F: Field> Matrix<F> {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![F::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, F::one());
        }
        m
    }

    /// Creates a matrix whose `(r, c)` entry is `f(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F::Elem) -> Self {
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Creates a matrix from rows of equal length.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if there are no rows, a row is empty,
    /// or rows have different lengths.
    pub fn from_rows(rows: Vec<Vec<F::Elem>>) -> Result<Self, Error> {
        let nrows = rows.len();
        let ncols = rows.first().map(Vec::len).unwrap_or(0);
        if nrows == 0 || ncols == 0 {
            return Err(Error::InvalidShape("matrix must be non-empty".into()));
        }
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(Error::InvalidShape("rows must have equal length".into()));
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data: rows.into_iter().flatten().collect(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `(r, c)` entry.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> F::Elem {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the `(r, c)` entry.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F::Elem) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[F::Elem] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] unless `self.cols == rhs.rows`.
    pub fn mul(&self, rhs: &Self) -> Result<Self, Error> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
                op: "mul",
            });
        }
        let mut out = Self::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == F::zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    let cur = out.get(r, c);
                    out.set(r, c, F::add(cur, F::mul(a, rhs.get(k, c))));
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] unless `v.len() == self.cols`.
    pub fn mul_vec(&self, v: &[F::Elem]) -> Result<Vec<F::Elem>, Error> {
        if v.len() != self.cols {
            return Err(Error::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (v.len(), 1),
                op: "mul_vec",
            });
        }
        Ok((0..self.rows)
            .map(|r| {
                let mut acc = F::zero();
                for c in 0..self.cols {
                    acc = F::add(acc, F::mul(self.get(r, c), v[c]));
                }
                acc
            })
            .collect())
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Returns a new matrix keeping only the given rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or contains an out-of-bounds row.
    pub fn select_rows(&self, idx: &[usize]) -> Self {
        assert!(!idx.is_empty(), "row selection must be non-empty");
        Self::from_fn(idx.len(), self.cols, |r, c| self.get(idx[r], c))
    }

    /// Returns a new matrix keeping only the given columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or contains an out-of-bounds column.
    pub fn select_cols(&self, idx: &[usize]) -> Self {
        assert!(!idx.is_empty(), "column selection must be non-empty");
        Self::from_fn(self.rows, idx.len(), |r, c| self.get(r, idx[c]))
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] unless row counts agree.
    pub fn hstack(&self, rhs: &Self) -> Result<Self, Error> {
        if self.rows != rhs.rows {
            return Err(Error::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
                op: "hstack",
            });
        }
        Ok(Self::from_fn(self.rows, self.cols + rhs.cols, |r, c| {
            if c < self.cols {
                self.get(r, c)
            } else {
                rhs.get(r, c - self.cols)
            }
        }))
    }

    /// Vertical concatenation (`self` on top of `rhs`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] unless column counts agree.
    pub fn vstack(&self, rhs: &Self) -> Result<Self, Error> {
        if self.cols != rhs.cols {
            return Err(Error::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
                op: "vstack",
            });
        }
        Ok(Self::from_fn(self.rows + rhs.rows, self.cols, |r, c| {
            if r < self.rows {
                self.get(r, c)
            } else {
                rhs.get(r - self.rows, c)
            }
        }))
    }

    /// True if this is a square identity matrix.
    pub fn is_identity(&self) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|r| {
                (0..self.cols).all(|c| self.get(r, c) == if r == c { F::one() } else { F::zero() })
            })
    }

    /// Computes the inverse by Gauss–Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Singular`] if the matrix is not square or not
    /// invertible.
    pub fn inverted(&self) -> Result<Self, Error> {
        if self.rows != self.cols {
            return Err(Error::Singular);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Self::identity(n);
        for col in 0..n {
            // Find a pivot; any non-zero entry works in exact arithmetic.
            let pivot = (col..n)
                .find(|&r| a.get(r, col) != F::zero())
                .ok_or(Error::Singular)?;
            a.swap_rows(col, pivot);
            inv.swap_rows(col, pivot);
            let p = a.get(col, col);
            let pinv = F::inv(p).expect("pivot is non-zero");
            a.scale_row(col, pinv);
            inv.scale_row(col, pinv);
            for r in 0..n {
                if r != col {
                    let factor = a.get(r, col);
                    if factor != F::zero() {
                        a.add_scaled_row(r, col, factor);
                        inv.add_scaled_row(r, col, factor);
                    }
                }
            }
        }
        Ok(inv)
    }

    /// Rank via row reduction.
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        for col in 0..self.cols {
            if rank == self.rows {
                break;
            }
            if let Some(pivot) = (rank..self.rows).find(|&r| a.get(r, col) != F::zero()) {
                a.swap_rows(rank, pivot);
                let pinv = F::inv(a.get(rank, col)).expect("pivot is non-zero");
                a.scale_row(rank, pinv);
                for r in 0..self.rows {
                    if r != rank {
                        let factor = a.get(r, col);
                        if factor != F::zero() {
                            a.add_scaled_row(r, rank, factor);
                        }
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// Solves `self · X = rhs` for `X` when the system has a unique solution.
    ///
    /// `self` may be rectangular (more equations than unknowns); elimination
    /// proceeds on the augmented system.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `rhs.rows != self.rows`;
    /// * [`Error::Underdetermined`] if `rank < self.cols`;
    /// * [`Error::Inconsistent`] if the equations contradict each other.
    pub fn solve(&self, rhs: &Self) -> Result<Self, Error> {
        self.solve_inner(rhs, true)
    }

    /// Like [`Matrix::solve`], but tolerates surplus equations whose
    /// left-hand side eliminates to zero: they constrain the right-hand
    /// side only and are *ignored* instead of reported as
    /// [`Error::Inconsistent`].
    ///
    /// This is the right solver for erasure-recovery systems: with fewer
    /// erased symbols than parity-check equations, the surplus checks
    /// relate only surviving symbols, and every true codeword satisfies
    /// them — they carry no information about the erased values.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `rhs.rows != self.rows`;
    /// * [`Error::Underdetermined`] if `rank < self.cols`.
    pub fn solve_subspace(&self, rhs: &Self) -> Result<Self, Error> {
        self.solve_inner(rhs, false)
    }

    fn solve_inner(&self, rhs: &Self, check_residual: bool) -> Result<Self, Error> {
        if rhs.rows != self.rows {
            return Err(Error::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
                op: "solve",
            });
        }
        let mut a = self.clone();
        let mut b = rhs.clone();
        let unknowns = self.cols;
        let mut rank = 0;
        for col in 0..unknowns {
            if rank == self.rows {
                break;
            }
            let Some(pivot) = (rank..self.rows).find(|&r| a.get(r, col) != F::zero()) else {
                continue;
            };
            a.swap_rows(rank, pivot);
            b.swap_rows(rank, pivot);
            let pinv = F::inv(a.get(rank, col)).expect("pivot is non-zero");
            a.scale_row(rank, pinv);
            b.scale_row(rank, pinv);
            for r in 0..self.rows {
                if r != rank {
                    let factor = a.get(r, col);
                    if factor != F::zero() {
                        a.add_scaled_row(r, rank, factor);
                        b.add_scaled_row(r, rank, factor);
                    }
                }
            }
            rank += 1;
        }
        if rank < unknowns {
            return Err(Error::Underdetermined { rank, unknowns });
        }
        // Check remaining equations are consistent (all-zero rows of `a`
        // must map to all-zero rows of `b`).
        if check_residual {
            for r in rank..self.rows {
                let zero_row = (0..unknowns).all(|c| a.get(r, c) == F::zero());
                debug_assert!(zero_row, "rows beyond the rank must have been eliminated");
                if (0..b.cols).any(|c| b.get(r, c) != F::zero()) {
                    return Err(Error::Inconsistent);
                }
            }
        }
        // After Gauss–Jordan with full rank, rows 0..unknowns of `a` hold the
        // identity (columns were visited in order), so `b`'s top block is X.
        let mut x = Self::zero(unknowns, b.cols);
        for r in 0..unknowns {
            for c in 0..b.cols {
                x.set(r, c, b.get(r, c));
            }
        }
        Ok(x)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            let t = self.get(r1, c);
            self.set(r1, c, self.get(r2, c));
            self.set(r2, c, t);
        }
    }

    fn scale_row(&mut self, r: usize, factor: F::Elem) {
        for c in 0..self.cols {
            self.set(r, c, F::mul(self.get(r, c), factor));
        }
    }

    /// `row[r] ^= factor · row[src]` — in GF(2^w) addition and subtraction
    /// coincide, so this both introduces and eliminates entries.
    fn add_scaled_row(&mut self, r: usize, src: usize, factor: F::Elem) {
        for c in 0..self.cols {
            let v = F::add(self.get(r, c), F::mul(factor, self.get(src, c)));
            self.set(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_gf::{Field, Gf8};

    type M = Matrix<Gf8>;

    #[test]
    fn identity_multiplication_is_neutral() {
        let a = M::from_fn(3, 3, |r, c| Gf8::elem((r * 7 + c * 3 + 1) % 256));
        assert_eq!(a.mul(&M::identity(3)).unwrap(), a);
        assert_eq!(M::identity(3).mul(&a).unwrap(), a);
    }

    #[test]
    fn inverse_round_trip() {
        // A Cauchy-like matrix is guaranteed invertible.
        let a = M::from_fn(4, 4, |r, c| {
            Gf8::inv(Gf8::add(Gf8::elem(r), Gf8::elem(c + 4))).unwrap()
        });
        let inv = a.inverted().unwrap();
        assert!(a.mul(&inv).unwrap().is_identity());
        assert!(inv.mul(&a).unwrap().is_identity());
    }

    #[test]
    fn singular_matrix_detected() {
        // Two equal rows.
        let a = M::from_rows(vec![vec![1, 2], vec![1, 2]]).unwrap();
        assert_eq!(a.inverted(), Err(Error::Singular));
        assert_eq!(a.rank(), 1);
    }

    #[test]
    fn solve_square_system() {
        let a = M::from_fn(3, 3, |r, c| {
            Gf8::inv(Gf8::add(Gf8::elem(r), Gf8::elem(c + 3))).unwrap()
        });
        let x = M::from_rows(vec![vec![5], vec![7], vec![11]]).unwrap();
        let b = a.mul(&x).unwrap();
        assert_eq!(a.solve(&b).unwrap(), x);
    }

    #[test]
    fn solve_overdetermined_consistent_system() {
        let a = M::from_fn(3, 3, |r, c| {
            Gf8::inv(Gf8::add(Gf8::elem(r), Gf8::elem(c + 3))).unwrap()
        });
        let x = M::from_rows(vec![vec![1], vec![2], vec![3]]).unwrap();
        let b = a.mul(&x).unwrap();
        // Duplicate the system: 6 equations, 3 unknowns, still consistent.
        let a2 = a.vstack(&a).unwrap();
        let b2 = b.vstack(&b).unwrap();
        assert_eq!(a2.solve(&b2).unwrap(), x);
    }

    #[test]
    fn solve_detects_inconsistency_and_underdetermination() {
        // Full column rank but contradictory equations: x = 1 and x = 2.
        let a1 = M::from_rows(vec![vec![1], vec![1]]).unwrap();
        let b_bad = M::from_rows(vec![vec![1], vec![2]]).unwrap();
        assert_eq!(a1.solve(&b_bad), Err(Error::Inconsistent));
        // Rank-deficient column: reported as underdetermined (even though
        // this particular right-hand side is also contradictory).
        let a2 = M::from_rows(vec![vec![1, 0], vec![1, 0]]).unwrap();
        let b = M::from_rows(vec![vec![1], vec![1]]).unwrap();
        assert_eq!(
            a2.solve(&b),
            Err(Error::Underdetermined {
                rank: 1,
                unknowns: 2
            })
        );
    }

    #[test]
    fn stacking_and_selection() {
        let a = M::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap();
        let b = M::from_rows(vec![vec![5, 6], vec![7, 8]]).unwrap();
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.row(0), &[1, 2, 5, 6]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.rows(), 4);
        assert_eq!(v.row(3), &[7, 8]);
        assert_eq!(h.select_cols(&[3, 0]).row(0), &[6, 1]);
        assert_eq!(v.select_rows(&[2]).row(0), &[5, 6]);
    }

    #[test]
    fn transpose_involution() {
        let a = M::from_fn(2, 5, |r, c| Gf8::elem(r * 5 + c));
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = M::from_fn(3, 4, |r, c| Gf8::elem((r + 2 * c + 1) % 256));
        let v = vec![9u8, 8, 7, 6];
        let col = M::from_rows(v.iter().map(|&x| vec![x]).collect()).unwrap();
        let prod = a.mul(&col).unwrap();
        let got = a.mul_vec(&v).unwrap();
        for r in 0..3 {
            assert_eq!(got[r], prod.get(r, 0));
        }
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(matches!(
            M::from_rows(vec![vec![1, 2], vec![3]]),
            Err(Error::InvalidShape(_))
        ));
        assert!(matches!(M::from_rows(vec![]), Err(Error::InvalidShape(_))));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let a = M::identity(2);
        let _ = a.get(2, 0);
    }
}
