//! Error type for matrix operations.

use core::fmt;

/// Errors returned by matrix constructors and solvers.
#[derive(Clone, Debug, Eq, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Shape of the left/first operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        right: (usize, usize),
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The matrix is singular (or the system has no unique solution).
    Singular,
    /// A linear system had fewer independent equations than unknowns.
    Underdetermined {
        /// Rank found during elimination.
        rank: usize,
        /// Number of unknowns requested.
        unknowns: usize,
    },
    /// An inconsistent linear system (no solution exists).
    Inconsistent,
    /// A structured constructor received invalid points (duplicates, or more
    /// points than the field has elements).
    InvalidPoints(String),
    /// A matrix constructor received rows of unequal length or zero size.
    InvalidShape(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { left, right, op } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Error::Singular => write!(f, "matrix is singular"),
            Error::Underdetermined { rank, unknowns } => {
                write!(
                    f,
                    "underdetermined system: rank {rank} < {unknowns} unknowns"
                )
            }
            Error::Inconsistent => write!(f, "inconsistent linear system"),
            Error::InvalidPoints(msg) => write!(f, "invalid construction points: {msg}"),
            Error::InvalidShape(msg) => write!(f, "invalid matrix shape: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
