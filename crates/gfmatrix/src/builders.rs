//! Structured matrix constructors used to build MDS generator matrices.

// Coordinate-indexed loops mirror the paper's (row, column) notation and
// stay symmetric with the write side; iterator adaptors would obscure that.
#![allow(clippy::needless_range_loop)]
use stair_gf::Field;

use crate::{Error, Matrix};

/// Builds the Cauchy matrix `C[i][j] = 1 / (xs[i] + ys[j])`.
///
/// Every square submatrix of a Cauchy matrix is nonsingular, which is the
/// property that makes `[I | C]` an MDS generator (Cauchy Reed-Solomon
/// codes [8, 38] in the paper's references).
///
/// # Errors
///
/// Returns [`Error::InvalidPoints`] if `xs` and `ys` are not pairwise
/// distinct across both slices (a shared value would make `x + y = 0`
/// non-invertible), or if either slice is empty.
pub fn cauchy<F: Field>(xs: &[F::Elem], ys: &[F::Elem]) -> Result<Matrix<F>, Error> {
    if xs.is_empty() || ys.is_empty() {
        return Err(Error::InvalidPoints("point sets must be non-empty".into()));
    }
    let mut all: Vec<usize> = xs.iter().chain(ys).map(|&e| F::value(e)).collect();
    all.sort_unstable();
    if all.windows(2).any(|w| w[0] == w[1]) {
        return Err(Error::InvalidPoints(
            "xs ∪ ys must be pairwise distinct".into(),
        ));
    }
    Ok(Matrix::from_fn(xs.len(), ys.len(), |i, j| {
        F::inv(F::add(xs[i], ys[j])).expect("distinct points imply non-zero sum")
    }))
}

/// Builds the `k × p` Cauchy parity block for a systematic `(k + p, k)` MDS
/// code, using the canonical points `x_i = i` and `y_j = k + j`.
///
/// The systematic generator is `[I_k | A]`; encoding multiplies the data row
/// vector by `A` to obtain the `p` parity symbols.
///
/// # Errors
///
/// Returns [`Error::InvalidPoints`] if `k + p` exceeds the field order
/// (there are not enough distinct points), or if `k` or `p` is zero.
pub fn cauchy_parity<F: Field>(k: usize, p: usize) -> Result<Matrix<F>, Error> {
    if k == 0 || p == 0 {
        return Err(Error::InvalidPoints("k and p must be positive".into()));
    }
    if k + p > F::ORDER {
        return Err(Error::InvalidPoints(format!(
            "k + p = {} exceeds field order {}",
            k + p,
            F::ORDER
        )));
    }
    let xs: Vec<F::Elem> = (0..k).map(F::elem).collect();
    let ys: Vec<F::Elem> = (k..k + p).map(F::elem).collect();
    cauchy::<F>(&xs, &ys)
}

/// Builds the `rows × xs.len()` Vandermonde-style matrix `V[i][j] = xs[j]^i`.
///
/// Used by the SD-code baseline, whose global-parity equations take
/// coefficients `α^(l·q)` over the stripe symbols (row `l` is then the `l`-th
/// power row of the point vector).
///
/// # Errors
///
/// Returns [`Error::InvalidPoints`] if `rows == 0` or `xs` is empty.
pub fn vandermonde<F: Field>(rows: usize, xs: &[F::Elem]) -> Result<Matrix<F>, Error> {
    if rows == 0 || xs.is_empty() {
        return Err(Error::InvalidPoints(
            "vandermonde needs positive dimensions".into(),
        ));
    }
    Ok(Matrix::from_fn(rows, xs.len(), |i, j| F::pow(xs[j], i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_gf::{Field, Gf4, Gf8};

    #[test]
    fn cauchy_entries_match_definition() {
        let xs = [0u8, 1, 2];
        let ys = [3u8, 4];
        let c = cauchy::<Gf8>(&xs, &ys).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(c.get(i, j), Gf8::inv(xs[i] ^ ys[j]).unwrap());
            }
        }
    }

    #[test]
    fn cauchy_rejects_overlapping_points() {
        assert!(matches!(
            cauchy::<Gf8>(&[1, 2], &[2, 3]),
            Err(Error::InvalidPoints(_))
        ));
        assert!(matches!(
            cauchy::<Gf8>(&[1, 1], &[2]),
            Err(Error::InvalidPoints(_))
        ));
    }

    /// The defining property we rely on for MDS codes: *every* square
    /// submatrix of a Cauchy matrix is invertible. Exhaustive over GF(2^4).
    #[test]
    fn all_square_submatrices_nonsingular_gf4() {
        let a = cauchy_parity::<Gf4>(8, 8).unwrap();
        // All 1x1, plus a sweep of 2x2 and 3x3 submatrices.
        for r1 in 0..8 {
            for c1 in 0..8 {
                assert_ne!(a.get(r1, c1), 0);
                for r2 in r1 + 1..8 {
                    for c2 in c1 + 1..8 {
                        let sub = a.select_rows(&[r1, r2]).select_cols(&[c1, c2]);
                        assert!(sub.inverted().is_ok(), "2x2 at ({r1},{r2})x({c1},{c2})");
                    }
                }
            }
        }
    }

    #[test]
    fn cauchy_parity_range_checks() {
        assert!(cauchy_parity::<Gf4>(10, 6).is_ok());
        assert!(matches!(
            cauchy_parity::<Gf4>(10, 7),
            Err(Error::InvalidPoints(_))
        ));
        assert!(matches!(
            cauchy_parity::<Gf8>(0, 3),
            Err(Error::InvalidPoints(_))
        ));
    }

    #[test]
    fn vandermonde_powers() {
        let xs = [1u8, 2, 3];
        let v = vandermonde::<Gf8>(3, &xs).unwrap();
        assert_eq!(v.row(0), &[1, 1, 1]);
        assert_eq!(v.row(1), &[1, 2, 3]);
        assert_eq!(v.get(2, 1), Gf8::mul(2, 2));
    }
}
