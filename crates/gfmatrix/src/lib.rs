//! Linear algebra over GF(2^w) for the STAIR codes reproduction.
//!
//! Provides the dense [`Matrix`] type with Gaussian elimination, inversion
//! and rectangular solving, plus the structured constructors erasure codes
//! are built from:
//!
//! * [`cauchy`] / [`cauchy_parity`] — Cauchy matrices, whose square
//!   submatrices are all nonsingular. A systematic generator `[I | A]` with a
//!   Cauchy `A` therefore yields an MDS code, the building block the paper
//!   uses for both `C_row` and `C_col` (§2, §3, [8, 38]);
//! * [`vandermonde`] — used by the SD-code baseline's `α^(l·q)` global-parity
//!   equations.
//!
//! # Example
//!
//! ```
//! use stair_gf::Gf8;
//! use stair_gfmatrix::{cauchy_parity, Matrix};
//!
//! // 4 data symbols, 2 parity symbols: any 2 erasures are recoverable
//! // because every square submatrix of the Cauchy block is invertible.
//! let a: Matrix<Gf8> = cauchy_parity(4, 2)?;
//! let gen = Matrix::identity(4).hstack(&a)?;
//! assert_eq!(gen.rows(), 4);
//! assert_eq!(gen.cols(), 6);
//! # Ok::<(), stair_gfmatrix::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builders;
mod error;
mod matrix;

pub use builders::{cauchy, cauchy_parity, vandermonde};
pub use error::Error;
pub use matrix::Matrix;
