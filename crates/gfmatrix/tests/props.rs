//! Property tests for matrix algebra over GF(2^8).

use proptest::prelude::*;
use stair_gf::Gf8;
use stair_gfmatrix::{cauchy_parity, Matrix};

type M = Matrix<Gf8>;

fn square(n: usize) -> impl Strategy<Value = M> {
    proptest::collection::vec(any::<u8>(), n * n)
        .prop_map(move |v| M::from_fn(n, n, |r, c| v[r * n + c]))
}

proptest! {
    /// (A·B)·C = A·(B·C)
    #[test]
    fn mul_is_associative(a in square(4), b in square(4), c in square(4)) {
        let lhs = a.mul(&b).unwrap().mul(&c).unwrap();
        let rhs = a.mul(&b.mul(&c).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// If A is invertible then A·A⁻¹ = I and (A⁻¹)⁻¹ = A.
    #[test]
    fn inverse_round_trips_when_invertible(a in square(5)) {
        if let Ok(inv) = a.inverted() {
            prop_assert!(a.mul(&inv).unwrap().is_identity());
            prop_assert_eq!(inv.inverted().unwrap(), a);
        } else {
            prop_assert!(a.rank() < 5);
        }
    }

    /// rank(A) == rank(Aᵀ)
    #[test]
    fn rank_invariant_under_transpose(a in square(4)) {
        prop_assert_eq!(a.rank(), a.transpose().rank());
    }

    /// Solving A·x = A·x0 recovers x0 for invertible A.
    #[test]
    fn solve_recovers_known_solution(
        a in square(4),
        x in proptest::collection::vec(any::<u8>(), 4)
    ) {
        if a.rank() == 4 {
            let xm = M::from_rows(x.iter().map(|&v| vec![v]).collect()).unwrap();
            let b = a.mul(&xm).unwrap();
            prop_assert_eq!(a.solve(&b).unwrap(), xm);
        }
    }

    /// Any k×k selection of a systematic Cauchy generator's columns is
    /// invertible — the MDS property the whole workspace rests on.
    #[test]
    fn systematic_cauchy_generator_is_mds(
        cols in proptest::collection::btree_set(0usize..10, 6)
    ) {
        let k = 6;
        let p = 4;
        let a = cauchy_parity::<Gf8>(k, p).unwrap();
        let gen = M::identity(k).hstack(&a).unwrap();
        let idx: Vec<usize> = cols.into_iter().collect();
        let sub = gen.select_cols(&idx);
        prop_assert!(sub.inverted().is_ok(), "column subset {:?} must be invertible", idx);
    }
}
