//! End-to-end tests for the batched data path over the wire: one
//! BATCH frame per shard, one stripe lock and one codec pass per
//! touched stripe — asserted against the store's instrumentation
//! counters through a cloned handle that shares them with the server.

use std::path::PathBuf;
use std::sync::Arc;

use stair_device::{BlockDevice, IoBatch, IoOp, OpResult};
use stair_net::{Client, Server, ServerConfig, ShardSet, StripedClient};
use stair_store::{StoreOptions, StripeStore};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-batch-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(41).wrapping_add(seed))
        .collect()
}

struct Harness {
    dir: PathBuf,
    addr: String,
    handle: stair_net::ServerHandle,
    running: std::thread::JoinHandle<Result<(), stair_net::NetError>>,
    /// Shard-0 store handles sharing the server's instrumentation
    /// counters (a `StripeStore` clone shares its `Arc` internals).
    stores: Vec<StripeStore>,
}

/// Boots an in-process server over fresh shards, keeping cloned store
/// handles so tests can read `io_stats()` for traffic the server served.
fn serve(tag: &str, shards: usize, opts: &StoreOptions) -> Harness {
    let dir = tmpdir(tag);
    let set = ShardSet::create(&dir, shards, opts).expect("create shards");
    let stores = (0..shards)
        .map(|i| set.shard(i).expect("shard").clone())
        .collect();
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    Harness {
        dir,
        addr,
        handle,
        running,
        stores,
    }
}

impl Harness {
    fn stop(self) {
        self.handle.shutdown();
        self.running.join().expect("server thread").expect("run");
        std::fs::remove_dir_all(&self.dir).expect("cleanup");
    }
}

/// The acceptance scenario: 64 single-block writes landing in one
/// stripe cross the wire as one request frame and perform exactly one
/// parity pass (full re-encode) under one stripe-lock acquisition.
#[test]
fn one_stripe_batch_is_one_frame_and_one_parity_pass_over_tcp() {
    // rs:5,16,1 → (5−1)·16 = 64 data blocks per stripe.
    let h = serve(
        "onepass",
        1,
        &StoreOptions {
            code: "rs:5,16,1".parse().unwrap(),
            symbol: 32,
            stripes: 4,
        },
    );
    let client = Client::connect(&h.addr).expect("connect");
    let sym = client.block_size() as u64;

    let mut batch = IoBatch::new();
    let mut expected = vec![0u8; (64 * sym) as usize];
    for k in 0..64u64 {
        let block = (k * 29) % 64; // scrambled submission order
        let data = pattern(sym as usize, block as u8);
        expected[(block * sym) as usize..((block + 1) * sym) as usize].copy_from_slice(&data);
        batch.write(block * sym, data);
    }

    let before = h.stores[0].io_stats();
    let result = client.submit(&batch).expect("submit");
    let after = h.stores[0].io_stats();

    assert_eq!(after.stripe_locks - before.stripe_locks, 1);
    assert_eq!(after.encode_passes - before.encode_passes, 1);
    assert_eq!(after.delta_update_calls, before.delta_update_calls);

    assert_eq!(result.results.len(), 64);
    assert_eq!(result.write.full_stripe_encodes, 1);
    assert_eq!(result.write.stripes_touched, 1);
    assert_eq!(result.write.bytes, 64 * sym);

    assert_eq!(client.read_at(0, expected.len()).expect("read"), expected);
    h.stop();
}

/// A mixed cross-shard batch through both client flavors returns
/// per-op results identical to the per-op path, and the striped client
/// sends one frame per shard (each shard's store sees exactly one
/// batched pass per touched stripe).
#[test]
fn cross_shard_batches_match_per_op_semantics() {
    let h = serve(
        "xshard",
        3,
        &StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 4,
        },
    );
    let client = Client::connect(&h.addr).expect("connect");
    let capacity = client.capacity() as usize;
    let base = pattern(capacity, 7);
    client.write_at(0, &base).expect("base write");

    let sym = client.block_size() as u64;
    let range = 20 * sym; // blocks per stripe × block size = one placement range
    let mut batch = IoBatch::new();
    batch
        .read(5, 100)
        .write(range, pattern(64, 9)) // start of shard 1's range
        .read(range * 2 + 500, 200) // shard 2
        .write(range * 3 + 7, pattern((2 * sym) as usize, 11)) // shard 0, range 3
        .read(range * 2 - 10, 20); // crosses the shard 1 → 2 boundary
    assert!(!batch.has_conflicts());

    let striped = StripedClient::connect(&h.addr, 2).expect("striped");
    for dev in [&client as &dyn BlockDevice, &striped as &dyn BlockDevice] {
        let result = dev.submit(&batch).expect("submit");
        let mut expected = base.clone();
        for op in batch.ops() {
            if let IoOp::Write { offset, data } = op {
                expected[*offset as usize..*offset as usize + data.len()].copy_from_slice(data);
            }
        }
        for (op, got) in batch.ops().iter().zip(&result.results) {
            match (op, got) {
                (IoOp::Read { offset, len }, OpResult::Read(data)) => {
                    assert_eq!(data, &expected[*offset as usize..*offset as usize + len]);
                }
                (IoOp::Write { data, .. }, OpResult::Write(w)) => {
                    assert_eq!(w.bytes, data.len() as u64);
                }
                other => panic!("result kind mismatch: {other:?}"),
            }
        }
        assert_eq!(dev.read_at(0, capacity).expect("verify"), expected);
    }
    h.stop();
}

/// Batches keep working when a shard is degraded (reads reconstruct
/// transparently), and a read-only batch from many threads through one
/// shared client stays consistent.
#[test]
fn degraded_and_concurrent_batches() {
    let h = serve(
        "degraded",
        2,
        &StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 4,
        },
    );
    let client = Arc::new(Client::connect(&h.addr).expect("connect"));
    let capacity = client.capacity() as usize;
    let base = pattern(capacity, 23);
    client.write_at(0, &base).expect("base write");
    client.fail_device(1, 2).expect("fail");

    // A mixed batch still lands correctly with shard 1 degraded.
    let mut batch = IoBatch::new();
    batch.write(0, pattern(64, 31)).read(64, 256);
    let result = client.submit(&batch).expect("degraded submit");
    let OpResult::Read(got) = &result.results[1] else {
        panic!("op 1 is a read")
    };
    assert_eq!(got, &base[64..320]);

    // Concurrent read-only batches through the one shared connection
    // (offsets clear of the batch write above).
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let client = Arc::clone(&client);
            let base = &base;
            scope.spawn(move || {
                let mut batch = IoBatch::new();
                let at = 2048 + t * 300;
                batch.read(at as u64, 128).read(at as u64 + 128, 64);
                let result = client.submit(&batch).expect("concurrent submit");
                let OpResult::Read(a) = &result.results[0] else {
                    panic!("read")
                };
                let OpResult::Read(b) = &result.results[1] else {
                    panic!("read")
                };
                assert_eq!(a, &base[at..at + 128]);
                assert_eq!(b, &base[at + 128..at + 192]);
            });
        }
    });

    // Whole-batch failure: any out-of-range op rejects the frame.
    let mut bad = IoBatch::new();
    bad.read(client.capacity(), 1);
    assert!(client.submit(&bad).is_err());
    h.stop();
}
