//! Protocol robustness: arbitrary malformed frames must come back as a
//! clean [`NetError`] — decode never panics, never allocates from a
//! hostile length, never trusts a failed checksum.
//!
//! Three layers of attack:
//! * purely random bytes fed to both frame readers;
//! * structurally plausible frames (valid length prefix, random body);
//! * mutations of *valid* frames — truncation at every boundary,
//!   oversized length prefixes, checksum damage, bad opcodes.

use proptest::prelude::*;
use stair_device::IoOp;
use stair_net::protocol::{
    read_request, read_response, write_request, write_response, Request, Response, WriteSummary,
    MAX_FRAME, PROTOCOL_VERSION,
};
use stair_net::NetError;
use stair_obs::{HistogramSnapshot, MetricsSnapshot, TraceEvent};

/// A representative valid request frame of every opcode family.
fn sample_requests() -> Vec<Vec<u8>> {
    let reqs = [
        Request::Hello {
            version: PROTOCOL_VERSION,
        },
        Request::Status,
        Request::Read {
            offset: 123,
            len: 456,
        },
        Request::Write {
            offset: 9,
            data: (0..64).collect(),
        },
        Request::Flush,
        Request::FailDevice {
            shard: 1,
            device: 2,
        },
        Request::Scrub { threads: 2 },
        Request::Batch {
            batch_id: 42,
            ops: vec![
                IoOp::Read {
                    offset: 0,
                    len: 128,
                },
                IoOp::Write {
                    offset: 128,
                    data: vec![5; 32],
                },
            ],
        },
        Request::Shutdown,
        Request::Metrics,
    ];
    reqs.iter()
        .map(|r| {
            let mut wire = Vec::new();
            write_request(&mut wire, 7, r).unwrap();
            wire
        })
        .collect()
}

fn sample_metrics() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    snap.add_counter("srv.req.read", 12);
    snap.add_gauge("srv.connections", 2);
    snap.add_histogram(
        "srv.lat_us.read",
        &HistogramSnapshot {
            buckets: vec![0, 1, 3],
            sum: 9,
            max: 3,
        },
    );
    snap.slow_ops.push(TraceEvent {
        t_us: 77,
        kind: "read".into(),
        shard: 1,
        bytes: 4096,
        duration_us: 20_000,
        ok: true,
    });
    snap
}

fn sample_responses() -> Vec<Vec<u8>> {
    let resps = [
        Response::Data(vec![1, 2, 3, 4, 5]),
        Response::Written(WriteSummary::default()),
        Response::Flushed,
        Response::Batched(vec![]),
        Response::Metrics(sample_metrics()),
        Response::Error("nope".into()),
    ];
    resps
        .iter()
        .map(|r| {
            let mut wire = Vec::new();
            write_response(&mut wire, 9, r).unwrap();
            wire
        })
        .collect()
}

/// Decoding must never panic; only Ok or a clean error may come back.
fn decode_both(bytes: &[u8]) {
    let _ = read_request(&mut &bytes[..]);
    let _ = read_response(&mut &bytes[..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Purely random bytes never panic either reader.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        decode_both(&bytes);
    }

    /// Structurally plausible frames — a correct length prefix over a
    /// random body — never panic, and a random body with a random
    /// opcode byte is rejected, not misparsed into a huge allocation.
    #[test]
    fn framed_random_bodies_never_panic(body in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        decode_both(&frame);
    }

    /// Every truncation of every valid frame is a clean error.
    #[test]
    fn truncated_valid_frames_are_clean_errors(seed in any::<u64>()) {
        for wire in sample_requests() {
            let cut = (seed as usize) % wire.len();
            prop_assert!(read_request(&mut &wire[..cut]).is_err());
        }
        for wire in sample_responses() {
            let cut = (seed as usize) % wire.len();
            prop_assert!(read_response(&mut &wire[..cut]).is_err());
        }
    }

    /// Flipping any single byte of a valid response is either still a
    /// parse (requests carry no checksum; some flips land in payload
    /// bytes of another valid frame) or a clean error — never a panic.
    /// Flips inside the response payload specifically must be caught
    /// by the checksum.
    #[test]
    fn bit_flips_never_panic_and_payload_flips_fail_checksum(seed in any::<u64>()) {
        for wire in sample_requests() {
            let mut bent = wire.clone();
            let at = (seed as usize) % bent.len();
            bent[at] ^= 1 << (seed % 8) as u8;
            decode_both(&bent);
        }
        // Response payload flips: bytes past the 17-byte envelope
        // (len + id + status + checksum) are checksummed.
        let mut wire = Vec::new();
        write_response(&mut wire, 1, &Response::Data(vec![0xAB; 64])).unwrap();
        let at = 17 + (seed as usize) % (wire.len() - 17);
        wire[at] ^= 0xFF;
        match read_response(&mut wire.as_slice()) {
            Err(NetError::Checksum { .. }) => {}
            other => prop_assert!(false, "payload flip must fail the checksum, got {other:?}"),
        }
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_without_allocating() {
    for len in [MAX_FRAME + 1, u32::MAX] {
        let frame = len.to_le_bytes().to_vec();
        assert!(matches!(
            read_request(&mut frame.as_slice()),
            Err(NetError::Protocol(_))
        ));
        assert!(matches!(
            read_response(&mut frame.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }
}

#[test]
fn unknown_opcodes_and_batch_kinds_are_rejected() {
    // Opcode 99 with an empty payload.
    let mut frame = Vec::new();
    frame.extend_from_slice(&9u32.to_le_bytes());
    frame.extend_from_slice(&1u64.to_le_bytes());
    frame.push(99);
    assert!(matches!(
        read_request(&mut frame.as_slice()),
        Err(NetError::Protocol(_))
    ));

    // A BATCH frame whose op kind byte is garbage.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u32.to_le_bytes()); // one op
    payload.push(7); // unknown kind
    payload.extend_from_slice(&0u64.to_le_bytes());
    payload.extend_from_slice(&4u32.to_le_bytes());
    let mut frame = Vec::new();
    frame.extend_from_slice(&(9 + payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&1u64.to_le_bytes());
    frame.push(10); // Opcode::Batch
    frame.extend_from_slice(&payload);
    assert!(matches!(
        read_request(&mut frame.as_slice()),
        Err(NetError::Protocol(_))
    ));
}
