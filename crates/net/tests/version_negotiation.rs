//! Protocol version negotiation across releases: a v2 client against a
//! v3 server and a v3 client against a v2 server must both settle on
//! v2 at HELLO and run every v1/v2 opcode exactly as before — the v3
//! trace extension is invisible until *both* ends speak it.

use stair_device::IoBatch;
use stair_net::{Client, Server, ServerConfig, ShardSet};
use stair_store::StoreOptions;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-vers-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> StoreOptions {
    StoreOptions {
        code: "stair:8,4,2,1-1-2".parse().unwrap(),
        symbol: 64,
        stripes: 4,
    }
}

fn start_server(tag: &str, config: ServerConfig) -> (String, impl FnOnce()) {
    let dir = tmpdir(tag);
    let set = ShardSet::create(&dir, 2, &opts()).expect("create shards");
    let server = Server::bind("127.0.0.1:0", set, config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, move || {
        handle.shutdown();
        join.join().expect("server thread").expect("server run");
        std::fs::remove_dir_all(&dir).ok();
    })
}

/// The full pre-v3 opcode surface against a connection that negotiated
/// version 2 — every op must behave exactly as it did before tracing.
fn exercise_v2_surface(client: &Client) {
    assert_eq!(client.info().version, 2, "HELLO must agree on v2");

    let block = client.block_size();
    let payload: Vec<u8> = (0..2 * block).map(|i| i as u8).collect();
    client.write_at(0, &payload).expect("WRITE");
    assert_eq!(client.read_at(0, payload.len()).expect("READ"), payload);

    let mut batch = IoBatch::new();
    batch
        .write((2 * block) as u64, vec![0x3C; block])
        .read(0, block);
    let results = client.submit(&batch).expect("BATCH");
    assert_eq!(results.results.len(), 2);

    client.flush().expect("FLUSH");
    let status = client.status().expect("STATUS");
    assert!(!status.is_empty());

    client.fail_device(0, 3).expect("FAIL");
    assert_eq!(
        client.read_at(0, payload.len()).expect("degraded READ"),
        payload
    );
    let scrub = client.scrub(1).expect("SCRUB");
    assert_eq!(scrub.mismatches, 0);
    let repair = client.repair(1).expect("REPAIR");
    assert_eq!(repair.unrecoverable_stripes, 0);

    let metrics = client.metrics().expect("METRICS");
    assert!(!metrics.counters.is_empty());
}

#[test]
fn v2_client_against_v3_server_settles_on_v2() {
    let (addr, stop) = start_server("old-client", ServerConfig::default());
    let client = Client::connect_with_version(&addr, 2).expect("connect v2");
    exercise_v2_surface(&client);

    // Tracing enabled on the client side changes nothing: the
    // connection speaks v2, so span context is never put on the wire.
    stair_obs::trace::set_enabled(true);
    let readback = client
        .read_at(0, client.block_size())
        .expect("traced READ over v2");
    assert_eq!(readback.len(), client.block_size());
    stair_obs::trace::set_enabled(false);
    stop();
}

#[test]
fn v3_client_against_v2_server_settles_on_v2() {
    let (addr, stop) = start_server(
        "old-server",
        ServerConfig {
            max_version: 2,
            ..ServerConfig::default()
        },
    );
    let client = Client::connect(&addr).expect("connect v3");
    exercise_v2_surface(&client);
    stop();
}

#[test]
fn v1_client_is_rejected_at_hello() {
    let (addr, stop) = start_server("too-old", ServerConfig::default());
    let Err(err) = Client::connect_with_version(&addr, 1) else {
        panic!("v1 must be refused")
    };
    let msg = err.to_string();
    assert!(
        msg.contains("version"),
        "rejection should name the version mismatch, got: {msg}"
    );
    stop();
}
