//! End-to-end test of the network service: a 4-shard server under
//! concurrent mixed read/write traffic from 8 clients, with a device
//! failure injected mid-traffic — every read (clean or degraded) must
//! return checksum-verified data, and repair + scrub must restore a
//! clean store. Mirrors the PR's acceptance scenario.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use stair_net::{Client, NetError, Server, ServerConfig, ShardSet, StripedClient};
use stair_store::StoreOptions;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-net-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> StoreOptions {
    StoreOptions {
        code: "stair:8,4,2,1-1-2".parse().unwrap(),
        symbol: 64,
        stripes: 8,
    }
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(seed * 97) % 251) as u8)
        .collect()
}

/// Spawns a server over fresh shards; returns (addr, run-thread, dir).
fn start_server(
    tag: &str,
    shards: usize,
    workers: usize,
) -> (
    String,
    std::thread::JoinHandle<Result<(), NetError>>,
    std::path::PathBuf,
) {
    let dir = tmpdir(tag);
    let set = ShardSet::create(&dir, shards, &opts()).expect("create shards");
    let server = Server::bind(
        "127.0.0.1:0",
        set,
        ServerConfig {
            workers,
            write_batch: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, dir)
}

#[test]
fn eight_clients_mixed_rw_with_mid_traffic_device_failure() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 6;
    const FAIL_AT: usize = 3;

    let (addr, server, dir) = start_server("mixed", 4, 4);
    let capacity = Client::connect(&addr).expect("probe").capacity() as usize;
    let region = capacity / CLIENTS;
    assert!(region > 0);

    // Round barrier: every client (plus the failure injector) syncs at
    // each round boundary, so the device failure lands mid-traffic with
    // reads and writes in flight right after it.
    let barrier = Barrier::new(CLIENTS + 1);
    let verified_degraded = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = addr.clone();
            let barrier = &barrier;
            let verified_degraded = &verified_degraded;
            scope.spawn(move || {
                let client = Client::connect(&addr).expect("client connect");
                let offset = (c * region) as u64;
                for round in 0..ROUNDS {
                    barrier.wait();
                    if round == FAIL_AT + 1 {
                        // The injector failed shard 1's device 2 during
                        // the previous round; every client must see it,
                        // proving the reads below really run degraded
                        // (each region stripes across all 4 shards).
                        let status = client.status().expect("status");
                        assert_eq!(
                            status[1].failed_devices,
                            vec![2],
                            "client {c}: device failure not visible"
                        );
                        verified_degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    let seed = (c * ROUNDS + round) as u64;
                    let payload = pattern(region, seed);
                    client.write_at(offset, &payload).expect("write");
                    let got = client.read_at(offset, region).expect("read");
                    assert_eq!(got, payload, "client {c} round {round} read mismatch");
                    // Interleave a read of a neighbour's region too (it
                    // may be mid-write, but the transport checksum must
                    // still verify and the length must match).
                    let other = ((c + 1) % CLIENTS * region) as u64;
                    let got = client.read_at(other, region).expect("neighbour read");
                    assert_eq!(got.len(), region);
                }
            });
        }
        // The failure injector: at the FAIL_AT boundary, kill a device
        // on shard 1 while clients are mid-round.
        let admin = Client::connect(&addr).expect("admin connect");
        for round in 0..ROUNDS {
            barrier.wait();
            if round == FAIL_AT {
                admin.fail_device(1, 2).expect("fail device");
            }
        }
    });
    assert_eq!(verified_degraded.load(Ordering::Relaxed), CLIENTS);

    // The failure is visible in status, reads still verify end to end.
    let admin = Client::connect(&addr).expect("admin");
    let status = admin.status().expect("status");
    assert_eq!(status.len(), 4);
    assert_eq!(status[1].failed_devices, vec![2]);

    // Online repair brings the store back to clean.
    let repair = admin.repair(2).expect("repair");
    assert!(repair.complete(), "{repair:?}");
    assert!(repair.devices_replaced >= 1);
    let scrub = admin.scrub(2).expect("scrub");
    assert!(scrub.clean(), "{scrub:?}");
    let status = admin.status().expect("status after repair");
    assert!(status.iter().all(|s| s.failed_devices.is_empty()));

    admin.shutdown_server().expect("shutdown");
    server.join().expect("server thread").expect("server run");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn striped_client_round_trips_across_lanes() {
    let (addr, server, dir) = start_server("striped", 3, 4);
    let striped = StripedClient::connect(&addr, 4).expect("striped connect");
    let capacity = striped.info().capacity as usize;
    let payload = pattern(capacity, 7);
    let summary = striped.write_at(0, &payload).expect("striped write");
    assert_eq!(summary.bytes as usize, capacity);
    assert_eq!(striped.read_at(0, capacity).expect("striped read"), payload);
    // Unaligned sub-span.
    assert_eq!(
        striped.read_at(1001, 2003).expect("sub-span"),
        payload[1001..3004].to_vec()
    );

    let admin = Client::connect(&addr).expect("admin");
    admin.shutdown_server().expect("shutdown");
    server.join().expect("server thread").expect("server run");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn damage_beyond_coverage_comes_back_as_remote_error() {
    let (addr, server, dir) = start_server("beyond", 2, 2);
    let client = Client::connect(&addr).expect("client");
    let capacity = client.capacity() as usize;
    client
        .write_at(0, &pattern(capacity, 3))
        .expect("seed write");
    // m = 2 covers two failed devices on a shard; a third is fatal.
    for dev in 0..3 {
        client.fail_device(0, dev).expect("fail");
    }
    match client.read_at(0, capacity) {
        Err(NetError::Remote(msg)) => assert!(msg.contains("unrecoverable"), "{msg}"),
        other => panic!("expected Remote(unrecoverable), got {other:?}"),
    }
    // Shard 1 is untouched: spans entirely on it still read.
    let range = client.info().range_blocks as usize * client.block_size();
    let got = client.read_at(range as u64, range).expect("healthy shard");
    assert_eq!(got, pattern(capacity, 3)[range..2 * range].to_vec());

    // Out-of-range and bad-shard requests come back as clean errors,
    // and the connection stays usable afterwards.
    assert!(matches!(
        client.read_at(client.capacity(), 1),
        Err(NetError::Remote(_))
    ));
    assert!(matches!(
        client.fail_device(99, 0),
        Err(NetError::Remote(_))
    ));
    assert!(client.status().is_ok());

    client.shutdown_server().expect("shutdown");
    server.join().expect("server thread").expect("server run");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn server_survives_abrupt_client_disconnects() {
    let (addr, server, dir) = start_server("hangup", 2, 2);
    for _ in 0..5 {
        let client = Client::connect(&addr).expect("connect");
        drop(client); // no goodbye
    }
    let client = Client::connect(&addr).expect("connect after hangups");
    assert_eq!(client.status().expect("status").len(), 2);
    client.shutdown_server().expect("shutdown");
    server.join().expect("server thread").expect("server run");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn writes_persist_across_server_restart() {
    let dir = tmpdir("restart");
    let set = ShardSet::create(&dir, 2, &opts()).expect("create");
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let run = std::thread::spawn(move || server.run());

    let client = Client::connect(&addr).expect("client");
    let capacity = client.capacity() as usize;
    let payload = pattern(capacity, 11);
    client.write_at(0, &payload).expect("write");
    client.flush().expect("flush");
    client.shutdown_server().expect("shutdown");
    run.join().expect("thread").expect("run");

    // Reopen the same root with a fresh server.
    let set = ShardSet::open(&dir).expect("reopen");
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("rebind");
    let addr = server.local_addr().to_string();
    let run = std::thread::spawn(move || server.run());
    let client = Client::connect(&addr).expect("client 2");
    assert_eq!(client.read_at(0, capacity).expect("read"), payload);
    client.shutdown_server().expect("shutdown 2");
    run.join().expect("thread 2").expect("run 2");
    std::fs::remove_dir_all(&dir).unwrap();
}
