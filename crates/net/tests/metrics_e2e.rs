//! End-to-end METRICS opcode test: counters are collected *server-side*
//! and pulled over the wire — a fresh client that issued none of the
//! traffic still sees the totals, which is what proves the snapshot
//! lives in the server's registry rather than in any client.

use stair_device::{BlockDevice, IoBatch};
use stair_net::{Client, NetError, Server, ServerConfig, ShardSet};
use stair_store::StoreOptions;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-net-metrics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(
    tag: &str,
) -> (
    String,
    std::thread::JoinHandle<Result<(), NetError>>,
    std::path::PathBuf,
) {
    let dir = tmpdir(tag);
    let opts = StoreOptions {
        code: "stair:8,4,2,1-1-2".parse().unwrap(),
        symbol: 64,
        stripes: 8,
    };
    let set = ShardSet::create(&dir, 2, &opts).expect("create shards");
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, dir)
}

#[test]
fn server_collects_per_opcode_metrics_served_over_the_wire() {
    let (addr, server, dir) = start_server("ops");
    let client = Client::connect(&addr).expect("connect");

    // Scripted traffic: writes, reads, a batch, and a scrub.
    let payload = vec![0xA5u8; 4096];
    client.write_at(0, &payload).expect("write");
    client.write_at(8192, &payload).expect("write");
    let got = client.read_at(0, 4096).expect("read");
    assert_eq!(got, payload);
    let mut batch = IoBatch::new();
    batch.write(16384, vec![7u8; 512]).read(0, 512);
    BlockDevice::submit(&client, &batch).expect("batch");
    client.scrub(2).expect("scrub");

    // Pull the snapshot through a *different* connection: the counters
    // must be server-side.
    let probe = Client::connect(&addr).expect("second connect");
    let snap = probe.metrics().expect("metrics");

    for name in [
        "srv.req.read",
        "srv.req.write",
        "srv.req.batch",
        "srv.req.scrub",
    ] {
        assert!(
            snap.counter(name).is_some_and(|v| v > 0),
            "{name} missing or zero in {:?}",
            snap.counters
        );
    }
    // Latency histograms populated for the hot opcodes.
    for name in ["srv.lat_us.read", "srv.lat_us.write"] {
        let h = snap
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert!(h.count() > 0, "{name} recorded no samples");
    }
    // Byte counters reflect the traffic (2 writes of 4096 + one 512 in
    // the batch's combined budget).
    assert!(snap.counter("srv.bytes.read").is_some_and(|v| v >= 4096));
    assert!(snap.counter("srv.bytes.write").is_some_and(|v| v >= 8192));
    // The store's folded counters and the process-global gf counters
    // travel in the same snapshot.
    assert!(snap.counter("store.stripe_locks").is_some_and(|v| v > 0));
    assert!(snap.counter("gf.mult_xors").is_some());
    // Connection accounting: both clients counted, both still open.
    assert!(snap
        .counter("srv.connections_total")
        .is_some_and(|v| v >= 2));
    assert!(snap.gauge("srv.connections").is_some_and(|v| v >= 1));

    // The BlockDevice surface returns the same snapshot shape.
    let via_trait = BlockDevice::metrics(&probe).expect("trait metrics");
    assert!(via_trait.counter("srv.req.metrics").is_some_and(|v| v >= 1));

    probe.shutdown_server().expect("shutdown");
    server.join().expect("join").expect("server run");
    std::fs::remove_dir_all(&dir).unwrap();
}
