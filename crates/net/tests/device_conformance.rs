//! Trait-conformance suite: the *same* generic scripts run unchanged
//! against every `BlockDevice` backend — a local `StripeStore`
//! (`file:`), an in-process `ShardSet` (`shards:`), and a loopback TCP
//! `Client` / `StripedClient` (`tcp:`) — and must observe identical
//! behavior: round-trip reads, degraded reads after injected faults,
//! scrub detection, online repair, and a consistent status shape.
//!
//! Backends are opened through the `open_device` / `open_admin`
//! registry from `DeviceSpec` strings, so the specs' whole life cycle
//! (parse → open → exercise) is covered.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use stair_device::{AdminDevice, BlockDevice, DeviceError, DeviceSpec};
use stair_net::{open_admin, open_device, Client, NetError, Server, ServerConfig, ShardSet};
use stair_store::{StoreOptions, StripeStore};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-conform-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> StoreOptions {
    StoreOptions {
        code: "stair:8,4,2,1-1-2".parse().unwrap(),
        symbol: 64,
        stripes: 8,
    }
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(seed * 97) % 251) as u8)
        .collect()
}

/// The generic clean-path conformance script: write, read back (whole
/// device, unaligned sub-spans, boundary cases), flush, status, scrub.
/// Passes unchanged against every backend.
fn exercise(dev: &dyn BlockDevice) {
    let capacity = dev.capacity() as usize;
    assert!(capacity > 0);
    assert!(dev.block_size() > 0);

    let payload = pattern(capacity, 5);
    let w = dev.write_at(0, &payload).expect("write");
    assert_eq!(w.bytes as usize, capacity);
    assert!(w.stripes_touched > 0);
    assert_eq!(dev.read_at(0, capacity).expect("read"), payload);

    // Unaligned sub-span and boundary reads.
    assert_eq!(
        dev.read_at(1001, 2003).expect("sub-span"),
        payload[1001..3004].to_vec()
    );
    assert_eq!(dev.read_at(capacity as u64, 0).expect("empty"), vec![]);
    assert!(
        dev.read_at(capacity as u64 - 1, 2).is_err(),
        "read past capacity must fail"
    );

    // A small overwrite lands (delta or re-encode is the backend's
    // choice; the data must come back either way).
    let patch = pattern(100, 9);
    dev.write_at(300, &patch).expect("patch");
    assert_eq!(dev.read_at(300, 100).expect("patched read"), patch);

    dev.flush().expect("flush");
    let status = dev.status().expect("status");
    assert!(!status.shards.is_empty());
    assert_eq!(
        status.capacity,
        status.shards.iter().map(|s| s.capacity).sum::<u64>()
    );
    assert!(status.healthy(), "fresh device must be healthy: {status:?}");
    // Journal recovery fields must read identically across backends: a
    // freshly created store has a clean history and replayed nothing.
    for (i, s) in status.shards.iter().enumerate() {
        assert!(
            s.clean_shutdown,
            "shard {i}: a fresh store's previous close is clean"
        );
        assert_eq!(s.replayed_records, 0, "shard {i}: nothing to replay");
    }

    let scrub = dev.scrub(2).expect("scrub");
    assert!(scrub.clean(), "{scrub:?}");
    assert!(scrub.sectors_verified > 0);
}

/// The generic fault script: fail a device + corrupt a sector burst,
/// degraded-read the exact original bytes, watch status go unhealthy,
/// scrub-detect, repair online, scrub clean again.
fn exercise_faults(dev: &dyn BlockDevice, admin: &dyn stair_device::FaultAdmin, shard: usize) {
    let capacity = dev.capacity() as usize;
    let payload = pattern(capacity, 11);
    dev.write_at(0, &payload).expect("seed write");

    admin.fail_device(shard, 3).expect("fail device");
    admin
        .corrupt_sectors(shard, 5, 2, 1, 2)
        .expect("corrupt burst");

    let status = dev.status().expect("status");
    assert!(!status.healthy());
    assert_eq!(status.shards[shard].failed_devices, vec![3]);

    // Degraded reads reconstruct the exact original bytes.
    assert_eq!(dev.read_at(0, capacity).expect("degraded read"), payload);

    // Scrub finds the burst (the failed device is skipped, reported
    // unavailable).
    let scrub = dev.scrub(2).expect("scrub degraded");
    assert!(!scrub.clean());
    assert_eq!(scrub.mismatches, 2, "{scrub:?}");

    // Online repair heals everything; scrub then reports clean.
    let repair = dev.repair(2).expect("repair");
    assert!(repair.complete(), "{repair:?}");
    assert!(repair.devices_replaced >= 1);
    let scrub = dev.scrub(2).expect("scrub clean");
    assert!(scrub.clean(), "{scrub:?}");
    assert!(dev.status().expect("status").healthy());
    assert_eq!(dev.read_at(0, capacity).expect("repaired read"), payload);
}

/// Spawns a server over fresh shards; returns (addr, run-thread, dir).
fn start_server(
    tag: &str,
    shards: usize,
) -> (
    String,
    std::thread::JoinHandle<Result<(), NetError>>,
    std::path::PathBuf,
) {
    let dir = tmpdir(tag);
    let set = ShardSet::create(&dir, shards, &opts()).expect("create shards");
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, dir)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<Result<(), NetError>>) {
    Client::connect(addr)
        .expect("admin")
        .shutdown_server()
        .expect("shutdown");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn file_backend_conforms() {
    let dir = tmpdir("file");
    StripeStore::create(&dir, &opts()).expect("create store");
    let spec: DeviceSpec = format!("file:{}", dir.display()).parse().unwrap();
    let dev = open_device(&spec).expect("open file device");
    exercise(dev.as_ref());
    drop(dev);
    let admin = open_admin(&spec).expect("open file admin");
    exercise_faults(admin.as_ref(), admin.as_ref(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shards_backend_conforms() {
    let dir = tmpdir("shards");
    ShardSet::create(&dir, 3, &opts()).expect("create shards");
    let spec: DeviceSpec = format!("shards:{}?n=3", dir.display()).parse().unwrap();
    let admin = open_admin(&spec).expect("open shards device");
    exercise(admin.as_ref());
    exercise_faults(admin.as_ref(), admin.as_ref(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tcp_backend_conforms() {
    let (addr, handle, dir) = start_server("tcp", 2);
    let spec: DeviceSpec = format!("tcp:{addr}").parse().unwrap();
    let admin = open_admin(&spec).expect("open tcp device");
    exercise(admin.as_ref());
    exercise_faults(admin.as_ref(), admin.as_ref(), 1);
    drop(admin);
    shutdown(&addr, handle);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn striped_tcp_backend_conforms() {
    let (addr, handle, dir) = start_server("striped", 2);
    let spec: DeviceSpec = format!("tcp:{addr}?lanes=3").parse().unwrap();
    let admin = open_admin(&spec).expect("open striped tcp device");
    exercise(admin.as_ref());
    exercise_faults(admin.as_ref(), admin.as_ref(), 0);
    drop(admin);
    shutdown(&addr, handle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The cache tier must be invisible to the conformance scripts: the
/// same clean-path and fault scripts run unchanged over `cache:file:`.
/// The fault script in particular proves coherence — degraded,
/// post-scrub, and post-repair reads must never serve a stale frame.
#[test]
fn cache_file_backend_conforms() {
    let dir = tmpdir("cache-file");
    StripeStore::create(&dir, &opts()).expect("create store");
    let spec: DeviceSpec = format!("cache:file:{}?mb=1", dir.display())
        .parse()
        .unwrap();
    let dev = open_device(&spec).expect("open cached file device");
    exercise(dev.as_ref());
    drop(dev);
    let admin = open_admin(&spec).expect("open cached file admin");
    exercise_faults(admin.as_ref(), admin.as_ref(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Same over the wire: `cache:tcp:` composes the tier over a remote
/// client, and the fault scripts still see exact bytes.
#[test]
fn cache_tcp_backend_conforms() {
    let (addr, handle, dir) = start_server("cache-tcp", 2);
    let spec: DeviceSpec = format!("cache:tcp:{addr}?mb=1").parse().unwrap();
    let admin = open_admin(&spec).expect("open cached tcp device");
    exercise(admin.as_ref());
    exercise_faults(admin.as_ref(), admin.as_ref(), 1);
    drop(admin);
    shutdown(&addr, handle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Repair-then-read staleness: warm the cache, damage the device,
/// repair it, and verify the read tier never serves the frames it
/// cached before the repair (the generation bump must drop them).
#[test]
fn cache_never_serves_stale_frames_after_repair() {
    let dir = tmpdir("cache-stale");
    StripeStore::create(&dir, &opts()).expect("create store");
    let spec: DeviceSpec = format!("cache:file:{}?mb=1", dir.display())
        .parse()
        .unwrap();
    let admin = open_admin(&spec).expect("open cached admin");
    let capacity = admin.capacity() as usize;

    let payload = pattern(capacity, 41);
    admin.write_at(0, &payload).expect("seed");
    // Warm every frame the budget allows, then fault the device.
    assert_eq!(admin.read_at(0, capacity).expect("warm"), payload);
    admin.fail_device(0, 3).expect("fail");
    admin.corrupt_sectors(0, 5, 2, 1, 2).expect("corrupt");
    // Degraded reads reconstruct — and must not be the warm frames
    // blindly replayed (the fault bumped the generation, so these are
    // fresh fills through the degraded path).
    let tier_before = admin.status().expect("status").cache.expect("cache tier");
    assert_eq!(admin.read_at(0, capacity).expect("degraded"), payload);
    admin.repair(2).expect("repair");
    let tier_after = admin.status().expect("status").cache.expect("cache tier");
    assert!(
        tier_after.generation > tier_before.generation,
        "repair must advance the cache generation ({tier_before:?} -> {tier_after:?})"
    );
    assert_eq!(admin.read_at(0, capacity).expect("repaired"), payload);
    let scrub = admin.scrub(2).expect("scrub");
    assert!(scrub.clean(), "{scrub:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Write-back over the wire: absorbed writes ack volatile, a flush
/// makes them durable, and bytes stay identical to the uncached view.
#[test]
fn cache_write_back_tcp_round_trips_after_flush() {
    let (addr, handle, dir) = start_server("cache-wb", 2);
    let spec: DeviceSpec = format!("cache:tcp:{addr}?mb=1&wb=on&interval_ms=0")
        .parse()
        .unwrap();
    let dev = open_device(&spec).expect("open wb cached device");
    let capacity = dev.capacity() as usize;
    let payload = pattern(capacity, 57);
    dev.write_at(0, &payload).expect("absorbed write");
    // Read-your-write before any drain.
    assert_eq!(dev.read_at(0, capacity).expect("staged read"), payload);
    dev.flush().expect("drain + flush");
    drop(dev);
    // A second, uncached client sees the identical bytes.
    let plain = open_device(&format!("tcp:{addr}").parse().unwrap()).expect("plain client");
    assert_eq!(plain.read_at(0, capacity).expect("uncached read"), payload);
    drop(plain);
    shutdown(&addr, handle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A span crossing the placement wrap boundary — the end of shard k-1's
/// first range into shard 0's second range — must read and write
/// identically through the trait, both in-process and over the wire.
#[test]
fn cross_shard_boundary_spans_round_trip() {
    let shards = 3;
    let dir = tmpdir("wrap");
    let set = ShardSet::create(&dir, shards, &opts()).expect("create shards");
    // One placement range = one stripe of data blocks.
    let range_bytes = set.placement().range_blocks() * set.block_size();
    drop(set);

    // Ranges 0..k map round-robin onto shards 0..k-1 then wrap: global
    // range k-1 lives on shard k-1, range k on shard 0. A span
    // straddling that edge touches the last and first shard in one
    // request.
    let wrap = (shards * range_bytes) as u64;
    let span_start = wrap - (range_bytes / 2) as u64;
    let span_len = range_bytes; // half in shard k-1, half in shard 0
    let check = |label: &str, dev: &dyn BlockDevice| {
        let payload = pattern(span_len, 23 + label.len() as u64);
        let w = dev.write_at(span_start, &payload).expect("wrap write");
        assert_eq!(w.bytes as usize, span_len, "{label}");
        assert_eq!(
            dev.read_at(span_start, span_len).expect("wrap read"),
            payload,
            "{label}: cross-shard span must round-trip"
        );
        // An unaligned read inside the wrapped span.
        assert_eq!(
            dev.read_at(span_start + 7, span_len - 13).expect("inner"),
            payload[7..span_len - 6].to_vec(),
            "{label}"
        );
        dev.flush().expect("flush");
    };

    // In-process first; flush and drop before the server opens the same
    // files (each handle keeps its own in-memory checksum tables, so
    // two live handles on one root are not supported).
    let dev =
        open_device(&format!("shards:{}", dir.display()).parse().unwrap()).expect("open shards");
    check("shards", dev.as_ref());
    drop(dev);

    let set = ShardSet::open(&dir).expect("reopen shards");
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let dev = open_device(&format!("tcp:{addr}").parse().unwrap()).expect("open tcp");
    check("tcp", dev.as_ref());
    drop(dev);

    shutdown(&addr, handle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite regression: a `Client` is `Send + Sync` behind its
/// connection mutex, so one shared `Arc<dyn BlockDevice>` may serve
/// many threads concurrently — every thread's writes and reads must be
/// correct (they serialize on the connection, not on the caller).
#[test]
fn one_client_shared_across_threads() {
    const THREADS: usize = 6;
    const ROUNDS: usize = 4;

    let (addr, handle, dir) = start_server("shared", 2);
    let client: Arc<dyn BlockDevice> = Arc::new(Client::connect(&addr).expect("connect"));
    let capacity = client.capacity() as usize;
    let region = capacity / THREADS;
    assert!(region > 0);
    let mismatches = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let client = Arc::clone(&client);
            let mismatches = &mismatches;
            scope.spawn(move || {
                let offset = (t * region) as u64;
                for round in 0..ROUNDS {
                    let payload = pattern(region, (t * ROUNDS + round) as u64);
                    client.write_at(offset, &payload).expect("write");
                    let got = client.read_at(offset, region).expect("read");
                    if got != payload {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(mismatches.load(Ordering::Relaxed), 0);

    shutdown(&addr, handle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `open_device` failure modes: bad targets surface as clean
/// `DeviceError`s, and a shard-count assertion in the spec is honored.
#[test]
fn open_device_rejects_unusable_targets() {
    let dir = tmpdir("reject");
    std::fs::create_dir_all(&dir).unwrap();

    // file: on a directory with no store.
    let spec: DeviceSpec = format!("file:{}", dir.join("nothing").display())
        .parse()
        .unwrap();
    assert!(open_device(&spec).is_err());

    // shards: on an empty root.
    let spec: DeviceSpec = format!("shards:{}", dir.display()).parse().unwrap();
    assert!(open_device(&spec).is_err());

    // shards: with a wrong ?n= assertion.
    let root = dir.join("set");
    ShardSet::create(&root, 2, &opts()).expect("create");
    let spec: DeviceSpec = format!("shards:{}?n=5", root.display()).parse().unwrap();
    match open_device(&spec) {
        Err(DeviceError::Spec(msg)) => assert!(msg.contains("n=5"), "{msg}"),
        other => panic!("expected Spec error, got {:?}", other.err()),
    }
    // The right assertion opens.
    let spec: DeviceSpec = format!("shards:{}?n=2", root.display()).parse().unwrap();
    assert!(open_device(&spec).is_ok());

    // tcp: against a closed port.
    assert!(open_device(&"tcp:127.0.0.1:9".parse().unwrap()).is_err());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `AdminDevice` handle is usable as a plain `BlockDevice` too —
/// the blanket impl keeps one open per backend enough for both halves.
#[test]
fn admin_device_is_a_block_device() {
    fn takes_dev(_: &dyn BlockDevice) {}
    fn takes_admin(dev: &dyn AdminDevice) {
        takes_dev(dev);
    }
    let dir = tmpdir("blanket");
    StripeStore::create(&dir, &opts()).expect("create");
    let admin = open_admin(&format!("file:{}", dir.display()).parse().unwrap()).expect("open");
    takes_admin(admin.as_ref());
    std::fs::remove_dir_all(&dir).unwrap();
}
