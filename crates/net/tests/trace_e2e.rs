//! End-to-end tracing over a real TCP loopback: a traced BATCH must
//! yield a span tree at least four layers deep (client submit →
//! server request/queue → store stripe path → codec pass), with every
//! child's interval inside its parent's and the direct children of
//! each span summing to no more than the span's own duration.
//!
//! Client and server run in one process here, so both sides record
//! into the same flight recorder with the same clock epoch — which is
//! what lets this test assert *interval* containment, not just parent
//! pointers (the CI smoke checks the cross-process case, where only
//! structure and durations are comparable).

use std::collections::HashMap;
use std::time::Duration;

use stair_device::IoBatch;
use stair_net::{Client, Server, ServerConfig, ShardSet};
use stair_obs::trace::names;
use stair_obs::{SpanRecord, TraceRecord};
use stair_store::StoreOptions;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-trace-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> StoreOptions {
    StoreOptions {
        code: "stair:8,4,2,1-1-2".parse().unwrap(),
        symbol: 64,
        stripes: 6,
    }
}

/// All spans recorded under `trace_id`, merged across the per-root
/// records (in-process loopback: the client root and the server's wire
/// root flush separately, sharing the trace id).
fn merged_spans(records: &[TraceRecord], trace_id: u64) -> Vec<SpanRecord> {
    records
        .iter()
        .filter(|t| t.trace_id == trace_id)
        .flat_map(|t| t.spans.iter().cloned())
        .collect()
}

fn find<'a>(spans: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no `{name}` span in {:?}", names_of(spans)))
}

fn names_of(spans: &[SpanRecord]) -> Vec<&'static str> {
    spans.iter().map(|s| s.name).collect()
}

/// Child interval ⊆ parent interval, with a little slack for repeated
/// Instant→µs rounding.
fn assert_contained(child: &SpanRecord, parent: &SpanRecord) {
    const SLACK_US: u64 = 10;
    assert!(
        child.start_us + SLACK_US >= parent.start_us,
        "`{}` starts at {}us, before its parent `{}` at {}us",
        child.name,
        child.start_us,
        parent.name,
        parent.start_us
    );
    assert!(
        child.start_us + child.duration_us <= parent.start_us + parent.duration_us + SLACK_US,
        "`{}` ends at {}us, after its parent `{}` at {}us",
        child.name,
        child.start_us + child.duration_us,
        parent.name,
        parent.start_us + parent.duration_us
    );
}

#[test]
fn traced_batch_yields_a_contained_four_layer_span_tree() {
    let dir = tmpdir("layers");
    let set = ShardSet::create(&dir, 2, &opts()).expect("create shards");
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let server = std::thread::spawn(move || server.run());

    stair_obs::trace::set_enabled(true);
    let client = Client::connect(&addr).expect("connect");
    assert!(client.info().version >= 3, "HELLO should agree on v3");

    // A batch of disjoint writes and a read: conflict-free, so the
    // server runs the stripe store's native batched path (one lock +
    // one codec decision per touched stripe).
    let block = client.block_size();
    let mut batch = IoBatch::new();
    batch
        .write(0, vec![0xA5; 3 * block])
        .write((3 * block) as u64, vec![0x5A; block])
        .read((4 * block) as u64, 2 * block);
    client.submit(&batch).expect("traced submit");
    stair_obs::trace::set_enabled(false);

    // The server's wire root flushes just after the response frame is
    // written, which races the client's return — poll briefly.
    let rec = stair_obs::trace::recorder();
    let mut records = Vec::new();
    for _ in 0..200 {
        records = rec.traces();
        let roots: Vec<_> = records
            .iter()
            .filter(|t| {
                t.spans
                    .iter()
                    .any(|s| s.name == names::CLIENT_SUBMIT || s.name == names::SRV_REQUEST)
            })
            .collect();
        if roots.len() >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let submit_rec = records
        .iter()
        .find(|t| t.spans.iter().any(|s| s.name == names::CLIENT_SUBMIT))
        .expect("client.submit trace recorded");
    let spans = merged_spans(&records, submit_rec.trace_id);

    // Layer 1: the client op is the trace's process root.
    let submit = find(&spans, names::CLIENT_SUBMIT);
    assert_eq!(submit.parent_id, 0, "client.submit is the root");

    // Layer 2: the server-side request root joins the client's trace
    // as a wire child of the submit span.
    let request = find(&spans, names::SRV_REQUEST);
    assert_eq!(request.parent_id, submit.span_id);
    assert_contained(request, submit);

    // Layer 3: queue wait and execute under the request.
    let queue = find(&spans, names::SRV_QUEUE);
    let exec = find(&spans, names::SRV_EXEC);
    assert_eq!(queue.parent_id, request.span_id);
    assert_eq!(exec.parent_id, request.span_id);
    assert_contained(queue, request);
    assert_contained(exec, request);

    // Layer 4: the shard split, then the store's batched path — one
    // up-front lock acquisition for every touched stripe (two-phase
    // submit: locks are batch-level, taken before any stripe stages),
    // then per-stripe spans with their codec pass — encode (full
    // cover) or delta (partial).
    let shards_submit = find(&spans, names::SHARDS_SUBMIT);
    assert_eq!(shards_submit.parent_id, exec.span_id);
    assert_contained(shards_submit, exec);
    let lock = find(&spans, names::STORE_LOCK);
    assert_contained(lock, shards_submit);
    let stripe = find(&spans, names::STORE_STRIPE);
    assert_contained(stripe, shards_submit);
    assert_eq!(
        lock.parent_id, stripe.parent_id,
        "the batch lock is a sibling of the stripe spans, not their parent"
    );
    let codec = spans
        .iter()
        .find(|s| s.name == names::STORE_ENCODE || s.name == names::STORE_DELTA)
        .expect("a codec pass span (encode or delta)");
    assert_eq!(codec.parent_id, stripe.span_id);
    assert_contained(codec, stripe);

    // Self-times: for every span in the tree, its direct children's
    // durations sum to no more than its own duration (plus rounding
    // slack) — time is attributed once, never double-counted.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id, s)).collect();
    let mut checked = 0;
    for span in &spans {
        let child_sum: u64 = spans
            .iter()
            .filter(|s| s.parent_id == span.span_id)
            .map(|s| s.duration_us)
            .sum();
        if child_sum > 0 {
            checked += 1;
        }
        assert!(
            child_sum <= span.duration_us + 20,
            "children of `{}` sum to {child_sum}us, more than its own {}us",
            span.name,
            span.duration_us
        );
    }
    assert!(checked >= 3, "expected at least three spans with children");

    // Every non-root parent pointer resolves within the merged trace.
    for span in &spans {
        if span.parent_id != 0 {
            assert!(
                by_id.contains_key(&span.parent_id),
                "`{}` has a dangling parent {:x}",
                span.name,
                span.parent_id
            );
        }
    }

    handle.shutdown();
    server.join().expect("server thread").expect("server run");
    std::fs::remove_dir_all(&dir).ok();
}
