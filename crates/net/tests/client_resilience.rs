//! Client resilience regression tests: a connection killed between ops
//! must not surface as a hard error on idempotent requests — the
//! client reconnects and retries once. Plain writes never auto-retry;
//! *batched* writes on a protocol ≥ 4 session do (the frame carries a
//! batch id and the server journals the post-images, so redelivery is
//! safe). The dropped connection always heals on the next call.

use std::path::PathBuf;

use stair_net::{Client, NetError, Server, ServerConfig, ShardSet};
use stair_store::StoreOptions;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-resil-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(43).wrapping_add(seed))
        .collect()
}

#[test]
fn idempotent_ops_survive_a_killed_connection_writes_do_not_retry() {
    let dir = tmpdir("kill");
    let set = ShardSet::create(
        &dir,
        2,
        &StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 4,
        },
    )
    .expect("create shards");
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());

    let client = Client::connect(&addr).expect("connect");
    let capacity = client.capacity() as usize;
    let base = pattern(capacity, 3);
    client.write_at(0, &base).expect("base write");

    // Kill the server side of the socket between ops: the next read
    // hits a transport error internally, reconnects, retries once, and
    // succeeds — the caller never sees the failure.
    handle.disconnect_all();
    assert_eq!(
        client.read_at(0, 500).expect("read after kill"),
        base[..500]
    );

    // Status and a read-only batch ride the same retry path.
    handle.disconnect_all();
    assert_eq!(client.status().expect("status after kill").len(), 2);
    handle.disconnect_all();
    let mut batch = stair_device::IoBatch::new();
    batch.read(100, 64).read(1000, 64);
    let result = client.submit(&batch).expect("batch after kill");
    assert_eq!(result.results.len(), 2);

    // A write after a kill is NOT auto-retried: the caller sees the
    // transport error and decides. (The write may or may not have
    // reached the server; deciding to reissue is the caller's call.)
    handle.disconnect_all();
    match client.write_at(0, &pattern(64, 9)) {
        Err(NetError::Io(_)) => {}
        other => panic!("expected a transport error for the un-retried write, got {other:?}"),
    }
    // …but the connection healed: the very next ops work, including
    // the reissued write.
    client.write_at(0, &pattern(64, 9)).expect("reissued write");
    let mut expected = base.clone();
    expected[..64].copy_from_slice(&pattern(64, 9));
    assert_eq!(client.read_at(0, 500).expect("verify"), expected[..500]);

    client.shutdown_server().expect("shutdown");
    running.join().expect("server thread").expect("run");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn write_batches_retry_over_a_killed_connection_on_v4_sessions() {
    let dir = tmpdir("batchretry");
    let set = ShardSet::create(
        &dir,
        2,
        &StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 4,
        },
    )
    .expect("create shards");
    let server = Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());

    let client = Client::connect(&addr).expect("connect");
    assert!(client.info().version >= 4, "fresh peers negotiate v4");
    let capacity = client.capacity() as usize;
    let base = pattern(capacity, 7);
    client.write_at(0, &base).expect("base write");

    // Kill the connection, then submit a batch *containing writes*:
    // on a v4 session the client reconnects and reissues the frames
    // (same batch ids), so the caller never sees the dead socket.
    handle.disconnect_all();
    let w1 = pattern(64, 21);
    let w2 = pattern(64, 22);
    let mut batch = stair_device::IoBatch::new();
    batch
        .write(0, w1.clone())
        .write(640, w2.clone())
        .read(0, 64);
    let result = client.submit(&batch).expect("write batch after kill");
    assert_eq!(result.results.len(), 3);
    let mut expected = base.clone();
    expected[..64].copy_from_slice(&w1);
    expected[640..704].copy_from_slice(&w2);
    assert_eq!(
        client.read_at(0, 704).expect("verify"),
        expected[..704],
        "acknowledged batch writes must be durable after the retry"
    );

    // An impersonated v3 client keeps the old contract: batched writes
    // surface the transport error instead of retrying.
    let old = Client::connect_with_version(&addr, 3).expect("v3 connect");
    assert_eq!(old.info().version, 3);
    handle.disconnect_all();
    let mut batch = stair_device::IoBatch::new();
    batch.write(0, pattern(64, 30));
    match old.submit(&batch) {
        Err(NetError::Io(_)) => {}
        other => panic!("expected a transport error for the v3 write batch, got {other:?}"),
    }

    // Heal the main client's connection (the second kill severed it
    // too) before asking for an orderly shutdown.
    client.read_at(0, 64).expect("heal");
    client.shutdown_server().expect("shutdown");
    running.join().expect("server thread").expect("run");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
