//! The stair-net server: a multi-threaded TCP front end over a
//! [`ShardSet`].
//!
//! # Architecture
//!
//! * one **reader thread per connection** parses frames and enqueues
//!   jobs (HELLO and SHUTDOWN are answered inline);
//! * a fixed **worker pool** pops jobs and executes them against the
//!   shard set — stripe locks inside each shard keep concurrent workers
//!   safe, and different shards share nothing;
//! * responses are written back under a per-connection mutex, tagged
//!   with the request ID, so a pipelining client may see completions out
//!   of order;
//! * **write batching**: a worker that pops a WRITE drains the other
//!   WRITEs queued behind it (up to a batch cap) and sorts them by
//!   offset; adjacent spans are merged into a single store pass, so
//!   small writes landing in the same stripe coalesce into one
//!   parity-delta update instead of one per request. Disjoint writes
//!   commute, so offset order is safe; if any two writes in a batch
//!   overlap, the batch falls back to arrival order with no merging.
//!
//! Shutdown (a SHUTDOWN frame, or [`ServerHandle::shutdown`]) stops the
//! accept loop, drains the queue, joins every thread, and flushes the
//! shards before [`Server::run`] returns.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use stair_device::{BlockDevice, IoBatch, IoOp, OpResult};
use stair_obs::trace::{self, names};
use stair_obs::{MetricsRegistry, SpanCtx};

use crate::protocol::{
    read_request_traced_v, write_response_v, BatchReply, RepairSummary, Request, Response,
    ScrubSummary, ServerInfo, WireTrace, WriteSummary, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::shards::{wire_status, ShardSet};
use crate::NetError;

/// Tunables for [`Server::bind`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Most WRITE requests one worker batches into a single pass.
    pub write_batch: usize,
    /// Highest protocol version this server speaks. HELLO negotiates
    /// `min(client, max_version)`; clients older than
    /// [`MIN_PROTOCOL_VERSION`] are rejected. Capping below
    /// [`PROTOCOL_VERSION`] lets tests impersonate an older server.
    pub max_version: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            write_batch: 32,
            max_version: PROTOCOL_VERSION,
        }
    }
}

/// One queued request plus where its response goes.
struct Job {
    writer: Arc<ConnWriter>,
    id: u64,
    req: Request,
    /// When the reader parsed the frame — the start of the server-side
    /// span and the base of the queue-wait measurement.
    received: Instant,
    /// The trace context carried on the frame, if the client traced it.
    ctx: Option<SpanCtx>,
}

/// Most recently-seen BATCH ids remembered per connection for
/// duplicate-delivery accounting.
const RECENT_BATCH_IDS: usize = 64;

/// The write half of a connection; workers serialize frames under the
/// lock. A send to a dead peer is ignored — the reader thread notices
/// the hangup and retires the connection.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    /// Protocol version negotiated at HELLO; responses are encoded at
    /// this version so a v2/v3 peer never sees v4 fields. Before HELLO
    /// it holds [`MIN_PROTOCOL_VERSION`], the lowest common form.
    version: AtomicU32,
    /// Ring of recent nonzero BATCH ids (v4 clients stamp retried
    /// batches with the same id; a repeat here means the client
    /// redelivered after a redial).
    recent_batches: Mutex<VecDeque<u64>>,
}

impl ConnWriter {
    fn send(&self, id: u64, resp: &Response) {
        // Poisoning here would mean a worker panicked mid-frame; the
        // stream is unusable either way, so take the guard regardless.
        let mut stream = self
            .stream
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = write_response_v(&mut *stream, id, resp, self.version.load(Ordering::Acquire));
    }

    /// Records `batch_id` and reports whether it was already seen on
    /// this connection (a duplicate delivery of a retried batch).
    fn batch_seen_before(&self, batch_id: u64) -> bool {
        let mut recent = self
            .recent_batches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if recent.contains(&batch_id) {
            return true;
        }
        if recent.len() >= RECENT_BATCH_IDS {
            recent.pop_front();
        }
        recent.push_back(batch_id);
        false
    }
}

struct State {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Cloned handles of *live* connections, shut down to unblock their
    /// readers at server shutdown. Each reader removes its own entry on
    /// exit, so dead connections do not leak file descriptors.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    /// Per-opcode request counters, latency histograms, and the trace
    /// journal; served back over the METRICS opcode.
    registry: MetricsRegistry,
}

impl State {
    fn push(&self, job: Job) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(job);
        self.available.notify_one();
    }
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the server to stop: no new connections, queued work drains,
    /// then [`Server::run`] returns.
    pub fn shutdown(&self) {
        begin_shutdown(&self.state, self.addr);
    }

    /// Forcibly drops every live client connection while the server
    /// keeps serving — an operational lever (shed all sessions, e.g.
    /// before a config change) and the hook the client-resilience
    /// regression test uses to kill sockets between ops. Clients
    /// reconnect on their next call.
    pub fn disconnect_all(&self) {
        for conn in self
            .state
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

fn begin_shutdown(state: &State, addr: SocketAddr) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    state.available.notify_all();
    // Unblock readers parked in read_exact.
    for conn in state
        .conns
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .values()
    {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(addr);
}

/// The TCP storage service.
pub struct Server {
    listener: TcpListener,
    shards: Arc<ShardSet>,
    state: Arc<State>,
    config: ServerConfig,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) in front
    /// of `shards`.
    ///
    /// # Errors
    ///
    /// A busy port or unroutable address comes back as [`NetError::Io`]
    /// with the address in the message — no panic.
    pub fn bind(addr: &str, shards: ShardSet, config: ServerConfig) -> Result<Self, NetError> {
        if config.workers == 0 {
            return Err(NetError::Shards("need at least one worker".into()));
        }
        let listener = TcpListener::bind(addr).map_err(|e| {
            NetError::Io(io::Error::new(e.kind(), format!("cannot bind {addr}: {e}")))
        })?;
        let local = listener.local_addr()?;
        Ok(Server {
            listener,
            shards: Arc::new(shards),
            state: Arc::new(State {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
                conns: Mutex::new(std::collections::HashMap::new()),
                registry: MetricsRegistry::new(),
            }),
            config,
            addr: local,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            addr: self.addr,
        }
    }

    /// The HELLO payload this server announces. `version` is the
    /// highest protocol this server speaks; HELLO replies carry
    /// `min(client, server)` instead.
    pub fn info(&self) -> ServerInfo {
        ServerInfo {
            version: self.config.max_version.min(PROTOCOL_VERSION),
            shards: self.shards.shard_count() as u32,
            capacity: self.shards.capacity(),
            block_size: self.shards.block_size() as u32,
            range_blocks: self.shards.placement().range_blocks() as u32,
            codec: self.shards.codec(),
        }
    }

    /// Serves until shutdown, then drains, joins every thread, and
    /// flushes the shards.
    ///
    /// # Errors
    ///
    /// Only the final flush can fail; per-connection errors retire that
    /// connection silently.
    pub fn run(self) -> Result<(), NetError> {
        let mut workers = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers {
            let state = Arc::clone(&self.state);
            let shards = Arc::clone(&self.shards);
            let batch = self.config.write_batch.max(1);
            let info = self.info();
            workers.push(std::thread::spawn(move || {
                worker_loop(&state, &shards, &info, batch)
            }));
        }

        let mut readers = Vec::new();
        let mut next_conn: u64 = 0;
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Reap finished reader threads so neither the handle list nor
            // the live-connection map grows with connection churn.
            readers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
            let conn_id = next_conn;
            next_conn += 1;
            if let Ok(clone) = stream.try_clone() {
                self.state
                    .conns
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(conn_id, clone);
            }
            self.state.registry.counter("srv.connections_total").inc();
            self.state.registry.gauge("srv.connections").add(1);
            let state = Arc::clone(&self.state);
            let info = self.info();
            let addr = self.addr;
            readers.push(std::thread::spawn(move || {
                reader_loop(stream, &state, &info, addr);
                state.registry.gauge("srv.connections").add(-1);
                state
                    .conns
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .remove(&conn_id);
            }));
        }

        // Shutdown: wake everything and wait for it to drain.
        begin_shutdown(&self.state, self.addr);
        for r in readers {
            let _ = r.join();
        }
        self.state.available.notify_all();
        for w in workers {
            let _ = w.join();
        }
        self.shards.flush()
    }
}

/// Parses frames off one connection until EOF, error, or shutdown.
fn reader_loop(stream: TcpStream, state: &State, info: &ServerInfo, addr: SocketAddr) {
    let writer = Arc::new(ConnWriter {
        stream: match stream.try_clone() {
            Ok(s) => Mutex::new(s),
            Err(_) => return,
        },
        version: AtomicU32::new(MIN_PROTOCOL_VERSION),
        recent_batches: Mutex::new(VecDeque::new()),
    });
    let mut stream = stream;
    loop {
        let session = writer.version.load(Ordering::Acquire);
        let (id, req, ctx) = match read_request_traced_v(&mut stream, session) {
            Ok(x) => x,
            Err(NetError::Protocol(msg)) => {
                // A malformed frame desynchronizes the stream; report and
                // hang up rather than guessing where the next frame starts.
                writer.send(u64::MAX, &Response::Error(format!("protocol error: {msg}")));
                return;
            }
            Err(_) => return, // EOF or socket error
        };
        let received = Instant::now();
        match req {
            Request::Hello { version } => {
                state.registry.counter("srv.req.hello").inc();
                if version < MIN_PROTOCOL_VERSION {
                    state.registry.counter("srv.errors.hello").inc();
                    writer.send(
                        id,
                        &Response::Error(format!(
                            "version mismatch: server speaks v{}..=v{}, client v{version}",
                            MIN_PROTOCOL_VERSION, info.version
                        )),
                    );
                    return;
                }
                // Negotiate down to whichever side is older; a v2 client
                // gets a v2 reply and never sees trace-flagged frames,
                // and every later frame on this connection is encoded
                // and decoded at the agreed version.
                let mut agreed = info.clone();
                agreed.version = version.min(info.version);
                writer.version.store(agreed.version, Ordering::Release);
                writer.send(id, &Response::Hello(agreed));
            }
            Request::Shutdown => {
                state.registry.counter("srv.req.shutdown").inc();
                writer.send(id, &Response::ShuttingDown);
                begin_shutdown(state, addr);
                return;
            }
            req => {
                // Duplicate-batch accounting (protocol v4): a nonzero
                // id seen twice on one connection means the client
                // redelivered a batch after a redial; the journal makes
                // re-applying it safe, the counter makes it observable.
                if let Request::Batch { batch_id, .. } = &req {
                    if *batch_id != 0 && writer.batch_seen_before(*batch_id) {
                        state.registry.counter("srv.batch.redelivered").inc();
                    }
                }
                state.push(Job {
                    writer: Arc::clone(&writer),
                    id,
                    req,
                    received,
                    ctx,
                });
            }
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn worker_loop(state: &State, shards: &ShardSet, info: &ServerInfo, batch: usize) {
    loop {
        let job = {
            let mut queue = state
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = state
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if let Request::Write { offset, data } = job.req {
            let mut writes = vec![QueuedWrite {
                writer: job.writer,
                id: job.id,
                offset,
                data,
                received: job.received,
                ctx: job.ctx,
            }];
            {
                let mut queue = state
                    .queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let mut i = 0;
                while i < queue.len() && writes.len() < batch {
                    if matches!(queue[i].req, Request::Write { .. }) {
                        let Some(Job {
                            writer,
                            id,
                            req: Request::Write { offset, data },
                            received,
                            ctx,
                        }) = queue.remove(i)
                        else {
                            // Guarded by the matches! above; bail rather
                            // than panic if the queue mutates underfoot.
                            break;
                        };
                        writes.push(QueuedWrite {
                            writer,
                            id,
                            offset,
                            data,
                            received,
                            ctx,
                        });
                    } else {
                        i += 1;
                    }
                }
            }
            execute_write_batch(shards, &state.registry, writes);
        } else {
            let kind = job.req.opcode().name();
            let bytes = request_bytes(&job.req);
            let start = Instant::now();
            // A traced frame roots a server-side span tree: the root
            // starts when the reader parsed the frame and joins the
            // client's trace; the queue wait is recorded as the interval
            // between parse and this worker popping the job.
            let mut root = job.ctx.map(|ctx| {
                let g = trace::wire_root_at(
                    names::SRV_REQUEST,
                    ctx.trace_id,
                    ctx.span_id,
                    job.received,
                );
                trace::span_at(
                    names::SRV_QUEUE,
                    job.received,
                    start.saturating_duration_since(job.received),
                );
                g
            });
            let resp = {
                let _exec = trace::span(names::SRV_EXEC);
                execute(shards, info, &state.registry, job.req)
            };
            let elapsed = start.elapsed();
            record_request(&state.registry, kind, bytes, elapsed, &resp);
            if let Some(g) = root.as_mut() {
                g.set_bytes(bytes);
                if matches!(resp, Response::Error(_)) {
                    g.fail();
                }
            }
            job.writer.send(job.id, &resp);
            // The root closes only after the response frame is written,
            // so the server span covers the write-back too.
            drop(root);
        }
    }
}

/// One WRITE pulled off the queue for coalescing, with everything
/// needed to answer and (if traced) span it.
struct QueuedWrite {
    writer: Arc<ConnWriter>,
    id: u64,
    offset: u64,
    data: Vec<u8>,
    received: Instant,
    ctx: Option<SpanCtx>,
}

/// The byte count a request moves (write payloads plus requested read
/// lengths); what the journal and throughput counters attribute to it.
fn request_bytes(req: &Request) -> u64 {
    match req {
        Request::Read { len, .. } => u64::from(*len),
        Request::Write { data, .. } => data.len() as u64,
        Request::Batch { ops, .. } => ops
            .iter()
            .map(|op| match op {
                IoOp::Read { len, .. } => *len as u64,
                IoOp::Write { data, .. } => data.len() as u64,
            })
            .sum(),
        _ => 0,
    }
}

/// Charges one completed request to the per-opcode counters, latency
/// histogram, byte counter, and trace journal.
fn record_request(
    registry: &MetricsRegistry,
    kind: &str,
    bytes: u64,
    elapsed: std::time::Duration,
    resp: &Response,
) {
    let ok = !matches!(resp, Response::Error(_));
    registry.counter(&format!("srv.req.{kind}")).inc();
    if !ok {
        registry.counter(&format!("srv.errors.{kind}")).inc();
    }
    registry
        .histogram(&format!("srv.lat_us.{kind}"))
        .record(elapsed.as_micros() as u64);
    if bytes > 0 {
        registry.counter(&format!("srv.bytes.{kind}")).add(bytes);
    }
    registry.record_op(kind, 0, bytes, elapsed, ok);
}

/// Opens the server-side root and queue-wait spans for one traced
/// WRITE: the root joins the client's trace starting at frame parse.
fn traced_write_root(ctx: SpanCtx, received: Instant, bytes: u64) -> trace::SpanGuard {
    let mut g = trace::wire_root_at(names::SRV_REQUEST, ctx.trace_id, ctx.span_id, received);
    trace::span_at(names::SRV_QUEUE, received, received.elapsed());
    g.set_bytes(bytes);
    g
}

/// Executes a batch of WRITEs, merging adjacent spans into single store
/// passes. Any overlap within the batch forces arrival order, unmerged.
fn execute_write_batch(shards: &ShardSet, registry: &MetricsRegistry, writes: Vec<QueuedWrite>) {
    let mut order: Vec<usize> = (0..writes.len()).collect();
    order.sort_by_key(|&i| writes[i].offset);
    let overlapping = order.windows(2).any(|w| {
        let a = &writes[w[0]];
        a.offset + a.data.len() as u64 > writes[w[1]].offset
    });
    if overlapping {
        for w in writes {
            let start = Instant::now();
            let mut root = w
                .ctx
                .map(|ctx| traced_write_root(ctx, w.received, w.data.len() as u64));
            let resp = write_one(shards, w.offset, &w.data, 1);
            record_request(
                registry,
                "write",
                w.data.len() as u64,
                start.elapsed(),
                &resp,
            );
            if let (Some(g), Response::Error(_)) = (root.as_mut(), &resp) {
                g.fail();
            }
            w.writer.send(w.id, &resp);
            drop(root);
        }
        return;
    }
    // Merge adjacent runs (sorted, disjoint, so order is immaterial).
    let mut at = 0;
    while at < order.len() {
        let mut members = vec![order[at]];
        let run_offset = writes[order[at]].offset;
        let mut run: Vec<u8> = writes[order[at]].data.clone();
        at += 1;
        while at < order.len() && writes[order[at]].offset == run_offset + run.len() as u64 {
            run.extend_from_slice(&writes[order[at]].data);
            members.push(order[at]);
            at += 1;
        }
        let coalesced = members.len() as u32;
        // Every traced member of the run gets its own server root; they
        // all span the shared store pass, which is the honest picture of
        // coalescing (one pass serves N requests).
        let mut roots: Vec<trace::SpanGuard> = members
            .iter()
            .filter_map(|&m| {
                let w = &writes[m];
                w.ctx
                    .map(|ctx| traced_write_root(ctx, w.received, w.data.len() as u64))
            })
            .collect();
        let start = Instant::now();
        let resp = write_one(shards, run_offset, &run, coalesced);
        let elapsed = start.elapsed();
        if matches!(resp, Response::Error(_)) {
            for g in &mut roots {
                g.fail();
            }
        }
        // Each coalesced member counts as its own request (with its own
        // byte count) but shares the run's store-pass latency.
        for &m in &members {
            record_request(
                registry,
                "write",
                writes[m].data.len() as u64,
                elapsed,
                &resp,
            );
        }
        // The store-pass counters are attributed to the run's first
        // member only; the rest report zeros (plus their own byte count),
        // so a client summing its chunk summaries gets exact totals
        // instead of the pass counted once per coalesced request.
        for (k, &m) in members.iter().enumerate() {
            let w = &writes[m];
            let resp = match &resp {
                Response::Written(ws) => Response::Written(WriteSummary {
                    bytes: w.data.len() as u64,
                    ..if k == 0 {
                        *ws
                    } else {
                        WriteSummary {
                            coalesced,
                            ..WriteSummary::default()
                        }
                    }
                }),
                other => other.clone(),
            };
            w.writer.send(w.id, &resp);
        }
        // Roots close after the member responses are written.
        drop(roots);
    }
}

fn write_one(shards: &ShardSet, offset: u64, data: &[u8], coalesced: u32) -> Response {
    match shards.write_at(offset, data) {
        Ok(r) => Response::Written(WriteSummary {
            bytes: data.len() as u64,
            blocks_written: r.blocks_written as u64,
            stripes_touched: r.stripes_touched as u64,
            full_stripe_encodes: r.full_stripe_encodes as u64,
            delta_updates: r.delta_updates as u64,
            coalesced,
        }),
        Err(e) => Response::Error(e.to_string()),
    }
}

/// Executes one non-write request. Takes the request by value so batch
/// payloads move straight into the shard set's submit instead of being
/// re-copied per request.
fn execute(
    shards: &ShardSet,
    info: &ServerInfo,
    registry: &MetricsRegistry,
    req: Request,
) -> Response {
    let result = (|| -> Result<Response, NetError> {
        Ok(match req {
            Request::Hello { .. } => Response::Hello(info.clone()),
            Request::Status => Response::Status(shards.status().iter().map(wire_status).collect()),
            // The server's own request metrics plus the aggregated
            // store counters, one frame.
            Request::Metrics => {
                let mut snap = registry.snapshot();
                snap.merge(&shards.metrics());
                Response::Metrics(snap)
            }
            // The flight recorder's completed ring plus any slow/errored
            // traces the main ring has already evicted.
            Request::Trace => {
                let rec = trace::recorder();
                let mut traces: Vec<WireTrace> = rec.traces().iter().map(WireTrace::from).collect();
                let seen: std::collections::HashSet<(u64, u64)> =
                    traces.iter().map(|t| (t.trace_id, t.root_span)).collect();
                traces.extend(
                    rec.slow_traces()
                        .iter()
                        .filter(|t| !seen.contains(&(t.trace_id, t.root_span)))
                        .map(WireTrace::from),
                );
                Response::Traces(traces)
            }
            Request::Read { offset, len } => Response::Data(shards.read_at(offset, len as usize)?),
            Request::Write { .. } | Request::Shutdown => {
                // check: panic-ok the run loop intercepts writes and shutdowns before execute()
                unreachable!("handled before execute()")
            }
            // A BATCH executes as one unit through the shard set's
            // native submit: split by placement, shards in parallel,
            // one stripe lock + one codec decision per touched stripe.
            Request::Batch { ops, .. } => match shards.submit(&IoBatch::from(ops)) {
                Ok(result) => Response::Batched(
                    result
                        .results
                        .into_iter()
                        .map(|r| match r {
                            OpResult::Read(data) => BatchReply::Data(data),
                            OpResult::Write(w) => BatchReply::Written(WriteSummary {
                                bytes: w.bytes,
                                blocks_written: w.blocks_written,
                                stripes_touched: w.stripes_touched,
                                full_stripe_encodes: w.full_stripe_encodes,
                                delta_updates: w.delta_updates,
                                coalesced: 1,
                            }),
                        })
                        .collect(),
                ),
                Err(e) => Response::Error(e.to_string()),
            },
            Request::Flush => {
                shards.flush()?;
                Response::Flushed
            }
            Request::FailDevice { shard, device } => {
                shards.shard(shard as usize)?.fail_device(device as usize)?;
                Response::Failed
            }
            Request::CorruptSectors {
                shard,
                device,
                stripe,
                row,
                len,
            } => {
                shards.shard(shard as usize)?.corrupt_sectors(
                    device as usize,
                    stripe as usize,
                    row as usize,
                    len as usize,
                )?;
                Response::Failed
            }
            Request::Scrub { threads } => {
                let mut total = ScrubSummary::default();
                for r in shards.scrub((threads as usize).max(1))? {
                    total.stripes_scanned += r.stripes_scanned as u64;
                    total.sectors_verified += r.sectors_verified as u64;
                    total.mismatches += r.mismatches.len() as u64;
                    total.unavailable_devices += r.unavailable_devices.len() as u64;
                    total.records_cleared += r.records_cleared as u64;
                }
                Response::Scrubbed(total)
            }
            Request::Repair { threads } => {
                let mut total = RepairSummary::default();
                for r in shards.repair((threads as usize).max(1))? {
                    total.devices_replaced += r.devices_replaced.len() as u64;
                    total.stripes_repaired += r.stripes_repaired as u64;
                    total.sectors_rewritten += r.sectors_rewritten as u64;
                    total.unrecoverable_stripes += r.unrecoverable_stripes.len() as u64;
                }
                Response::Repaired(total)
            }
        })
    })();
    result.unwrap_or_else(|e| Response::Error(e.to_string()))
}
