//! Deterministic block-range placement: how the global logical block
//! space maps onto shards.
//!
//! The unit of placement is a **range** of `range_blocks` consecutive
//! global blocks (one stripe's worth of data blocks, so a full-range
//! write is a full-stripe write on its shard). Ranges are dealt
//! round-robin:
//!
//! ```text
//! global block g
//!   range        = g / range_blocks
//!   shard        = range % shards
//!   local block  = (range / shards) · range_blocks + g % range_blocks
//! ```
//!
//! Round-robin striping means a sequential scan of the global space
//! touches every shard in turn, so concurrent sequential clients spread
//! across all shards instead of queueing on one.

use stair_device::IoOp;

use crate::NetError;

/// The placement map: pure arithmetic, shared by server and tooling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    shards: usize,
    /// Placement unit in blocks (= data blocks per stripe).
    range_blocks: usize,
    /// Ranges per shard (= stripes per shard).
    ranges_per_shard: usize,
    block_size: usize,
}

/// One shard-local piece of a global byte span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpan {
    /// Which shard serves this piece.
    pub shard: usize,
    /// Byte offset within the shard's local space.
    pub local_offset: u64,
    /// Byte offset of this piece within the caller's global span.
    pub span_offset: usize,
    /// Length of this piece in bytes.
    pub len: usize,
}

impl Placement {
    /// Builds a map for `shards` shards each holding `ranges_per_shard`
    /// ranges of `range_blocks` blocks of `block_size` bytes.
    pub fn new(
        shards: usize,
        range_blocks: usize,
        ranges_per_shard: usize,
        block_size: usize,
    ) -> Self {
        assert!(shards > 0 && range_blocks > 0 && ranges_per_shard > 0 && block_size > 0);
        Placement {
            shards,
            range_blocks,
            ranges_per_shard,
            block_size,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Blocks per placement range.
    pub fn range_blocks(&self) -> usize {
        self.range_blocks
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total capacity in bytes across all shards.
    pub fn capacity(&self) -> u64 {
        self.shards as u64
            * self.ranges_per_shard as u64
            * self.range_blocks as u64
            * self.block_size as u64
    }

    /// Maps a global byte offset to `(shard, local byte offset)`.
    pub fn locate(&self, offset: u64) -> (usize, u64) {
        let range_bytes = (self.range_blocks * self.block_size) as u64;
        let range = offset / range_bytes;
        let shard = (range % self.shards as u64) as usize;
        let local = (range / self.shards as u64) * range_bytes + offset % range_bytes;
        (shard, local)
    }

    /// Splits the global byte span `[offset, offset + len)` into
    /// shard-local pieces, in global order.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Shards`] if the span exceeds capacity.
    pub fn split(&self, offset: u64, len: usize) -> Result<Vec<ShardSpan>, NetError> {
        let end = offset
            .checked_add(len as u64)
            .filter(|&e| e <= self.capacity())
            .ok_or_else(|| {
                NetError::Shards(format!(
                    "span {offset}+{len} exceeds capacity {}",
                    self.capacity()
                ))
            })?;
        let range_bytes = (self.range_blocks * self.block_size) as u64;
        let mut out = Vec::new();
        let mut at = offset;
        while at < end {
            let (shard, local_offset) = self.locate(at);
            // Stop at the end of the current range: the next range lives
            // on the next shard.
            let range_end = (at / range_bytes + 1) * range_bytes;
            let piece = (range_end.min(end) - at) as usize;
            // Merge with the previous piece when consecutive ranges land
            // on the same shard contiguously (only possible with 1 shard).
            match out.last_mut() {
                Some(ShardSpan {
                    shard: s,
                    local_offset: lo,
                    len: l,
                    ..
                }) if *s == shard && *lo + *l as u64 == local_offset => {
                    *l += piece;
                }
                _ => out.push(ShardSpan {
                    shard,
                    local_offset,
                    span_offset: (at - offset) as usize,
                    len: piece,
                }),
            }
            at += piece as u64;
        }
        Ok(out)
    }
}

/// One shard's share of a batch: shard-local ops plus, per op, where
/// its result stitches back into the global batch.
#[derive(Debug)]
pub struct ShardBatch {
    /// The shard these ops run on.
    pub shard: usize,
    /// Shard-local ops (offsets in the shard's local byte space), in
    /// global submission order.
    pub ops: Vec<IoOp>,
    /// Per local op: `(global op index, byte offset of this fragment
    /// within the global op's span)`.
    pub map: Vec<(usize, usize)>,
}

/// Splits a batch by placement into one [`ShardBatch`] per touched
/// shard, shards in ascending order. Submission order is preserved
/// within each shard, so conflicting ops (which always share the
/// shard their overlap lands on) keep their observable ordering.
///
/// # Errors
///
/// Returns [`NetError::Shards`] if any op's span exceeds capacity —
/// detected before anything executes.
pub fn split_batch(placement: &Placement, ops: &[IoOp]) -> Result<Vec<ShardBatch>, NetError> {
    let mut out: Vec<ShardBatch> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        for span in placement.split(op.offset(), op.byte_len())? {
            let local = match op {
                IoOp::Read { .. } => IoOp::Read {
                    offset: span.local_offset,
                    len: span.len,
                },
                IoOp::Write { data, .. } => IoOp::Write {
                    offset: span.local_offset,
                    data: data[span.span_offset..span.span_offset + span.len].to_vec(),
                },
            };
            let at = match out.binary_search_by_key(&span.shard, |b| b.shard) {
                Ok(at) => at,
                Err(at) => {
                    out.insert(
                        at,
                        ShardBatch {
                            shard: span.shard,
                            ops: Vec::new(),
                            map: Vec::new(),
                        },
                    );
                    at
                }
            };
            out[at].ops.push(local);
            out[at].map.push((i, span.span_offset));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_ranges() {
        // 3 shards, 4-block ranges, 2 ranges per shard, 10-byte blocks.
        let p = Placement::new(3, 4, 2, 10);
        assert_eq!(p.capacity(), 3 * 2 * 4 * 10);
        // Range k lives on shard k % 3 at local range k / 3.
        assert_eq!(p.locate(0), (0, 0));
        assert_eq!(p.locate(40), (1, 0));
        assert_eq!(p.locate(80), (2, 0));
        assert_eq!(p.locate(120), (0, 40));
        assert_eq!(p.locate(125), (0, 45));
        assert_eq!(p.locate(239), (2, 79));
    }

    #[test]
    fn split_covers_span_exactly_once() {
        let p = Placement::new(3, 4, 2, 10);
        let spans = p.split(35, 100).unwrap();
        // Pieces tile the request in order.
        let mut at = 0usize;
        for s in &spans {
            assert_eq!(s.span_offset, at);
            at += s.len;
        }
        assert_eq!(at, 100);
        // Every global byte maps to the piece covering it.
        for s in &spans {
            let (shard, local) = p.locate(35 + s.span_offset as u64);
            assert_eq!((shard, local), (s.shard, s.local_offset));
        }
    }

    #[test]
    fn split_rejects_beyond_capacity() {
        let p = Placement::new(2, 4, 2, 10);
        assert!(p.split(p.capacity(), 1).is_err());
        assert!(p.split(p.capacity() - 1, 2).is_err());
        assert!(p.split(p.capacity(), 0).unwrap().is_empty());
        assert!(p.split(u64::MAX, 2).is_err());
    }

    #[test]
    fn single_shard_spans_merge() {
        let p = Placement::new(1, 4, 8, 10);
        let spans = p.split(0, 300).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len, 300);
    }

    #[test]
    fn split_batch_groups_by_shard_and_keeps_order() {
        // 3 shards, 4-block ranges, 2 ranges per shard, 10-byte blocks:
        // range k → shard k % 3, range bytes = 40.
        let p = Placement::new(3, 4, 2, 10);
        let ops = vec![
            IoOp::Write {
                offset: 0,
                data: vec![1; 40],
            }, // range 0 → shard 0
            IoOp::Read {
                offset: 40,
                len: 40,
            }, // range 1 → shard 1
            IoOp::Write {
                offset: 35,
                data: vec![2; 10],
            }, // crosses range 0 → 1, splits across shards 0 and 1
            IoOp::Read { offset: 5, len: 10 }, // shard 0 again
        ];
        let shards = split_batch(&p, &ops).unwrap();
        assert_eq!(shards.len(), 2);
        // Shard 0: op 0, the head of op 2, op 3 — in submission order.
        assert_eq!(shards[0].shard, 0);
        assert_eq!(shards[0].map, vec![(0, 0), (2, 0), (3, 0)]);
        assert_eq!(
            shards[0].ops[1],
            IoOp::Write {
                offset: 35,
                data: vec![2; 5]
            }
        );
        // Shard 1: op 1, then the tail of op 2 (span offset 5, local
        // offset 0 of range 1's shard-local bytes).
        assert_eq!(shards[1].shard, 1);
        assert_eq!(shards[1].map, vec![(1, 0), (2, 5)]);
        assert_eq!(
            shards[1].ops[1],
            IoOp::Write {
                offset: 0,
                data: vec![2; 5]
            }
        );

        // A 64-single-block batch landing in one range produces exactly
        // one shard group — the "one request frame per shard" shape.
        let one_stripe: Vec<IoOp> = (0..40u64)
            .map(|k| IoOp::Write {
                offset: k,
                data: vec![k as u8],
            })
            .collect();
        let shards = split_batch(&p, &one_stripe).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].ops.len(), 40);

        // Out-of-range ops poison the whole split.
        assert!(split_batch(
            &p,
            &[IoOp::Read {
                offset: p.capacity(),
                len: 1
            }]
        )
        .is_err());
    }
}
