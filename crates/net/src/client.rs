//! Blocking client for the stair-net protocol.
//!
//! [`Client`] owns one connection and reuses it across calls. Large
//! reads and writes are split into [`MAX_IO_BYTES`]-capped chunks and
//! **pipelined**: up to a window of requests are in flight before the
//! first response is awaited, and responses are matched back to chunks
//! by request ID (the server's worker pool may complete them out of
//! order). Every response payload is checksum-verified by the frame
//! layer before it is trusted, and server-reported failures are
//! normalized by one shared helper ([`ok_or_remote`]) on both the
//! simple and the pipelined path.
//!
//! **Batches** ([`Client::submit`]) ship many ops in one BATCH frame —
//! one round trip instead of one per op — and [`StripedClient::submit`]
//! splits a batch by placement so each touched shard gets exactly one
//! request frame, executed across the lanes in parallel.
//!
//! **Resilience**: a broken connection is not a dead client. Any call
//! that hits a transport error drops the connection and the next call
//! redials transparently; *idempotent* requests (reads, status, flush,
//! scrub, repair, read-only batches) additionally retry once after
//! reconnecting, so a server restart or dropped socket between ops is
//! invisible to read-path callers. Writes and fault injection never
//! auto-retry: the caller decides whether to reissue them.
//!
//! The connection lives behind a [`Mutex`], so every method takes
//! `&self` and a `Client` is `Send + Sync` — usable behind
//! `Arc<Client>` (or `Arc<dyn BlockDevice>`) from many threads, which
//! serialize on the connection.
//!
//! [`ok_or_remote`]: crate::protocol::ok_or_remote

use std::collections::HashMap;
use std::net::TcpStream;
use std::str::FromStr;
use std::sync::{Mutex, MutexGuard};

use stair_code::CodecSpec;
use stair_device::{seed_results, BatchResult, IoBatch, IoOp, OpResult};
use stair_obs::trace::{self, names};
use stair_obs::SpanCtx;
use stair_store::StoreStatus;

use crate::device_impl::write_outcome;
use crate::protocol::{
    ok_or_remote, read_response_v, write_request_traced_v, BatchReply, RepairSummary, Request,
    Response, ScrubSummary, ServerInfo, WireShardStatus, WireTrace, WriteSummary,
    JOURNAL_SINCE_VERSION, MAX_BATCH_OPS, MAX_IO_BYTES, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::NetError;

/// Chunk requests in flight per connection during pipelined transfers.
const PIPELINE_WINDOW: usize = 8;

/// Protocol version that introduced trace-flagged frames.
const TRACE_SINCE_VERSION: u32 = 3;

/// Stitch-back map: per sub-op, `(global op index, byte offset of the
/// fragment within that op's span)`.
type StitchMap = Vec<(usize, usize)>;

/// What a frame op looked like, for response validation after the op
/// itself has moved into the request: `(is_write, byte length)`.
type OpSpec = (bool, usize);

/// Everything needed to fold one frame's response back into the
/// batch's result slots: the stitch map plus the per-op specs.
type FrameMeta = (StitchMap, Vec<OpSpec>);

/// The mutable half of a client: the stream plus the request-ID
/// counter, locked together for the duration of a call or transfer.
struct Conn {
    stream: TcpStream,
    next_id: u64,
    /// Protocol version agreed at HELLO; trace context is only sent to
    /// peers that negotiated ≥ [`TRACE_SINCE_VERSION`].
    version: u32,
}

impl Conn {
    /// The span context to stamp on outgoing frames: the caller's
    /// current span, if any, and only toward a trace-aware peer.
    fn trace_ctx(&self) -> Option<SpanCtx> {
        if self.version >= TRACE_SINCE_VERSION {
            trace::current()
        } else {
            None
        }
    }

    /// One request, one response (server errors become
    /// [`NetError::Remote`]).
    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let ctx = self.trace_ctx();
        write_request_traced_v(&mut self.stream, id, req, ctx, self.version)?;
        let (rid, resp) = read_response_v(&mut self.stream, self.version)?;
        if rid != id {
            return Err(NetError::Protocol(format!(
                "response for request {rid} while awaiting {id}"
            )));
        }
        ok_or_remote(resp)
    }

    /// Sends `count` requests keeping up to [`PIPELINE_WINDOW`] in
    /// flight, matching responses by ID. On the first failure no new
    /// requests are sent, but outstanding responses are still drained so
    /// the connection stays usable.
    fn pipelined(
        &mut self,
        count: usize,
        mut make: impl FnMut(usize) -> Request,
        mut on_response: impl FnMut(usize, Response) -> Result<(), NetError>,
    ) -> Result<(), NetError> {
        let mut pending: HashMap<u64, usize> = HashMap::new();
        let mut next = 0usize;
        let mut first_err: Option<NetError> = None;
        loop {
            while next < count && pending.len() < PIPELINE_WINDOW && first_err.is_none() {
                let id = self.next_id;
                self.next_id += 1;
                let ctx = self.trace_ctx();
                match write_request_traced_v(&mut self.stream, id, &make(next), ctx, self.version) {
                    Ok(()) => {
                        pending.insert(id, next);
                        next += 1;
                    }
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            if pending.is_empty() {
                break;
            }
            let (rid, resp) = match read_response_v(&mut self.stream, self.version) {
                Ok(x) => x,
                // The stream is broken; outstanding responses are lost.
                Err(e) => return Err(first_err.unwrap_or(e)),
            };
            let Some(chunk) = pending.remove(&rid) else {
                return Err(NetError::Protocol(format!("unsolicited response {rid}")));
            };
            if let Err(e) = ok_or_remote(resp).and_then(|resp| on_response(chunk, resp)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// A single-connection blocking client (`Send + Sync`; calls from
/// different threads serialize on the connection).
pub struct Client {
    addr: String,
    conn: Mutex<Option<Conn>>,
    info: ServerInfo,
    /// Highest protocol version this client offers at HELLO (redials
    /// re-offer the same, so the negotiated version is stable).
    max_version: u32,
}

impl Client {
    /// Connects and performs the HELLO handshake. The agreed protocol
    /// version (`min` of both sides) is in [`Client::info`]; trace
    /// context is only sent when it is ≥ 3.
    ///
    /// # Errors
    ///
    /// Connection failures, version mismatches, and protocol errors.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        Self::connect_with_version(addr, PROTOCOL_VERSION)
    }

    /// Connects offering at most `max_version` at HELLO — how a test
    /// impersonates an older (e.g. v2, pre-tracing) client.
    ///
    /// # Errors
    ///
    /// Connection failures, version mismatches, and protocol errors.
    pub fn connect_with_version(addr: &str, max_version: u32) -> Result<Self, NetError> {
        let (conn, info) = dial(addr, max_version)?;
        Ok(Client {
            addr: addr.to_string(),
            conn: Mutex::new(Some(conn)),
            info,
            max_version,
        })
    }

    /// What the server announced at HELLO time.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Total logical capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.info.capacity
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.info.block_size as usize
    }

    /// Locks the connection slot. Poisoning means another thread
    /// panicked mid-call; the stream may hold half a conversation, but
    /// the next frame either parses or surfaces a protocol error, so
    /// the guard is taken regardless.
    fn slot(&self) -> MutexGuard<'_, Option<Conn>> {
        self.conn
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` against a live connection, redialing a dropped one
    /// first. A transport failure ([`NetError::Io`]) marks the
    /// connection dead; when `idempotent` is set the call then redials
    /// and retries **once** — re-running an idempotent request cannot
    /// change the outcome, so a socket that died between ops is
    /// invisible to the caller. Non-idempotent requests surface the
    /// error (the dead connection still heals on the next call).
    /// Protocol and checksum failures also retire the connection (the
    /// stream may be desynchronized) but never retry.
    fn with_conn<T>(
        &self,
        idempotent: bool,
        mut f: impl FnMut(&mut Conn) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let mut slot = self.slot();
        for attempt in 0..2 {
            if slot.is_none() {
                let (conn, info) = dial(&self.addr, self.max_version)?;
                if info.capacity != self.info.capacity || info.block_size != self.info.block_size {
                    return Err(NetError::Protocol(format!(
                        "server at {} changed shape across reconnect ({} bytes / {}-byte blocks, was {} / {})",
                        self.addr, info.capacity, info.block_size,
                        self.info.capacity, self.info.block_size,
                    )));
                }
                *slot = Some(conn);
            }
            // check: panic-ok slot was filled two lines up; None here is a local logic bug
            match f(slot.as_mut().expect("connected above")) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let transport = matches!(e, NetError::Io(_));
                    if transport || matches!(e, NetError::Protocol(_) | NetError::Checksum { .. }) {
                        *slot = None;
                    }
                    if !(transport && idempotent && attempt == 0) {
                        return Err(e);
                    }
                }
            }
        }
        // check: panic-ok the retry loop returns on attempt 1; falling out is a logic bug
        unreachable!("loop returns on the second attempt")
    }

    /// Per-shard health snapshots.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn status(&self) -> Result<Vec<StoreStatus>, NetError> {
        match self.with_conn(true, |conn| conn.call(&Request::Status))? {
            Response::Status(shards) => shards.iter().map(store_status).collect(),
            other => Err(unexpected("STATUS", &other)),
        }
    }

    /// Reads `len` bytes at global byte `offset` (chunked + pipelined).
    /// Retries once over a fresh connection if the socket breaks.
    ///
    /// # Errors
    ///
    /// Transport, checksum, and server failures.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, NetError> {
        let mut op = trace::span_or_root(names::CLIENT_READ);
        op.set_bytes(len as u64);
        let chunks = chunk_spans(offset, len);
        let mut out = vec![0u8; len];
        self.with_conn(true, |conn| {
            conn.pipelined(
                chunks.len(),
                |i| Request::Read {
                    offset: chunks[i].0,
                    len: chunks[i].2 as u32,
                },
                |i, resp| {
                    let (_, span_off, want) = chunks[i];
                    match resp {
                        Response::Data(data) if data.len() == want => {
                            out[span_off..span_off + want].copy_from_slice(&data);
                            Ok(())
                        }
                        Response::Data(data) => Err(NetError::Protocol(format!(
                            "READ returned {} bytes, wanted {want}",
                            data.len()
                        ))),
                        other => Err(unexpected("READ", &other)),
                    }
                },
            )
        })
        .inspect_err(|_| op.fail())?;
        Ok(out)
    }

    /// Writes `data` at global byte `offset` (chunked + pipelined),
    /// aggregating the per-chunk summaries. Never auto-retried: after a
    /// transport failure the caller cannot know which chunks landed,
    /// and reissuing a write is the caller's decision.
    ///
    /// # Errors
    ///
    /// Transport, checksum, and server failures.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteSummary, NetError> {
        let mut op = trace::span_or_root(names::CLIENT_WRITE);
        op.set_bytes(data.len() as u64);
        let chunks = chunk_spans(offset, data.len());
        let mut total = WriteSummary::default();
        self.with_conn(false, |conn| {
            conn.pipelined(
                chunks.len(),
                |i| {
                    let (at, span_off, len) = chunks[i];
                    Request::Write {
                        offset: at,
                        data: data[span_off..span_off + len].to_vec(),
                    }
                },
                |_, resp| match resp {
                    Response::Written(w) => {
                        total.absorb(&w);
                        Ok(())
                    }
                    other => Err(unexpected("WRITE", &other)),
                },
            )
        })
        .inspect_err(|_| op.fail())?;
        Ok(total)
    }

    /// Submits a scatter-gather batch: every op travels in one BATCH
    /// frame (several frames only past the per-request caps), so N
    /// small ops cost one round trip instead of N.
    ///
    /// **Retry semantics.** Read-only batches are idempotent and retry
    /// once over a fresh connection. On a session that negotiated
    /// protocol ≥ 4, batches containing writes retry too: each frame
    /// carries a client-chosen batch id that is *reissued unchanged*
    /// on the retry, and re-applying the writes is safe because ops
    /// are absolute post-images and the server's stores journal them
    /// (a frame that half-landed before the socket died is completed
    /// or repeated, never torn). On an older session, write batches
    /// surface transport errors to the caller as before.
    ///
    /// # Errors
    ///
    /// Transport, checksum, and server failures; a failing op aborts
    /// the whole batch server-side.
    pub fn submit(&self, batch: &IoBatch) -> Result<BatchResult, NetError> {
        let mut op = trace::span_or_root(names::CLIENT_SUBMIT);
        op.set_bytes(batch.ops().iter().map(IoOp::byte_len).sum::<usize>() as u64);
        let frames = batch_frames(batch.ops());
        let mut results = seed_results(batch.ops());
        if frames.is_empty() {
            return Ok(BatchResult::from_results(results));
        }
        let read_only = batch.ops().iter().all(|op| !op.is_write());
        // The negotiated version is stable across redials (dial
        // re-offers the same max), so the initial HELLO's answer
        // decides retryability for the connection's whole life.
        let journaled_peer = self.info.version >= JOURNAL_SINCE_VERSION;
        let retryable = read_only || journaled_peer;
        // Conflicting ops must take effect in submission order. Within
        // one frame the server guarantees it (one submit call); across
        // frames the worker pool may execute pipelined requests out of
        // order, so a conflicted multi-frame batch serializes: each
        // frame completes before the next is sent.
        let ordered = frames.len() > 1 && batch.has_conflicts();
        // Split each frame into its payload and the metadata needed to
        // fold the response back. Retryable frames may be resent over a
        // fresh connection, so their payloads are cloned per send;
        // non-retryable write payloads *move* into requests (the second
        // copy would be pure waste). Each frame's batch id is minted
        // once, before any send, so a retry reissues the same id.
        let (metas, mut payloads): (Vec<FrameMeta>, Vec<Vec<IoOp>>) = frames
            .into_iter()
            .map(|f| ((f.map, f.specs), f.ops))
            .unzip();
        let batch_ids: Vec<u64> = payloads
            .iter()
            .map(|_| if journaled_peer { next_batch_id() } else { 0 })
            .collect();
        self.with_conn(retryable, |conn| {
            let mut request = |i: usize| Request::Batch {
                batch_id: batch_ids[i],
                ops: if retryable {
                    payloads[i].clone()
                } else {
                    std::mem::take(&mut payloads[i])
                },
            };
            if ordered {
                for (i, meta) in metas.iter().enumerate() {
                    let resp = conn.call(&request(i))?;
                    apply_batch_response(meta, resp, &mut results)?;
                }
                Ok(())
            } else {
                conn.pipelined(metas.len(), &mut request, |i, resp| {
                    apply_batch_response(&metas[i], resp, &mut results)
                })
            }
        })
        .inspect_err(|_| op.fail())?;
        Ok(BatchResult::from_results(results))
    }

    /// Persists every shard on the server.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn flush(&self) -> Result<(), NetError> {
        match self.with_conn(true, |conn| conn.call(&Request::Flush))? {
            Response::Flushed => Ok(()),
            other => Err(unexpected("FLUSH", &other)),
        }
    }

    /// Declares `device` of `shard` failed.
    ///
    /// # Errors
    ///
    /// Transport or server failures (bad indices come back as
    /// [`NetError::Remote`]).
    pub fn fail_device(&self, shard: usize, device: usize) -> Result<(), NetError> {
        match self.with_conn(false, |conn| {
            conn.call(&Request::FailDevice {
                shard: shard as u32,
                device: device as u32,
            })
        })? {
            Response::Failed => Ok(()),
            other => Err(unexpected("FAIL", &other)),
        }
    }

    /// Corrupts a sector burst on one shard device (latent damage).
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), NetError> {
        match self.with_conn(false, |conn| {
            conn.call(&Request::CorruptSectors {
                shard: shard as u32,
                device: device as u32,
                stripe: stripe as u32,
                row: row as u32,
                len: len as u32,
            })
        })? {
            Response::Failed => Ok(()),
            other => Err(unexpected("FAIL", &other)),
        }
    }

    /// Scrubs every shard with `threads` workers each.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn scrub(&self, threads: usize) -> Result<ScrubSummary, NetError> {
        match self.with_conn(true, |conn| {
            conn.call(&Request::Scrub {
                threads: threads as u32,
            })
        })? {
            Response::Scrubbed(s) => Ok(s),
            other => Err(unexpected("SCRUB", &other)),
        }
    }

    /// Repairs every shard with `threads` workers each.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn repair(&self, threads: usize) -> Result<RepairSummary, NetError> {
        match self.with_conn(true, |conn| {
            conn.call(&Request::Repair {
                threads: threads as u32,
            })
        })? {
            Response::Repaired(r) => Ok(r),
            other => Err(unexpected("REPAIR", &other)),
        }
    }

    /// Pulls the server's metrics snapshot: per-opcode request counters
    /// and latency histograms, connection gauges, slow-op captures, and
    /// the aggregated `store.*`/`gf.*` counters across shards.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn metrics(&self) -> Result<stair_obs::MetricsSnapshot, NetError> {
        match self.with_conn(true, |conn| conn.call(&Request::Metrics))? {
            Response::Metrics(snap) => Ok(snap),
            other => Err(unexpected("METRICS", &other)),
        }
    }

    /// Pulls the server's flight recorder: completed traces plus the
    /// slow/errored captures the main ring has already evicted.
    ///
    /// # Errors
    ///
    /// Transport or server failures, and [`NetError::Remote`] from a
    /// pre-v3 server that does not know the TRACE opcode.
    pub fn pull_traces(&self) -> Result<Vec<WireTrace>, NetError> {
        match self.with_conn(true, |conn| conn.call(&Request::Trace))? {
            Response::Traces(traces) => Ok(traces),
            other => Err(unexpected("TRACE", &other)),
        }
    }

    /// Asks the server to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn shutdown_server(&self) -> Result<(), NetError> {
        match self.with_conn(false, |conn| conn.call(&Request::Shutdown))? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }
}

/// Dials `addr` and performs the HELLO handshake, offering at most
/// `ours`. The server replies with the agreed version — `min` of both
/// sides — which must land in `MIN_PROTOCOL_VERSION..=ours`.
fn dial(addr: &str, ours: u32) -> Result<(Conn, ServerInfo), NetError> {
    let stream = TcpStream::connect(addr).map_err(|e| {
        NetError::Io(std::io::Error::new(
            e.kind(),
            format!("cannot connect to {addr}: {e}"),
        ))
    })?;
    let _ = stream.set_nodelay(true);
    let mut conn = Conn {
        stream,
        next_id: 1,
        // Until HELLO agrees otherwise, speak the lowest common form:
        // no trace context on the handshake itself.
        version: MIN_PROTOCOL_VERSION,
    };
    match conn.call(&Request::Hello { version: ours })? {
        Response::Hello(info) => {
            if info.version < MIN_PROTOCOL_VERSION || info.version > ours {
                return Err(NetError::Version {
                    ours,
                    theirs: info.version,
                });
            }
            conn.version = info.version;
            Ok((conn, info))
        }
        other => Err(unexpected("HELLO", &other)),
    }
}

/// One wire frame's worth of batch ops, the stitch-back map, and the
/// per-op `(is_write, len)` specs kept for response validation after
/// the ops move into the request.
#[derive(Default)]
struct Frame {
    ops: Vec<IoOp>,
    map: StitchMap,
    specs: Vec<OpSpec>,
}

/// Folds one BATCH response into the result slots its frame maps to.
fn apply_batch_response(
    (map, specs): &FrameMeta,
    resp: Response,
    results: &mut [OpResult],
) -> Result<(), NetError> {
    let Response::Batched(replies) = resp else {
        return Err(unexpected("BATCH", &resp));
    };
    if replies.len() != specs.len() {
        return Err(NetError::Protocol(format!(
            "BATCH returned {} replies for {} ops",
            replies.len(),
            specs.len()
        )));
    }
    for (j, reply) in replies.into_iter().enumerate() {
        let (op_idx, span_off) = map[j];
        let (is_write, len) = specs[j];
        match (reply, is_write, &mut results[op_idx]) {
            (BatchReply::Data(data), false, OpResult::Read(out)) => {
                if data.len() != len {
                    return Err(NetError::Protocol(format!(
                        "batch read returned {} bytes, wanted {len}",
                        data.len()
                    )));
                }
                out[span_off..span_off + data.len()].copy_from_slice(&data);
            }
            (BatchReply::Written(w), true, OpResult::Write(total)) => {
                total.absorb(&write_outcome(&w));
            }
            _ => {
                return Err(NetError::Protocol(
                    "batch reply kind does not match its op".into(),
                ))
            }
        }
    }
    Ok(())
}

/// Packs ops into BATCH frames: fragments capped at [`MAX_IO_BYTES`]
/// per op, frames capped at [`MAX_BATCH_OPS`] ops and a combined
/// [`MAX_IO_BYTES`] byte budget — mirroring what the server's decoder
/// enforces. Small batches (the common case) land in exactly one
/// frame, i.e. one round trip.
fn batch_frames(ops: &[IoOp]) -> Vec<Frame> {
    let cap = MAX_IO_BYTES as usize;
    let mut frames: Vec<Frame> = Vec::new();
    let mut cur = Frame::default();
    let mut budget = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let mut at = 0usize;
        loop {
            let piece = (op.byte_len() - at).min(cap);
            if !cur.ops.is_empty()
                && (budget + piece > cap || cur.ops.len() >= MAX_BATCH_OPS as usize)
            {
                frames.push(std::mem::take(&mut cur));
                budget = 0;
            }
            cur.ops.push(match op {
                IoOp::Read { offset, .. } => IoOp::Read {
                    offset: offset + at as u64,
                    len: piece,
                },
                IoOp::Write { offset, data } => IoOp::Write {
                    offset: offset + at as u64,
                    data: data[at..at + piece].to_vec(),
                },
            });
            cur.map.push((i, at));
            cur.specs.push((op.is_write(), piece));
            budget += piece;
            at += piece;
            if at >= op.byte_len() {
                break;
            }
        }
    }
    if !cur.ops.is_empty() {
        frames.push(cur);
    }
    frames
}

/// A multi-connection client: each transfer is split into one
/// contiguous piece per connection and the pieces run on scoped
/// threads, so a single caller can keep several server workers busy.
pub struct StripedClient {
    lanes: Vec<Client>,
}

impl StripedClient {
    /// Opens `lanes` connections to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the first connection failure.
    pub fn connect(addr: &str, lanes: usize) -> Result<Self, NetError> {
        if lanes == 0 {
            return Err(NetError::Protocol("need at least one lane".into()));
        }
        let lanes = (0..lanes)
            .map(|_| Client::connect(addr))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StripedClient { lanes })
    }

    /// Number of connections.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The first lane — control-plane calls (status, scrub, …) go down
    /// one connection.
    pub(crate) fn lane0(&self) -> &Client {
        &self.lanes[0]
    }

    /// What the server announced at HELLO time.
    pub fn info(&self) -> ServerInfo {
        self.lanes[0].info().clone()
    }

    /// Pulls the server's metrics snapshot down lane 0 (the metrics are
    /// server-side and connection-independent, so one lane suffices).
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn metrics(&self) -> Result<stair_obs::MetricsSnapshot, NetError> {
        self.lane0().metrics()
    }

    /// Pulls the server's flight recorder down lane 0 (the recorder is
    /// process-wide server-side, so one lane sees every trace).
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn pull_traces(&self) -> Result<Vec<WireTrace>, NetError> {
        self.lane0().pull_traces()
    }

    /// Splits `[0, len)` into one contiguous piece per lane.
    fn pieces(&self, len: usize) -> Vec<(usize, usize)> {
        let lanes = self.lanes.len();
        let base = len / lanes;
        let extra = len % lanes;
        let mut out = Vec::with_capacity(lanes);
        let mut at = 0;
        for lane in 0..lanes {
            let piece = base + usize::from(lane < extra);
            out.push((at, piece));
            at += piece;
        }
        out
    }

    /// Reads `len` bytes at `offset`, one piece per connection in
    /// parallel.
    ///
    /// # Errors
    ///
    /// The first lane failure wins.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, NetError> {
        let pieces = self.pieces(len);
        let mut out = vec![0u8; len];
        // Carve `out` into disjoint mutable chunks, one per lane.
        let mut chunks: Vec<&mut [u8]> = Vec::with_capacity(pieces.len());
        let mut rest = out.as_mut_slice();
        for &(_, piece_len) in &pieces {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(piece_len);
            chunks.push(head);
            rest = tail;
        }
        let ctx = trace::current();
        let results: Vec<Result<(), NetError>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for ((lane, &(start, piece_len)), chunk) in
                self.lanes.iter().zip(pieces.iter()).zip(chunks)
            {
                handles.push(scope.spawn(move |_| {
                    let _trace = trace::enter_ctx(ctx);
                    if piece_len == 0 {
                        return Ok(());
                    }
                    let data = lane.read_at(offset + start as u64, piece_len)?;
                    chunk.copy_from_slice(&data);
                    Ok(())
                }));
            }
            handles
                .into_iter()
                // check: panic-ok a panicked lane thread is a bug — propagate, don't mask as NetError
                .map(|h| h.join().expect("lane thread panicked"))
                .collect()
        })
        // check: panic-ok crossbeam scope only errs if a child panicked; propagate
        .expect("lane scope");
        for r in results {
            r?;
        }
        Ok(out)
    }

    /// Writes `data` at `offset`, one piece per connection in parallel.
    ///
    /// # Errors
    ///
    /// The first lane failure wins.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteSummary, NetError> {
        let pieces = self.pieces(data.len());
        let ctx = trace::current();
        let results: Vec<Result<WriteSummary, NetError>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (lane, &(start, piece_len)) in self.lanes.iter().zip(pieces.iter()) {
                handles.push(scope.spawn(move |_| {
                    let _trace = trace::enter_ctx(ctx);
                    if piece_len == 0 {
                        return Ok(WriteSummary::default());
                    }
                    lane.write_at(offset + start as u64, &data[start..start + piece_len])
                }));
            }
            handles
                .into_iter()
                // check: panic-ok a panicked lane thread is a bug — propagate, don't mask as NetError
                .map(|h| h.join().expect("lane thread panicked"))
                .collect()
        })
        // check: panic-ok crossbeam scope only errs if a child panicked; propagate
        .expect("lane scope");
        let mut total = WriteSummary::default();
        for r in results {
            total.absorb(&r?);
        }
        Ok(total)
    }

    /// Submits a batch with **one request frame per touched shard**:
    /// ops are grouped by the server's placement map (reconstructed
    /// from the HELLO geometry), each shard group ships as a single
    /// BATCH frame, and the groups run across the lanes in parallel.
    ///
    /// # Errors
    ///
    /// Span errors surface before anything is sent; afterwards the
    /// first shard failure wins.
    pub fn submit(&self, batch: &IoBatch) -> Result<BatchResult, NetError> {
        let info = self.lanes[0].info();
        let placement = info.placement()?;
        let groups = crate::placement::split_batch(&placement, batch.ops())?;
        let mut results = seed_results(batch.ops());
        // Rebuild each fragment with its *global* offset (split_batch
        // localizes offsets for in-process shard stores; the wire
        // speaks the global space) — the grouping is what we're after.
        let work: Vec<(usize, Vec<IoOp>, StitchMap)> = groups
            .into_iter()
            .map(|g| {
                let ops = g
                    .ops
                    .into_iter()
                    .zip(&g.map)
                    .map(|(local, &(op_idx, span_off))| {
                        let offset = batch.ops()[op_idx].offset() + span_off as u64;
                        match local {
                            IoOp::Read { len, .. } => IoOp::Read { offset, len },
                            IoOp::Write { data, .. } => IoOp::Write { offset, data },
                        }
                    })
                    .collect();
                (g.shard, ops, g.map)
            })
            .collect();
        // One touched shard sends inline — no lane threads at width 1.
        let subs: Vec<(StitchMap, Result<BatchResult, NetError>)> = if work.len() == 1 {
            // check: panic-ok guarded by work.len() == 1 on the line above
            let (shard, ops, map) = work.into_iter().next().expect("one group");
            let lane = &self.lanes[shard % self.lanes.len()];
            vec![(map, lane.submit(&IoBatch::from(ops)))]
        } else {
            let ctx = trace::current();
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (shard, ops, map) in work {
                    let lane = &self.lanes[shard % self.lanes.len()];
                    handles.push(scope.spawn(move |_| {
                        let _trace = trace::enter_ctx(ctx);
                        (map, lane.submit(&IoBatch::from(ops)))
                    }));
                }
                handles
                    .into_iter()
                    // check: panic-ok a panicked lane thread is a bug — propagate, don't mask as NetError
                    .map(|h| h.join().expect("lane batch thread"))
                    .collect()
            })
            // check: panic-ok crossbeam scope only errs if a child panicked; propagate
            .expect("lane scope")
        };
        for (map, sub) in subs {
            crate::device_impl::stitch(&mut results, &map, sub?.results)?;
        }
        Ok(BatchResult::from_results(results))
    }
}

/// Mints a process-unique nonzero batch id (0 means "unassigned" on
/// the wire, so the counter starts at 1).
fn next_batch_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

fn unexpected(what: &str, got: &Response) -> NetError {
    NetError::Protocol(format!("unexpected response to {what}: {got:?}"))
}

/// Splits `[offset, offset+len)` into `MAX_IO_BYTES`-capped chunks:
/// `(global_offset, offset_into_span, chunk_len)`.
fn chunk_spans(offset: u64, len: usize) -> Vec<(u64, usize, usize)> {
    let cap = MAX_IO_BYTES as usize;
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < len {
        let piece = cap.min(len - at);
        out.push((offset + at as u64, at, piece));
        at += piece;
    }
    out
}

fn store_status(w: &WireShardStatus) -> Result<StoreStatus, NetError> {
    Ok(StoreStatus {
        codec: CodecSpec::from_str(&w.codec)
            .map_err(|e| NetError::Protocol(format!("bad codec spec in status: {e}")))?,
        capacity: w.capacity,
        block_size: w.block_size as usize,
        stripes: w.stripes as usize,
        blocks_per_stripe: w.blocks_per_stripe as usize,
        failed_devices: w.failed_devices.iter().map(|&d| d as usize).collect(),
        rebuilding_devices: w.rebuilding_devices.iter().map(|&d| d as usize).collect(),
        known_bad_sectors: w.known_bad_sectors as usize,
        clean_shutdown: w.clean_shutdown,
        replayed_records: w.replayed_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait-object data path requires clients to be shareable.
    #[test]
    fn clients_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Client>();
        assert_send_sync::<StripedClient>();
    }

    #[test]
    fn small_batches_pack_into_one_frame() {
        // 64 single-block ops: one frame, map in submission order.
        let ops: Vec<IoOp> = (0..64u64)
            .map(|k| IoOp::Write {
                offset: k * 512,
                data: vec![k as u8; 512],
            })
            .collect();
        let frames = batch_frames(&ops);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].ops.len(), 64);
        assert_eq!(frames[0].map[63], (63, 0));
    }

    #[test]
    fn oversize_ops_and_budgets_split_frames() {
        // One op bigger than the per-request cap fragments, and the
        // fragments spill across frames.
        let big = MAX_IO_BYTES as usize + 10;
        let frames = batch_frames(&[IoOp::Read {
            offset: 0,
            len: big,
        }]);
        assert_eq!(frames.len(), 2);
        assert_eq!(
            frames[0].ops[0],
            IoOp::Read {
                offset: 0,
                len: MAX_IO_BYTES as usize
            }
        );
        assert_eq!(
            frames[1].ops[0],
            IoOp::Read {
                offset: MAX_IO_BYTES as u64,
                len: 10
            }
        );
        assert_eq!(frames[1].map[0], (0, MAX_IO_BYTES as usize));

        // Two half-cap ops exceed the combined budget → two frames.
        let half = MAX_IO_BYTES as usize / 2 + 1;
        let frames = batch_frames(&[
            IoOp::Read {
                offset: 0,
                len: half,
            },
            IoOp::Read {
                offset: half as u64,
                len: half,
            },
        ]);
        assert_eq!(frames.len(), 2);

        // Zero-length ops still travel (and get a reply slot).
        let frames = batch_frames(&[IoOp::Read { offset: 5, len: 0 }]);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].ops[0], IoOp::Read { offset: 5, len: 0 });
    }
}
