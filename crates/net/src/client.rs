//! Blocking client for the stair-net protocol.
//!
//! [`Client`] owns one connection and reuses it across calls. Large
//! reads and writes are split into [`MAX_IO_BYTES`]-capped chunks and
//! **pipelined**: up to a window of requests are in flight before the
//! first response is awaited, and responses are matched back to chunks
//! by request ID (the server's worker pool may complete them out of
//! order). Every response payload is checksum-verified by the frame
//! layer before it is trusted, and server-reported failures are
//! normalized by one shared helper ([`ok_or_remote`]) on both the
//! simple and the pipelined path.
//!
//! The connection lives behind a [`Mutex`], so every method takes
//! `&self` and a `Client` is `Send + Sync` — usable behind
//! `Arc<Client>` (or `Arc<dyn BlockDevice>`) from many threads, which
//! serialize on the connection.
//!
//! [`StripedClient`] opens several connections and splits each transfer
//! across them on scoped threads — the multi-connection mode the
//! throughput benchmark uses to saturate the server's worker pool from
//! one process.
//!
//! [`ok_or_remote`]: crate::protocol::ok_or_remote

use std::collections::HashMap;
use std::net::TcpStream;
use std::str::FromStr;
use std::sync::{Mutex, MutexGuard};

use stair_code::CodecSpec;
use stair_store::StoreStatus;

use crate::protocol::{
    ok_or_remote, read_response, write_request, RepairSummary, Request, Response, ScrubSummary,
    ServerInfo, WireShardStatus, WriteSummary, MAX_IO_BYTES, PROTOCOL_VERSION,
};
use crate::NetError;

/// Chunk requests in flight per connection during pipelined transfers.
const PIPELINE_WINDOW: usize = 8;

/// The mutable half of a client: the stream plus the request-ID
/// counter, locked together for the duration of a call or transfer.
struct Conn {
    stream: TcpStream,
    next_id: u64,
}

impl Conn {
    /// One request, one response (server errors become
    /// [`NetError::Remote`]).
    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        write_request(&mut self.stream, id, req)?;
        let (rid, resp) = read_response(&mut self.stream)?;
        if rid != id {
            return Err(NetError::Protocol(format!(
                "response for request {rid} while awaiting {id}"
            )));
        }
        ok_or_remote(resp)
    }

    /// Sends `count` requests keeping up to [`PIPELINE_WINDOW`] in
    /// flight, matching responses by ID. On the first failure no new
    /// requests are sent, but outstanding responses are still drained so
    /// the connection stays usable.
    fn pipelined(
        &mut self,
        count: usize,
        mut make: impl FnMut(usize) -> Request,
        mut on_response: impl FnMut(usize, Response) -> Result<(), NetError>,
    ) -> Result<(), NetError> {
        let mut pending: HashMap<u64, usize> = HashMap::new();
        let mut next = 0usize;
        let mut first_err: Option<NetError> = None;
        loop {
            while next < count && pending.len() < PIPELINE_WINDOW && first_err.is_none() {
                let id = self.next_id;
                self.next_id += 1;
                match write_request(&mut self.stream, id, &make(next)) {
                    Ok(()) => {
                        pending.insert(id, next);
                        next += 1;
                    }
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            if pending.is_empty() {
                break;
            }
            let (rid, resp) = match read_response(&mut self.stream) {
                Ok(x) => x,
                // The stream is broken; outstanding responses are lost.
                Err(e) => return Err(first_err.unwrap_or(e)),
            };
            let Some(chunk) = pending.remove(&rid) else {
                return Err(NetError::Protocol(format!("unsolicited response {rid}")));
            };
            if let Err(e) = ok_or_remote(resp).and_then(|resp| on_response(chunk, resp)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// A single-connection blocking client (`Send + Sync`; calls from
/// different threads serialize on the connection).
pub struct Client {
    conn: Mutex<Conn>,
    info: ServerInfo,
}

impl Client {
    /// Connects and performs the HELLO handshake.
    ///
    /// # Errors
    ///
    /// Connection failures, version mismatches, and protocol errors.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| {
            NetError::Io(std::io::Error::new(
                e.kind(),
                format!("cannot connect to {addr}: {e}"),
            ))
        })?;
        let _ = stream.set_nodelay(true);
        let mut conn = Conn { stream, next_id: 1 };
        match conn.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Hello(info) => {
                if info.version != PROTOCOL_VERSION {
                    return Err(NetError::Version {
                        ours: PROTOCOL_VERSION,
                        theirs: info.version,
                    });
                }
                Ok(Client {
                    conn: Mutex::new(conn),
                    info,
                })
            }
            other => Err(unexpected("HELLO", &other)),
        }
    }

    /// What the server announced at HELLO time.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Total logical capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.info.capacity
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.info.block_size as usize
    }

    /// Locks the connection. Poisoning means another thread panicked
    /// mid-call; the stream may hold half a conversation, but the next
    /// frame either parses or surfaces a protocol error, so the guard
    /// is taken regardless.
    fn conn(&self) -> MutexGuard<'_, Conn> {
        self.conn
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Per-shard health snapshots.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn status(&self) -> Result<Vec<StoreStatus>, NetError> {
        match self.conn().call(&Request::Status)? {
            Response::Status(shards) => shards.iter().map(store_status).collect(),
            other => Err(unexpected("STATUS", &other)),
        }
    }

    /// Reads `len` bytes at global byte `offset` (chunked + pipelined).
    ///
    /// # Errors
    ///
    /// Transport, checksum, and server failures.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, NetError> {
        let chunks = chunk_spans(offset, len);
        let mut out = vec![0u8; len];
        self.conn().pipelined(
            chunks.len(),
            |i| Request::Read {
                offset: chunks[i].0,
                len: chunks[i].2 as u32,
            },
            |i, resp| {
                let (_, span_off, want) = chunks[i];
                match resp {
                    Response::Data(data) if data.len() == want => {
                        out[span_off..span_off + want].copy_from_slice(&data);
                        Ok(())
                    }
                    Response::Data(data) => Err(NetError::Protocol(format!(
                        "READ returned {} bytes, wanted {want}",
                        data.len()
                    ))),
                    other => Err(unexpected("READ", &other)),
                }
            },
        )?;
        Ok(out)
    }

    /// Writes `data` at global byte `offset` (chunked + pipelined),
    /// aggregating the per-chunk summaries.
    ///
    /// # Errors
    ///
    /// Transport, checksum, and server failures.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteSummary, NetError> {
        let chunks = chunk_spans(offset, data.len());
        let mut total = WriteSummary::default();
        self.conn().pipelined(
            chunks.len(),
            |i| {
                let (at, span_off, len) = chunks[i];
                Request::Write {
                    offset: at,
                    data: data[span_off..span_off + len].to_vec(),
                }
            },
            |_, resp| match resp {
                Response::Written(w) => {
                    total.absorb(&w);
                    Ok(())
                }
                other => Err(unexpected("WRITE", &other)),
            },
        )?;
        Ok(total)
    }

    /// Persists every shard on the server.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn flush(&self) -> Result<(), NetError> {
        match self.conn().call(&Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(unexpected("FLUSH", &other)),
        }
    }

    /// Declares `device` of `shard` failed.
    ///
    /// # Errors
    ///
    /// Transport or server failures (bad indices come back as
    /// [`NetError::Remote`]).
    pub fn fail_device(&self, shard: usize, device: usize) -> Result<(), NetError> {
        match self.conn().call(&Request::FailDevice {
            shard: shard as u32,
            device: device as u32,
        })? {
            Response::Failed => Ok(()),
            other => Err(unexpected("FAIL", &other)),
        }
    }

    /// Corrupts a sector burst on one shard device (latent damage).
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), NetError> {
        match self.conn().call(&Request::CorruptSectors {
            shard: shard as u32,
            device: device as u32,
            stripe: stripe as u32,
            row: row as u32,
            len: len as u32,
        })? {
            Response::Failed => Ok(()),
            other => Err(unexpected("FAIL", &other)),
        }
    }

    /// Scrubs every shard with `threads` workers each.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn scrub(&self, threads: usize) -> Result<ScrubSummary, NetError> {
        match self.conn().call(&Request::Scrub {
            threads: threads as u32,
        })? {
            Response::Scrubbed(s) => Ok(s),
            other => Err(unexpected("SCRUB", &other)),
        }
    }

    /// Repairs every shard with `threads` workers each.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn repair(&self, threads: usize) -> Result<RepairSummary, NetError> {
        match self.conn().call(&Request::Repair {
            threads: threads as u32,
        })? {
            Response::Repaired(r) => Ok(r),
            other => Err(unexpected("REPAIR", &other)),
        }
    }

    /// Asks the server to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn shutdown_server(&self) -> Result<(), NetError> {
        match self.conn().call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }
}

/// A multi-connection client: each transfer is split into one
/// contiguous piece per connection and the pieces run on scoped
/// threads, so a single caller can keep several server workers busy.
pub struct StripedClient {
    lanes: Vec<Client>,
}

impl StripedClient {
    /// Opens `lanes` connections to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the first connection failure.
    pub fn connect(addr: &str, lanes: usize) -> Result<Self, NetError> {
        if lanes == 0 {
            return Err(NetError::Protocol("need at least one lane".into()));
        }
        let lanes = (0..lanes)
            .map(|_| Client::connect(addr))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StripedClient { lanes })
    }

    /// Number of connections.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The first lane — control-plane calls (status, scrub, …) go down
    /// one connection.
    pub(crate) fn lane0(&self) -> &Client {
        &self.lanes[0]
    }

    /// What the server announced at HELLO time.
    pub fn info(&self) -> ServerInfo {
        self.lanes[0].info().clone()
    }

    /// Splits `[0, len)` into one contiguous piece per lane.
    fn pieces(&self, len: usize) -> Vec<(usize, usize)> {
        let lanes = self.lanes.len();
        let base = len / lanes;
        let extra = len % lanes;
        let mut out = Vec::with_capacity(lanes);
        let mut at = 0;
        for lane in 0..lanes {
            let piece = base + usize::from(lane < extra);
            out.push((at, piece));
            at += piece;
        }
        out
    }

    /// Reads `len` bytes at `offset`, one piece per connection in
    /// parallel.
    ///
    /// # Errors
    ///
    /// The first lane failure wins.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, NetError> {
        let pieces = self.pieces(len);
        let mut out = vec![0u8; len];
        // Carve `out` into disjoint mutable chunks, one per lane.
        let mut chunks: Vec<&mut [u8]> = Vec::with_capacity(pieces.len());
        let mut rest = out.as_mut_slice();
        for &(_, piece_len) in &pieces {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(piece_len);
            chunks.push(head);
            rest = tail;
        }
        let results: Vec<Result<(), NetError>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for ((lane, &(start, piece_len)), chunk) in
                self.lanes.iter().zip(pieces.iter()).zip(chunks)
            {
                handles.push(scope.spawn(move |_| {
                    if piece_len == 0 {
                        return Ok(());
                    }
                    let data = lane.read_at(offset + start as u64, piece_len)?;
                    chunk.copy_from_slice(&data);
                    Ok(())
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("lane thread panicked"))
                .collect()
        })
        .expect("lane scope");
        for r in results {
            r?;
        }
        Ok(out)
    }

    /// Writes `data` at `offset`, one piece per connection in parallel.
    ///
    /// # Errors
    ///
    /// The first lane failure wins.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteSummary, NetError> {
        let pieces = self.pieces(data.len());
        let results: Vec<Result<WriteSummary, NetError>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (lane, &(start, piece_len)) in self.lanes.iter().zip(pieces.iter()) {
                handles.push(scope.spawn(move |_| {
                    if piece_len == 0 {
                        return Ok(WriteSummary::default());
                    }
                    lane.write_at(offset + start as u64, &data[start..start + piece_len])
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("lane thread panicked"))
                .collect()
        })
        .expect("lane scope");
        let mut total = WriteSummary::default();
        for r in results {
            total.absorb(&r?);
        }
        Ok(total)
    }
}

fn unexpected(what: &str, got: &Response) -> NetError {
    NetError::Protocol(format!("unexpected response to {what}: {got:?}"))
}

/// Splits `[offset, offset+len)` into `MAX_IO_BYTES`-capped chunks:
/// `(global_offset, offset_into_span, chunk_len)`.
fn chunk_spans(offset: u64, len: usize) -> Vec<(u64, usize, usize)> {
    let cap = MAX_IO_BYTES as usize;
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < len {
        let piece = cap.min(len - at);
        out.push((offset + at as u64, at, piece));
        at += piece;
    }
    out
}

fn store_status(w: &WireShardStatus) -> Result<StoreStatus, NetError> {
    Ok(StoreStatus {
        codec: CodecSpec::from_str(&w.codec)
            .map_err(|e| NetError::Protocol(format!("bad codec spec in status: {e}")))?,
        capacity: w.capacity,
        block_size: w.block_size as usize,
        stripes: w.stripes as usize,
        blocks_per_stripe: w.blocks_per_stripe as usize,
        failed_devices: w.failed_devices.iter().map(|&d| d as usize).collect(),
        rebuilding_devices: w.rebuilding_devices.iter().map(|&d| d as usize).collect(),
        known_bad_sectors: w.known_bad_sectors as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait-object data path requires clients to be shareable.
    #[test]
    fn clients_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Client>();
        assert_send_sync::<StripedClient>();
    }
}
