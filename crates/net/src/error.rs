//! Error type for the network service layer.

use std::fmt;
use std::io;

/// Errors surfaced by the server, client, and shard set.
#[derive(Debug)]
pub enum NetError {
    /// A socket or file operation failed.
    Io(io::Error),
    /// The peer sent bytes that do not parse as a protocol frame, or a
    /// frame that violates the protocol (bad magic, oversized, truncated).
    Protocol(String),
    /// The peer speaks an incompatible protocol version.
    Version {
        /// Version this end implements.
        ours: u32,
        /// Version the peer announced.
        theirs: u32,
    },
    /// A response payload did not match its frame checksum — the bytes
    /// were damaged in flight or the server is buggy; do not trust them.
    Checksum {
        /// Checksum announced in the frame header.
        expected: u32,
        /// Checksum of the payload as received.
        actual: u32,
    },
    /// The server reported an error executing the request.
    Remote(String),
    /// The underlying stripe store refused or failed an operation.
    Store(stair_store::Error),
    /// The shard layout under the serve root is unusable (missing shards,
    /// mismatched geometry, not a shard directory).
    Shards(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Version { ours, theirs } => {
                write!(f, "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}")
            }
            NetError::Checksum { expected, actual } => write!(
                f,
                "response checksum mismatch: header says {expected:#010x}, payload sums to {actual:#010x}"
            ),
            NetError::Remote(msg) => write!(f, "server error: {msg}"),
            NetError::Store(e) => write!(f, "store error: {e}"),
            NetError::Shards(msg) => write!(f, "shard layout error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<stair_store::Error> for NetError {
    fn from(e: stair_store::Error) -> Self {
        NetError::Store(e)
    }
}

impl From<NetError> for stair_device::DeviceError {
    fn from(e: NetError) -> Self {
        use stair_device::DeviceError;
        match e {
            NetError::Io(io) => DeviceError::Io(io),
            NetError::Checksum { .. } => DeviceError::Corrupt(e.to_string()),
            // A store error that crossed the wire keeps its category.
            NetError::Store(e) => e.into(),
            // Remote errors arrive rendered; recover the two categories
            // consumers branch on.
            NetError::Remote(msg) if msg.contains("out of range") => DeviceError::OutOfRange(msg),
            NetError::Remote(msg) if msg.contains("unrecoverable") => DeviceError::Corrupt(msg),
            e => DeviceError::Backend(e.to_string()),
        }
    }
}
