//! A minimal JSON value builder for machine-readable reports.
//!
//! The workspace has no registry access, so instead of serde this tiny
//! module covers the one direction the tooling needs: building a value
//! and rendering it as spec-compliant JSON text (string escaping,
//! `null` for non-finite floats). Shared by `stair store status --json`,
//! `stair remote status --json`, and the benchmark `--json` reports.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; JSON has no integer/float distinction).
    Int(i64),
    /// A float; NaN and infinities render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an integer value (saturating past `i64::MAX`, far beyond
    /// any count this workspace produces).
    pub fn int(v: usize) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Builds an integer value from a `u64`.
    pub fn int64(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Renders with a trailing newline — the shape every `--json` flag
    /// in this workspace emits.
    pub fn to_text(&self) -> String {
        format!("{self}\n")
    }
}

/// Renders a metrics snapshot as the one JSON shape every surface
/// shares (`stair dev metrics`, `stair remote metrics`, and the bench
/// drivers' `--json` output): counters, gauges, histograms, and slow
/// ops as **arrays of uniform objects**, so the key shape is identical
/// across backends even though the metric *name* sets differ.
pub fn metrics_json(snap: &stair_obs::MetricsSnapshot) -> Json {
    Json::obj([
        (
            "counters",
            Json::arr(snap.counters.iter().map(|(name, v)| {
                Json::obj([
                    ("name", Json::str(name.clone())),
                    ("value", Json::int64(*v)),
                ])
            })),
        ),
        (
            "gauges",
            Json::arr(snap.gauges.iter().map(|(name, v)| {
                Json::obj([("name", Json::str(name.clone())), ("value", Json::Int(*v))])
            })),
        ),
        (
            "histograms",
            Json::arr(snap.histograms.iter().map(|(name, h)| {
                Json::obj([
                    ("name", Json::str(name.clone())),
                    ("count", Json::int64(h.count())),
                    ("sum_us", Json::int64(h.sum)),
                    ("mean_us", Json::Num(h.mean())),
                    ("p50_us", Json::int64(h.p50())),
                    ("p99_us", Json::int64(h.p99())),
                    ("max_us", Json::int64(h.max)),
                ])
            })),
        ),
        (
            "slow_ops",
            Json::arr(snap.slow_ops.iter().map(|ev| {
                Json::obj([
                    ("t_us", Json::int64(ev.t_us)),
                    ("kind", Json::str(ev.kind.clone())),
                    ("shard", Json::int(ev.shard as usize)),
                    ("bytes", Json::int64(ev.bytes)),
                    ("duration_us", Json::int64(ev.duration_us)),
                    ("ok", Json::Bool(ev.ok)),
                ])
            })),
        ),
    ])
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Compact single-line rendering.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Json::obj([
            ("name", Json::str("net_throughput")),
            ("ok", Json::Bool(true)),
            ("count", Json::int(42)),
            ("rate", Json::Num(12.5)),
            ("nan", Json::Num(f64::NAN)),
            ("tags", Json::arr([Json::str("a"), Json::str("b")])),
            ("nested", Json::obj([("x", Json::Null)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"net_throughput","ok":true,"count":42,"rate":12.5,"nan":null,"tags":["a","b"],"nested":{"x":null}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn saturates_huge_ints() {
        assert_eq!(Json::int64(u64::MAX).to_string(), i64::MAX.to_string());
    }
}
