//! The stair-net wire protocol: versioned, length-prefixed binary frames
//! with request IDs for pipelining and per-response payload checksums.
//!
//! # Framing
//!
//! Every integer is little-endian. A **request** frame is
//!
//! ```text
//! [u32 len] [u64 request_id] [u8 opcode] [payload …]
//! ```
//!
//! where `len` counts everything after itself (so `9 + payload`). The
//! opcode byte's high bit is the **trace flag** ([`TRACE_FLAG`],
//! protocol v3): when set, the payload begins with a 16-byte span
//! context (`[u64 trace_id] [u64 span_id]`) naming the client span the
//! server's work should nest under, and the real payload follows. A
//! frame without the flag is byte-identical to protocol v2. A
//! **response** frame is
//!
//! ```text
//! [u32 len] [u64 request_id] [u8 status] [u32 checksum] [payload …]
//! ```
//!
//! with `status = 0` for an error (payload is a UTF-8 message) and
//! `status = opcode` of the request otherwise, and `checksum` the
//! Fletcher-32 of the payload bytes. Request IDs are chosen by the client
//! and echoed verbatim; responses may arrive in any order, which is what
//! makes pipelining across a shared connection possible.
//!
//! The HELLO exchange *negotiates* the protocol version: the client
//! sends magic `b"STAIRNET"` plus its version, the server answers with
//! `min(client version, server version)` and the store shape
//! ([`ServerInfo`]); either side rejects a peer older than
//! [`MIN_PROTOCOL_VERSION`]. Both sides then speak the agreed version —
//! in practice that only gates whether the client may set the trace
//! flag, since every v2 frame is valid v3.
//!
//! Version history: v1 shipped the nine base opcodes; v2 added the
//! [`Opcode::Batch`] frame (many ops in one request, one checksummed
//! response) with every v1 opcode unchanged on the wire, and later
//! grew the [`Opcode::Metrics`] frame (pull the server's metrics
//! snapshot) the same way — additive, so the version number did not
//! bump and older peers simply never send the new opcode. v3 added
//! wire-propagated trace context (the opcode high bit, above) and the
//! [`Opcode::Trace`] frame (pull the server's flight recorder); v2
//! peers are still accepted, and a frame without the trace flag is
//! byte-for-byte a v2 frame. v4 (the journal protocol) extends two
//! existing frames *for sessions that negotiated ≥ 4 only*: a BATCH
//! request opens with a client-chosen `[u64 batch_id]` (so a batch
//! reissued after a redial is identifiable server-side; journal replay
//! makes re-application safe), and each STATUS response shard carries
//! a trailing `[u8 clean_shutdown] [u64 replayed_records]`. On a v2/v3
//! session both frames keep their old byte layout, which is why the
//! encode/decode helpers below take the negotiated session version
//! (`*_v` variants; the unsuffixed forms assume [`PROTOCOL_VERSION`]).

use std::io::{Read, Write};

use stair_device::IoOp;
use stair_obs::{HistogramSnapshot, MetricsSnapshot, SpanCtx, TraceEvent, BUCKETS};
use stair_store::checksum::fletcher32;

use crate::NetError;

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 4;
/// Protocol version that introduced BATCH ids and the STATUS
/// crash-recovery fields (`clean_shutdown` / `replayed_records`).
pub const JOURNAL_SINCE_VERSION: u32 = 4;
/// Oldest peer version still accepted at HELLO time; the negotiated
/// session version is `min(client, server)`.
pub const MIN_PROTOCOL_VERSION: u32 = 2;
/// High bit of the request opcode byte (protocol v3): set when the
/// payload is prefixed with a `[u64 trace_id][u64 span_id]` span
/// context. Clear on every frame a v2 peer could send.
pub const TRACE_FLAG: u8 = 0x80;
/// Magic bytes opening a HELLO payload.
pub const MAGIC: &[u8; 8] = b"STAIRNET";
/// Upper bound on a frame body; anything larger is a protocol error
/// (prevents a corrupt length prefix from allocating gigabytes).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;
/// Largest data payload a single READ/WRITE request may carry; clients
/// split bigger transfers into multiple pipelined requests. A BATCH
/// frame's combined byte budget (write data plus requested read
/// lengths) honours the same cap.
pub const MAX_IO_BYTES: u32 = 4 * 1024 * 1024;
/// Most ops one BATCH frame may carry.
pub const MAX_BATCH_OPS: u32 = 4096;

/// Request opcodes (also used as the success status byte of responses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Version + geometry handshake; must be the first request.
    Hello = 1,
    /// Per-shard health and geometry snapshot.
    Status = 2,
    /// Read a byte span of the global block space.
    Read = 3,
    /// Write a byte span of the global block space.
    Write = 4,
    /// Persist checksum tables, health records, and device data.
    Flush = 5,
    /// Declare a device failed, or corrupt a sector burst, on one shard.
    Fail = 6,
    /// Run a scrub pass over every shard.
    Scrub = 7,
    /// Run an online repair pass over every shard.
    Repair = 8,
    /// Ask the server to stop accepting work and exit its run loop.
    Shutdown = 9,
    /// Submit many read/write ops as one frame (protocol v2).
    Batch = 10,
    /// Pull the server's metrics snapshot (protocol v2, additive).
    Metrics = 11,
    /// Pull the server's flight recorder (protocol v3).
    Trace = 12,
}

impl Opcode {
    /// Every opcode, in discriminant order. Keep in sync with the enum
    /// — stair-check (wire-constants) and the density test below both
    /// fail the build if a variant is missing here.
    pub const ALL: [Opcode; 12] = [
        Opcode::Hello,
        Opcode::Status,
        Opcode::Read,
        Opcode::Write,
        Opcode::Flush,
        Opcode::Fail,
        Opcode::Scrub,
        Opcode::Repair,
        Opcode::Shutdown,
        Opcode::Batch,
        Opcode::Metrics,
        Opcode::Trace,
    ];

    /// The lowercase wire name, used as the metric-name suffix for
    /// per-opcode counters (`srv.req.<name>`) and histograms.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Hello => "hello",
            Opcode::Status => "status",
            Opcode::Read => "read",
            Opcode::Write => "write",
            Opcode::Flush => "flush",
            Opcode::Fail => "fail",
            Opcode::Scrub => "scrub",
            Opcode::Repair => "repair",
            Opcode::Shutdown => "shutdown",
            Opcode::Batch => "batch",
            Opcode::Metrics => "metrics",
            Opcode::Trace => "trace",
        }
    }

    fn from_u8(b: u8) -> Result<Self, NetError> {
        Ok(match b {
            1 => Opcode::Hello,
            2 => Opcode::Status,
            3 => Opcode::Read,
            4 => Opcode::Write,
            5 => Opcode::Flush,
            6 => Opcode::Fail,
            7 => Opcode::Scrub,
            8 => Opcode::Repair,
            9 => Opcode::Shutdown,
            10 => Opcode::Batch,
            11 => Opcode::Metrics,
            12 => Opcode::Trace,
            other => return Err(NetError::Protocol(format!("unknown opcode {other}"))),
        })
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Handshake carrying the client's protocol version.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Health snapshot of every shard.
    Status,
    /// Read `len` bytes at global byte `offset`.
    Read {
        /// Global byte offset.
        offset: u64,
        /// Bytes to read (≤ [`MAX_IO_BYTES`]).
        len: u32,
    },
    /// Write `data` at global byte `offset`.
    Write {
        /// Global byte offset.
        offset: u64,
        /// Bytes to store (≤ [`MAX_IO_BYTES`]).
        data: Vec<u8>,
    },
    /// Persist everything to disk.
    Flush,
    /// Remove a device's backing file on one shard.
    FailDevice {
        /// Shard index.
        shard: u32,
        /// Device index within the shard.
        device: u32,
    },
    /// Flip bits in `len` consecutive sectors of one shard device
    /// (latent damage: detected only by a later read or scrub).
    CorruptSectors {
        /// Shard index.
        shard: u32,
        /// Device index within the shard.
        device: u32,
        /// Stripe index within the shard.
        stripe: u32,
        /// First row of the burst.
        row: u32,
        /// Rows in the burst.
        len: u32,
    },
    /// Scrub every shard with `threads` workers each.
    Scrub {
        /// Worker threads per shard.
        threads: u32,
    },
    /// Repair every shard with `threads` workers each.
    Repair {
        /// Worker threads per shard.
        threads: u32,
    },
    /// Stop the server.
    Shutdown,
    /// Execute `ops` as one scatter-gather batch; the response carries
    /// one reply per op, in submission order.
    Batch {
        /// Client-chosen batch id (protocol v4; 0 = unassigned, the
        /// only value a v2/v3 frame can carry). A client that redials
        /// mid-batch reissues the frame under the *same* id, so the
        /// server can count duplicate deliveries; re-applying the
        /// writes is safe regardless, because the store journals
        /// absolute post-images.
        batch_id: u64,
        /// The ops, in submission order, offsets in the global block
        /// space. Per-op spans and the combined byte budget are capped
        /// at [`MAX_IO_BYTES`], the count at [`MAX_BATCH_OPS`].
        ops: Vec<IoOp>,
    },
    /// Pull the server's metrics snapshot (request/connection counters,
    /// latency histograms, slow-op captures, plus the store's own
    /// counters aggregated across shards).
    Metrics,
    /// Pull the server's flight recorder: recently completed traces
    /// plus the slow/errored ones retained past the main ring's wrap.
    Trace,
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Hello { .. } => Opcode::Hello,
            Request::Status => Opcode::Status,
            Request::Read { .. } => Opcode::Read,
            Request::Write { .. } => Opcode::Write,
            Request::Flush => Opcode::Flush,
            Request::FailDevice { .. } | Request::CorruptSectors { .. } => Opcode::Fail,
            Request::Scrub { .. } => Opcode::Scrub,
            Request::Repair { .. } => Opcode::Repair,
            Request::Shutdown => Opcode::Shutdown,
            Request::Batch { .. } => Opcode::Batch,
            Request::Metrics => Opcode::Metrics,
            Request::Trace => Opcode::Trace,
        }
    }
}

/// One span of a pulled trace on the wire (the trace id lives on the
/// enclosing [`WireTrace`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSpan {
    /// Span id (nonzero).
    pub span_id: u64,
    /// Parent span id; 0 for a freshly minted root. A server-side
    /// process root carries the *client's* span id here, which is how
    /// the two halves of a cross-process tree stitch together.
    pub parent_id: u64,
    /// Declared span name (`client.submit`, `srv.queue`, …).
    pub name: String,
    /// Start in microseconds since the *recording process'* epoch —
    /// only comparable to other spans from the same process.
    pub start_us: u64,
    /// Duration in microseconds (epoch-free, comparable everywhere).
    pub duration_us: u64,
    /// Whether the spanned work succeeded.
    pub ok: bool,
    /// Bytes moved by the spanned work.
    pub bytes: u64,
}

/// One completed trace pulled from a flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireTrace {
    /// Trace id shared by every span of the request, on both sides of
    /// the wire.
    pub trace_id: u64,
    /// Span id of the recording process' root.
    pub root_span: u64,
    /// End-to-end duration of the root in microseconds.
    pub duration_us: u64,
    /// Whether the root succeeded.
    pub ok: bool,
    /// `true` when the recorder retained this trace in its
    /// slow/errored ring.
    pub slow: bool,
    /// The spans, in completion order (root last).
    pub spans: Vec<WireSpan>,
}

impl From<&stair_obs::TraceRecord> for WireTrace {
    fn from(t: &stair_obs::TraceRecord) -> Self {
        WireTrace {
            trace_id: t.trace_id,
            root_span: t.root_span,
            duration_us: t.duration_us,
            ok: t.ok,
            slow: t.slow,
            spans: t
                .spans
                .iter()
                .map(|s| WireSpan {
                    span_id: s.span_id,
                    parent_id: s.parent_id,
                    name: s.name.to_string(),
                    start_us: s.start_us,
                    duration_us: s.duration_us,
                    ok: s.ok,
                    bytes: s.bytes,
                })
                .collect(),
        }
    }
}

/// What the server tells a client at HELLO time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// The server's protocol version.
    pub version: u32,
    /// Number of shards behind the placement map.
    pub shards: u32,
    /// Total logical capacity in bytes across all shards.
    pub capacity: u64,
    /// Logical block size in bytes.
    pub block_size: u32,
    /// Blocks per placement range (= blocks per stripe; the placement
    /// unit that maps ranges round-robin onto shards).
    pub range_blocks: u32,
    /// The codec spec string every shard runs.
    pub codec: String,
}

impl ServerInfo {
    /// Reconstructs the server's placement map from the HELLO geometry
    /// — what lets a client group a batch by shard without a second
    /// round trip.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the announced geometry is degenerate
    /// (zero shards/blocks, or a capacity that does not tile into
    /// whole ranges).
    pub fn placement(&self) -> Result<crate::Placement, NetError> {
        let range_bytes = u64::from(self.range_blocks) * u64::from(self.block_size);
        if self.shards == 0 || range_bytes == 0 {
            return Err(NetError::Protocol(format!(
                "degenerate server geometry: {} shard(s) of {}-byte ranges",
                self.shards, range_bytes
            )));
        }
        let ranges_per_shard = self.capacity / range_bytes / u64::from(self.shards);
        if ranges_per_shard == 0
            || ranges_per_shard * range_bytes * u64::from(self.shards) != self.capacity
        {
            return Err(NetError::Protocol(format!(
                "server capacity {} does not tile into {} shard(s) of {}-byte ranges",
                self.capacity, self.shards, range_bytes
            )));
        }
        Ok(crate::Placement::new(
            self.shards as usize,
            self.range_blocks as usize,
            ranges_per_shard as usize,
            self.block_size as usize,
        ))
    }
}

/// One shard's health snapshot on the wire (mirrors
/// [`stair_store::StoreStatus`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireShardStatus {
    /// Codec spec string.
    pub codec: String,
    /// Logical capacity of the shard in bytes.
    pub capacity: u64,
    /// Logical block size in bytes.
    pub block_size: u32,
    /// Stripes in the shard.
    pub stripes: u32,
    /// Data blocks per stripe.
    pub blocks_per_stripe: u32,
    /// Devices currently failed.
    pub failed_devices: Vec<u32>,
    /// Devices currently rebuilding.
    pub rebuilding_devices: Vec<u32>,
    /// Known-damaged sectors awaiting repair.
    pub known_bad_sectors: u32,
    /// Whether the shard's previous close checkpointed its journal
    /// (protocol v4; a v2/v3 peer reports `true` vacuously).
    pub clean_shutdown: bool,
    /// Journal records replayed when the shard opened (protocol v4;
    /// a v2/v3 peer reports 0).
    pub replayed_records: u64,
}

/// Summary of a server-side write (mirrors [`stair_store::WriteReport`],
/// plus how many queued requests were coalesced into the same store
/// pass). When several requests share one pass, the pass counters
/// (`blocks_written` … `delta_updates`) are attributed to exactly one of
/// them and the rest carry zeros, so summing the summaries of a chunked
/// transfer yields exact totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteSummary {
    /// Bytes this request stored.
    pub bytes: u64,
    /// Logical blocks written (attributed once per coalesced pass).
    pub blocks_written: u64,
    /// Stripes touched (attributed once per coalesced pass).
    pub stripes_touched: u64,
    /// Full-stripe re-encodes (attributed once per coalesced pass).
    pub full_stripe_encodes: u64,
    /// Parity-delta updates (attributed once per coalesced pass).
    pub delta_updates: u64,
    /// Requests sharing the coalesced pass (1 = this one alone).
    pub coalesced: u32,
}

/// Aggregate scrub outcome across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubSummary {
    /// Stripes walked.
    pub stripes_scanned: u64,
    /// Sectors read and checksummed.
    pub sectors_verified: u64,
    /// Checksum mismatches found.
    pub mismatches: u64,
    /// Failed or rebuilding devices skipped (across shards).
    pub unavailable_devices: u64,
    /// Stale bad-sector records cleared.
    pub records_cleared: u64,
}

impl WriteSummary {
    /// Folds another chunk's summary into this one. `coalesced` takes
    /// the max (it counts requests sharing one store pass, not an
    /// additive total); everything else sums, so aggregating a chunked
    /// transfer yields exact totals.
    pub fn absorb(&mut self, w: &WriteSummary) {
        self.bytes += w.bytes;
        self.blocks_written += w.blocks_written;
        self.stripes_touched += w.stripes_touched;
        self.full_stripe_encodes += w.full_stripe_encodes;
        self.delta_updates += w.delta_updates;
        self.coalesced = self.coalesced.max(w.coalesced);
    }
}

impl ScrubSummary {
    /// `true` when every shard verified clean.
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.unavailable_devices == 0
    }
}

/// Aggregate repair outcome across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// Devices replaced and rebuilt (across shards).
    pub devices_replaced: u64,
    /// Stripes repaired.
    pub stripes_repaired: u64,
    /// Sectors rewritten.
    pub sectors_rewritten: u64,
    /// Stripes whose damage exceeded coverage.
    pub unrecoverable_stripes: u64,
}

impl RepairSummary {
    /// `true` when nothing was beyond coverage.
    pub fn complete(&self) -> bool {
        self.unrecoverable_stripes == 0
    }
}

/// One op's reply inside a [`Response::Batched`], same-index as the
/// request's op list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchReply {
    /// The bytes a read op returned.
    Data(Vec<u8>),
    /// What a write op did.
    Written(WriteSummary),
}

/// A parsed response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// HELLO answer.
    Hello(ServerInfo),
    /// STATUS answer: one entry per shard, in shard order.
    Status(Vec<WireShardStatus>),
    /// READ answer: the requested bytes.
    Data(Vec<u8>),
    /// WRITE answer.
    Written(WriteSummary),
    /// FLUSH answer.
    Flushed,
    /// FAIL answer.
    Failed,
    /// SCRUB answer.
    Scrubbed(ScrubSummary),
    /// REPAIR answer.
    Repaired(RepairSummary),
    /// BATCH answer: one reply per op, in submission order.
    Batched(Vec<BatchReply>),
    /// METRICS answer: the server's snapshot at the time of the request.
    Metrics(MetricsSnapshot),
    /// TRACE answer: completed traces (recent ring, then slow-ring
    /// entries the recent ring has already dropped).
    Traces(Vec<WireTrace>),
    /// SHUTDOWN answer (sent before the server exits).
    ShuttingDown,
    /// The request could not be executed.
    Error(String),
}

// ---------------------------------------------------------------------
// Byte-level encoding
// ---------------------------------------------------------------------

/// Append-only little-endian writer.
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }
    /// Length-prefixed string.
    fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }
    fn u32s(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
}

/// Bounds-checked little-endian reader.
struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| NetError::Protocol("truncated frame".into()))?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn str(&mut self) -> Result<String, NetError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NetError::Protocol("string field is not UTF-8".into()))
    }
    fn u32s(&mut self) -> Result<Vec<u32>, NetError> {
        let len = self.u32()? as usize;
        // Cap pre-allocation at what the remaining bytes could hold.
        if len > self.buf.len().saturating_sub(self.at) / 4 {
            return Err(NetError::Protocol("list length exceeds frame".into()));
        }
        (0..len).map(|_| self.u32()).collect()
    }
    fn finish(self) -> Result<(), NetError> {
        if self.at != self.buf.len() {
            return Err(NetError::Protocol(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

fn encode_request_payload(req: &Request, version: u32) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match req {
        Request::Hello { version } => {
            e.bytes(MAGIC);
            e.u32(*version);
        }
        Request::Status
        | Request::Flush
        | Request::Shutdown
        | Request::Metrics
        | Request::Trace => {}
        Request::Read { offset, len } => {
            e.u64(*offset);
            e.u32(*len);
        }
        Request::Write { offset, data } => {
            e.u64(*offset);
            e.u32(data.len() as u32);
            e.bytes(data);
        }
        Request::FailDevice { shard, device } => {
            e.u8(0);
            e.u32(*shard);
            e.u32(*device);
        }
        Request::CorruptSectors {
            shard,
            device,
            stripe,
            row,
            len,
        } => {
            e.u8(1);
            e.u32(*shard);
            e.u32(*device);
            e.u32(*stripe);
            e.u32(*row);
            e.u32(*len);
        }
        Request::Scrub { threads } | Request::Repair { threads } => e.u32(*threads),
        Request::Batch { batch_id, ops } => {
            if version >= JOURNAL_SINCE_VERSION {
                e.u64(*batch_id);
            }
            e.u32(ops.len() as u32);
            for op in ops {
                match op {
                    IoOp::Read { offset, len } => {
                        e.u8(0);
                        e.u64(*offset);
                        e.u32(*len as u32);
                    }
                    IoOp::Write { offset, data } => {
                        e.u8(1);
                        e.u64(*offset);
                        e.u32(data.len() as u32);
                        e.bytes(data);
                    }
                }
            }
        }
    }
    e.0
}

fn decode_request_payload(op: Opcode, payload: &[u8], version: u32) -> Result<Request, NetError> {
    let mut d = Dec::new(payload);
    let req = match op {
        Opcode::Hello => {
            let magic = d.take(MAGIC.len())?;
            if magic != MAGIC {
                return Err(NetError::Protocol("bad HELLO magic".into()));
            }
            Request::Hello { version: d.u32()? }
        }
        Opcode::Status => Request::Status,
        Opcode::Read => {
            let offset = d.u64()?;
            let len = d.u32()?;
            if len > MAX_IO_BYTES {
                return Err(NetError::Protocol(format!(
                    "READ of {len} bytes exceeds the {MAX_IO_BYTES}-byte request cap"
                )));
            }
            Request::Read { offset, len }
        }
        Opcode::Write => {
            let offset = d.u64()?;
            let len = d.u32()? as usize;
            let data = d.take(len)?.to_vec();
            if data.len() as u32 > MAX_IO_BYTES {
                return Err(NetError::Protocol(format!(
                    "WRITE of {len} bytes exceeds the {MAX_IO_BYTES}-byte request cap"
                )));
            }
            Request::Write { offset, data }
        }
        Opcode::Flush => Request::Flush,
        Opcode::Fail => match d.u8()? {
            0 => Request::FailDevice {
                shard: d.u32()?,
                device: d.u32()?,
            },
            1 => Request::CorruptSectors {
                shard: d.u32()?,
                device: d.u32()?,
                stripe: d.u32()?,
                row: d.u32()?,
                len: d.u32()?,
            },
            k => return Err(NetError::Protocol(format!("unknown FAIL kind {k}"))),
        },
        Opcode::Scrub => Request::Scrub { threads: d.u32()? },
        Opcode::Repair => Request::Repair { threads: d.u32()? },
        Opcode::Shutdown => Request::Shutdown,
        Opcode::Batch => {
            let batch_id = if version >= JOURNAL_SINCE_VERSION {
                d.u64()?
            } else {
                0
            };
            let count = d.u32()?;
            if count > MAX_BATCH_OPS {
                return Err(NetError::Protocol(format!(
                    "BATCH of {count} ops exceeds the {MAX_BATCH_OPS}-op cap"
                )));
            }
            // The combined byte budget (write payloads plus requested
            // read lengths) shares the single-request cap, so a batch
            // frame can never demand more memory than a READ/WRITE.
            let mut budget = 0u64;
            let mut ops = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let kind = d.u8()?;
                let offset = d.u64()?;
                let len = d.u32()?;
                if len > MAX_IO_BYTES {
                    return Err(NetError::Protocol(format!(
                        "batch op of {len} bytes exceeds the {MAX_IO_BYTES}-byte request cap"
                    )));
                }
                budget += u64::from(len);
                if budget > u64::from(MAX_IO_BYTES) {
                    return Err(NetError::Protocol(format!(
                        "batch byte budget {budget} exceeds the {MAX_IO_BYTES}-byte request cap"
                    )));
                }
                ops.push(match kind {
                    0 => IoOp::Read {
                        offset,
                        len: len as usize,
                    },
                    1 => IoOp::Write {
                        offset,
                        data: d.take(len as usize)?.to_vec(),
                    },
                    k => return Err(NetError::Protocol(format!("unknown batch op kind {k}"))),
                });
            }
            Request::Batch { batch_id, ops }
        }
        Opcode::Metrics => Request::Metrics,
        Opcode::Trace => Request::Trace,
    };
    d.finish()?;
    Ok(req)
}

/// Most slow-op records one METRICS response may carry (the server-side
/// journal retains far fewer; this bounds hostile frames).
const MAX_SLOW_OPS: u32 = 1024;
/// Most named metrics of one kind a METRICS response may carry.
const MAX_METRICS: u32 = 65_536;
/// Most traces one TRACE response may carry (the recorder rings retain
/// far fewer; this bounds hostile frames).
const MAX_TRACES: u32 = 1024;
/// Most spans one pulled trace may carry.
const MAX_TRACE_SPANS: u32 = 4096;

fn encode_metrics(e: &mut Enc, snap: &MetricsSnapshot) {
    e.u32(snap.counters.len() as u32);
    for (name, v) in &snap.counters {
        e.str(name);
        e.u64(*v);
    }
    e.u32(snap.gauges.len() as u32);
    for (name, v) in &snap.gauges {
        e.str(name);
        e.u64(*v as u64);
    }
    e.u32(snap.histograms.len() as u32);
    for (name, h) in &snap.histograms {
        e.str(name);
        e.u32(h.buckets.len() as u32);
        for &b in &h.buckets {
            e.u64(b);
        }
        e.u64(h.sum);
        e.u64(h.max);
    }
    e.u32(snap.slow_ops.len() as u32);
    for ev in &snap.slow_ops {
        e.u64(ev.t_us);
        e.str(&ev.kind);
        e.u32(ev.shard);
        e.u64(ev.bytes);
        e.u64(ev.duration_us);
        e.u8(ev.ok as u8);
    }
}

fn decode_metrics(d: &mut Dec<'_>) -> Result<MetricsSnapshot, NetError> {
    let mut snap = MetricsSnapshot::default();
    let counters = d.u32()?;
    if counters > MAX_METRICS {
        return Err(NetError::Protocol("metrics counter list too long".into()));
    }
    for _ in 0..counters {
        let name = d.str()?;
        snap.counters.push((name, d.u64()?));
    }
    let gauges = d.u32()?;
    if gauges > MAX_METRICS {
        return Err(NetError::Protocol("metrics gauge list too long".into()));
    }
    for _ in 0..gauges {
        let name = d.str()?;
        snap.gauges.push((name, d.u64()? as i64));
    }
    let hists = d.u32()?;
    if hists > MAX_METRICS {
        return Err(NetError::Protocol("metrics histogram list too long".into()));
    }
    for _ in 0..hists {
        let name = d.str()?;
        let buckets = d.u32()? as usize;
        if buckets > BUCKETS {
            return Err(NetError::Protocol(format!(
                "histogram with {buckets} buckets exceeds the {BUCKETS}-bucket cap"
            )));
        }
        let mut h = HistogramSnapshot::default();
        for _ in 0..buckets {
            h.buckets.push(d.u64()?);
        }
        h.sum = d.u64()?;
        h.max = d.u64()?;
        snap.histograms.push((name, h));
    }
    let slow = d.u32()?;
    if slow > MAX_SLOW_OPS {
        return Err(NetError::Protocol("metrics slow-op list too long".into()));
    }
    for _ in 0..slow {
        let t_us = d.u64()?;
        let kind = d.str()?;
        let shard = d.u32()?;
        let bytes = d.u64()?;
        let duration_us = d.u64()?;
        let ok = match d.u8()? {
            0 => false,
            1 => true,
            k => return Err(NetError::Protocol(format!("bad slow-op ok byte {k}"))),
        };
        snap.slow_ops.push(TraceEvent {
            t_us,
            kind,
            shard,
            bytes,
            duration_us,
            ok,
        });
    }
    Ok(snap)
}

fn encode_traces(e: &mut Enc, traces: &[WireTrace]) {
    e.u32(traces.len() as u32);
    for t in traces {
        e.u64(t.trace_id);
        e.u64(t.root_span);
        e.u64(t.duration_us);
        e.u8(t.ok as u8);
        e.u8(t.slow as u8);
        e.u32(t.spans.len() as u32);
        for s in &t.spans {
            e.u64(s.span_id);
            e.u64(s.parent_id);
            e.str(&s.name);
            e.u64(s.start_us);
            e.u64(s.duration_us);
            e.u8(s.ok as u8);
            e.u64(s.bytes);
        }
    }
}

fn decode_bool(d: &mut Dec<'_>, what: &str) -> Result<bool, NetError> {
    match d.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        k => Err(NetError::Protocol(format!("bad {what} bool byte {k}"))),
    }
}

fn decode_traces(d: &mut Dec<'_>) -> Result<Vec<WireTrace>, NetError> {
    let count = d.u32()?;
    if count > MAX_TRACES {
        return Err(NetError::Protocol("trace list too long".into()));
    }
    let mut traces = Vec::with_capacity(count.min(256) as usize);
    for _ in 0..count {
        let trace_id = d.u64()?;
        let root_span = d.u64()?;
        let duration_us = d.u64()?;
        let ok = decode_bool(d, "trace ok")?;
        let slow = decode_bool(d, "trace slow")?;
        let nspans = d.u32()?;
        if nspans > MAX_TRACE_SPANS {
            return Err(NetError::Protocol("trace span list too long".into()));
        }
        let mut spans = Vec::with_capacity(nspans.min(256) as usize);
        for _ in 0..nspans {
            spans.push(WireSpan {
                span_id: d.u64()?,
                parent_id: d.u64()?,
                name: d.str()?,
                start_us: d.u64()?,
                duration_us: d.u64()?,
                ok: decode_bool(d, "span ok")?,
                bytes: d.u64()?,
            });
        }
        traces.push(WireTrace {
            trace_id,
            root_span,
            duration_us,
            ok,
            slow,
            spans,
        });
    }
    Ok(traces)
}

fn encode_response_payload(resp: &Response, version: u32) -> (u8, Vec<u8>) {
    let mut e = Enc(Vec::new());
    let status = match resp {
        Response::Error(msg) => {
            e.bytes(msg.as_bytes());
            0
        }
        Response::Hello(info) => {
            e.u32(info.version);
            e.u32(info.shards);
            e.u64(info.capacity);
            e.u32(info.block_size);
            e.u32(info.range_blocks);
            e.str(&info.codec);
            Opcode::Hello as u8
        }
        Response::Status(shards) => {
            e.u32(shards.len() as u32);
            for s in shards {
                e.str(&s.codec);
                e.u64(s.capacity);
                e.u32(s.block_size);
                e.u32(s.stripes);
                e.u32(s.blocks_per_stripe);
                e.u32s(&s.failed_devices);
                e.u32s(&s.rebuilding_devices);
                e.u32(s.known_bad_sectors);
                if version >= JOURNAL_SINCE_VERSION {
                    e.u8(s.clean_shutdown as u8);
                    e.u64(s.replayed_records);
                }
            }
            Opcode::Status as u8
        }
        Response::Data(data) => {
            e.bytes(data);
            Opcode::Read as u8
        }
        Response::Written(w) => {
            e.u64(w.bytes);
            e.u64(w.blocks_written);
            e.u64(w.stripes_touched);
            e.u64(w.full_stripe_encodes);
            e.u64(w.delta_updates);
            e.u32(w.coalesced);
            Opcode::Write as u8
        }
        Response::Flushed => Opcode::Flush as u8,
        Response::Failed => Opcode::Fail as u8,
        Response::Batched(replies) => {
            e.u32(replies.len() as u32);
            for reply in replies {
                match reply {
                    BatchReply::Data(data) => {
                        e.u8(0);
                        e.u32(data.len() as u32);
                        e.bytes(data);
                    }
                    BatchReply::Written(w) => {
                        e.u8(1);
                        e.u64(w.bytes);
                        e.u64(w.blocks_written);
                        e.u64(w.stripes_touched);
                        e.u64(w.full_stripe_encodes);
                        e.u64(w.delta_updates);
                        e.u32(w.coalesced);
                    }
                }
            }
            Opcode::Batch as u8
        }
        Response::Metrics(snap) => {
            encode_metrics(&mut e, snap);
            Opcode::Metrics as u8
        }
        Response::Traces(traces) => {
            encode_traces(&mut e, traces);
            Opcode::Trace as u8
        }
        Response::Scrubbed(s) => {
            e.u64(s.stripes_scanned);
            e.u64(s.sectors_verified);
            e.u64(s.mismatches);
            e.u64(s.unavailable_devices);
            e.u64(s.records_cleared);
            Opcode::Scrub as u8
        }
        Response::Repaired(r) => {
            e.u64(r.devices_replaced);
            e.u64(r.stripes_repaired);
            e.u64(r.sectors_rewritten);
            e.u64(r.unrecoverable_stripes);
            Opcode::Repair as u8
        }
        Response::ShuttingDown => Opcode::Shutdown as u8,
    };
    (status, e.0)
}

fn decode_response_payload(status: u8, payload: &[u8], version: u32) -> Result<Response, NetError> {
    if status == 0 {
        return Ok(Response::Error(
            String::from_utf8_lossy(payload).into_owned(),
        ));
    }
    let mut d = Dec::new(payload);
    let resp = match Opcode::from_u8(status)? {
        Opcode::Hello => Response::Hello(ServerInfo {
            version: d.u32()?,
            shards: d.u32()?,
            capacity: d.u64()?,
            block_size: d.u32()?,
            range_blocks: d.u32()?,
            codec: d.str()?,
        }),
        Opcode::Status => {
            let count = d.u32()? as usize;
            let mut shards = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let mut s = WireShardStatus {
                    codec: d.str()?,
                    capacity: d.u64()?,
                    block_size: d.u32()?,
                    stripes: d.u32()?,
                    blocks_per_stripe: d.u32()?,
                    failed_devices: d.u32s()?,
                    rebuilding_devices: d.u32s()?,
                    known_bad_sectors: d.u32()?,
                    // A pre-journal peer has nothing to report:
                    // vacuously clean, nothing replayed.
                    clean_shutdown: true,
                    replayed_records: 0,
                };
                if version >= JOURNAL_SINCE_VERSION {
                    s.clean_shutdown = decode_bool(&mut d, "clean_shutdown")?;
                    s.replayed_records = d.u64()?;
                }
                shards.push(s);
            }
            Response::Status(shards)
        }
        Opcode::Read => {
            let rest = d.buf.len() - d.at;
            Response::Data(d.take(rest)?.to_vec())
        }
        Opcode::Write => Response::Written(WriteSummary {
            bytes: d.u64()?,
            blocks_written: d.u64()?,
            stripes_touched: d.u64()?,
            full_stripe_encodes: d.u64()?,
            delta_updates: d.u64()?,
            coalesced: d.u32()?,
        }),
        Opcode::Flush => Response::Flushed,
        Opcode::Fail => Response::Failed,
        Opcode::Batch => {
            let count = d.u32()?;
            if count > MAX_BATCH_OPS {
                return Err(NetError::Protocol(format!(
                    "BATCH response of {count} replies exceeds the {MAX_BATCH_OPS}-op cap"
                )));
            }
            let mut replies = Vec::with_capacity(count as usize);
            for _ in 0..count {
                replies.push(match d.u8()? {
                    0 => {
                        let len = d.u32()? as usize;
                        BatchReply::Data(d.take(len)?.to_vec())
                    }
                    1 => BatchReply::Written(WriteSummary {
                        bytes: d.u64()?,
                        blocks_written: d.u64()?,
                        stripes_touched: d.u64()?,
                        full_stripe_encodes: d.u64()?,
                        delta_updates: d.u64()?,
                        coalesced: d.u32()?,
                    }),
                    k => return Err(NetError::Protocol(format!("unknown batch reply kind {k}"))),
                });
            }
            Response::Batched(replies)
        }
        Opcode::Metrics => Response::Metrics(decode_metrics(&mut d)?),
        Opcode::Trace => Response::Traces(decode_traces(&mut d)?),
        Opcode::Scrub => Response::Scrubbed(ScrubSummary {
            stripes_scanned: d.u64()?,
            sectors_verified: d.u64()?,
            mismatches: d.u64()?,
            unavailable_devices: d.u64()?,
            records_cleared: d.u64()?,
        }),
        Opcode::Repair => Response::Repaired(RepairSummary {
            devices_replaced: d.u64()?,
            stripes_repaired: d.u64()?,
            sectors_rewritten: d.u64()?,
            unrecoverable_stripes: d.u64()?,
        }),
        Opcode::Shutdown => Response::ShuttingDown,
    };
    d.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

fn read_frame(stream: &mut impl Read) -> Result<Vec<u8>, NetError> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(NetError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Writes one request frame with no trace context at the current
/// [`PROTOCOL_VERSION`] — byte-identical to a protocol v2 frame for
/// every request except a BATCH carrying an id.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_request(stream: &mut impl Write, id: u64, req: &Request) -> Result<(), NetError> {
    write_request_traced_v(stream, id, req, None, PROTOCOL_VERSION)
}

/// Writes one request frame at the current [`PROTOCOL_VERSION`],
/// optionally carrying span context (sets [`TRACE_FLAG`] on the opcode
/// byte and prefixes the payload with `[u64 trace_id][u64 span_id]`).
/// Only send context to a peer that negotiated protocol ≥ 3.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_request_traced(
    stream: &mut impl Write,
    id: u64,
    req: &Request,
    ctx: Option<SpanCtx>,
) -> Result<(), NetError> {
    write_request_traced_v(stream, id, req, ctx, PROTOCOL_VERSION)
}

/// [`write_request_traced`] at an explicit negotiated session version
/// — what a client holding a v2/v3 session uses so its BATCH frames
/// keep the pre-v4 layout.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_request_traced_v(
    stream: &mut impl Write,
    id: u64,
    req: &Request,
    ctx: Option<SpanCtx>,
    version: u32,
) -> Result<(), NetError> {
    // No-op unless the caller is inside a recorded span (only clients
    // write requests, so this is the client-side serialization cost).
    let payload = {
        let _enc = stair_obs::trace::span(stair_obs::trace::names::CLIENT_ENCODE);
        encode_request_payload(req, version)
    };
    let prefix = if ctx.is_some() { 16 } else { 0 };
    let mut frame = Vec::with_capacity(4 + 9 + prefix + payload.len());
    frame.extend_from_slice(&(9 + (prefix + payload.len()) as u32).to_le_bytes());
    frame.extend_from_slice(&id.to_le_bytes());
    match ctx {
        Some(ctx) => {
            frame.push(req.opcode() as u8 | TRACE_FLAG);
            frame.extend_from_slice(&ctx.trace_id.to_le_bytes());
            frame.extend_from_slice(&ctx.span_id.to_le_bytes());
        }
        None => frame.push(req.opcode() as u8),
    }
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)?;
    Ok(())
}

/// Reads one request frame, returning `(request_id, request)` and
/// discarding any trace context — for callers that do not trace.
///
/// # Errors
///
/// Socket errors, truncated frames, unknown opcodes, or oversized
/// requests are all rejected.
pub fn read_request(stream: &mut impl Read) -> Result<(u64, Request), NetError> {
    let (id, req, _) = read_request_traced(stream)?;
    Ok((id, req))
}

/// Reads one request frame at the current [`PROTOCOL_VERSION`],
/// returning `(request_id, request, span context)` — the context is
/// `Some` exactly when the sender set [`TRACE_FLAG`].
///
/// # Errors
///
/// Socket errors, truncated frames, unknown opcodes, or oversized
/// requests are all rejected.
pub fn read_request_traced(
    stream: &mut impl Read,
) -> Result<(u64, Request, Option<SpanCtx>), NetError> {
    read_request_traced_v(stream, PROTOCOL_VERSION)
}

/// [`read_request_traced`] at an explicit negotiated session version —
/// what the server's reader uses after HELLO so a v2/v3 peer's BATCH
/// frames parse under their original layout.
///
/// # Errors
///
/// Socket errors, truncated frames, unknown opcodes, or oversized
/// requests are all rejected.
pub fn read_request_traced_v(
    stream: &mut impl Read,
    version: u32,
) -> Result<(u64, Request, Option<SpanCtx>), NetError> {
    let body = read_frame(stream)?;
    let mut d = Dec::new(&body);
    let id = d.u64()?;
    let op_byte = d.u8()?;
    let op = Opcode::from_u8(op_byte & !TRACE_FLAG)?;
    let ctx = if op_byte & TRACE_FLAG != 0 {
        Some(SpanCtx {
            trace_id: d.u64()?,
            span_id: d.u64()?,
        })
    } else {
        None
    };
    let payload = &body[d.at..];
    Ok((id, decode_request_payload(op, payload, version)?, ctx))
}

/// Writes one response frame (status byte + Fletcher-32 of the
/// payload) at the current [`PROTOCOL_VERSION`].
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response(stream: &mut impl Write, id: u64, resp: &Response) -> Result<(), NetError> {
    write_response_v(stream, id, resp, PROTOCOL_VERSION)
}

/// [`write_response`] at an explicit negotiated session version — what
/// the server uses so a v2/v3 peer receives STATUS shards without the
/// v4 trailing fields.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response_v(
    stream: &mut impl Write,
    id: u64,
    resp: &Response,
    version: u32,
) -> Result<(), NetError> {
    let (status, payload) = encode_response_payload(resp, version);
    let sum = fletcher32(&payload);
    let mut frame = Vec::with_capacity(4 + 13 + payload.len());
    frame.extend_from_slice(&(13 + payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&id.to_le_bytes());
    frame.push(status);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)?;
    Ok(())
}

/// Normalizes a checksum-verified response: a [`Response::Error`]
/// becomes [`NetError::Remote`], anything else passes through. The one
/// post-verification step shared by the client's simple (`call`) and
/// pipelined paths, so server-reported failures cannot be interpreted
/// differently on the two.
///
/// # Errors
///
/// [`NetError::Remote`] carrying the server's message.
pub fn ok_or_remote(resp: Response) -> Result<Response, NetError> {
    match resp {
        Response::Error(msg) => Err(NetError::Remote(msg)),
        resp => Ok(resp),
    }
}

/// Reads one response frame at the current [`PROTOCOL_VERSION`],
/// verifying the payload checksum. Returns `(request_id, response)`.
///
/// # Errors
///
/// Socket errors, malformed frames, and checksum mismatches.
pub fn read_response(stream: &mut impl Read) -> Result<(u64, Response), NetError> {
    read_response_v(stream, PROTOCOL_VERSION)
}

/// [`read_response`] at an explicit negotiated session version — what
/// a client holding a v2/v3 session uses to parse STATUS responses
/// under their original layout.
///
/// # Errors
///
/// Socket errors, malformed frames, and checksum mismatches.
pub fn read_response_v(stream: &mut impl Read, version: u32) -> Result<(u64, Response), NetError> {
    let body = read_frame(stream)?;
    let mut d = Dec::new(&body);
    let id = d.u64()?;
    let status = d.u8()?;
    let expected = d.u32()?;
    let payload = &body[d.at..];
    let actual = fletcher32(payload);
    if actual != expected {
        return Err(NetError::Checksum { expected, actual });
    }
    // Covers parsing only, not the socket wait above — a trace must not
    // double-count the server's time under a client-side span.
    let _dec = stair_obs::trace::span(stair_obs::trace::names::CLIENT_DECODE);
    Ok((id, decode_response_payload(status, payload, version)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut wire = Vec::new();
        write_request(&mut wire, 7, &req).unwrap();
        let (id, back) = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!(id, 7);
        assert_eq!(back, req);
    }

    fn round_trip_response(resp: Response) {
        let mut wire = Vec::new();
        write_response(&mut wire, 99, &resp).unwrap();
        let (id, back) = read_response(&mut wire.as_slice()).unwrap();
        assert_eq!(id, 99);
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello {
            version: PROTOCOL_VERSION,
        });
        round_trip_request(Request::Status);
        round_trip_request(Request::Read {
            offset: 123456789,
            len: 4096,
        });
        round_trip_request(Request::Write {
            offset: 42,
            data: (0..=255).collect(),
        });
        round_trip_request(Request::Flush);
        round_trip_request(Request::FailDevice {
            shard: 3,
            device: 1,
        });
        round_trip_request(Request::CorruptSectors {
            shard: 0,
            device: 7,
            stripe: 5,
            row: 2,
            len: 3,
        });
        round_trip_request(Request::Scrub { threads: 4 });
        round_trip_request(Request::Repair { threads: 2 });
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Batch {
            batch_id: 0xFEED_F00D_0000_0042,
            ops: vec![
                IoOp::Read {
                    offset: 512,
                    len: 64,
                },
                IoOp::Write {
                    offset: 0,
                    data: (0..=127).collect(),
                },
                IoOp::Read { offset: 9, len: 0 },
            ],
        });
        round_trip_request(Request::Batch {
            batch_id: 0,
            ops: vec![],
        });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Trace);
    }

    #[test]
    fn traced_frames_round_trip_their_span_context() {
        let req = Request::Batch {
            batch_id: 3,
            ops: vec![IoOp::Read { offset: 64, len: 8 }],
        };
        let ctx = SpanCtx {
            trace_id: 0xDEAD_BEEF_0000_0001,
            span_id: 0x1234_5678_9ABC_DEF0,
        };
        let mut wire = Vec::new();
        write_request_traced(&mut wire, 55, &req, Some(ctx)).unwrap();
        let (id, back, got) = read_request_traced(&mut wire.as_slice()).unwrap();
        assert_eq!(id, 55);
        assert_eq!(back, req);
        assert_eq!(got, Some(ctx));
    }

    #[test]
    fn untraced_frames_are_byte_identical_to_v2() {
        // write_request (and write_request_traced with None) must emit
        // exactly the v2 encoding: no flag bit, no context prefix.
        let req = Request::Read {
            offset: 0x0102_0304_0506_0708,
            len: 4096,
        };
        let mut wire = Vec::new();
        write_request(&mut wire, 0x0A0B_0C0D_0E0F_1011, &req).unwrap();
        let mut expected = Vec::new();
        expected.extend_from_slice(&21u32.to_le_bytes()); // 9 + 12
        expected.extend_from_slice(&0x0A0B_0C0D_0E0F_1011u64.to_le_bytes());
        expected.push(3); // Opcode::Read, high bit clear
        expected.extend_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        expected.extend_from_slice(&4096u32.to_le_bytes());
        assert_eq!(wire, expected);

        let mut traced_none = Vec::new();
        write_request_traced(&mut traced_none, 0x0A0B_0C0D_0E0F_1011, &req, None).unwrap();
        assert_eq!(traced_none, expected);

        // And a v2-style reader (read_request) accepts it unchanged.
        let (id, back) = read_request(&mut wire.as_slice()).unwrap();
        assert_eq!((id, back), (0x0A0B_0C0D_0E0F_1011, req));
    }

    #[test]
    fn trace_responses_round_trip() {
        round_trip_response(Response::Traces(vec![]));
        round_trip_response(Response::Traces(vec![
            WireTrace {
                trace_id: 7,
                root_span: 11,
                duration_us: 1234,
                ok: true,
                slow: false,
                spans: vec![
                    WireSpan {
                        span_id: 12,
                        parent_id: 11,
                        name: "store.stripe".into(),
                        start_us: 10,
                        duration_us: 900,
                        ok: true,
                        bytes: 4096,
                    },
                    WireSpan {
                        span_id: 11,
                        parent_id: 0,
                        name: "client.submit".into(),
                        start_us: 0,
                        duration_us: 1234,
                        ok: true,
                        bytes: 8192,
                    },
                ],
            },
            WireTrace {
                trace_id: 8,
                root_span: 21,
                duration_us: 50_000,
                ok: false,
                slow: true,
                spans: vec![WireSpan {
                    span_id: 21,
                    parent_id: 77,
                    name: "srv.request".into(),
                    start_us: 3,
                    duration_us: 50_000,
                    ok: false,
                    bytes: 0,
                }],
            },
        ]));
    }

    #[test]
    fn trace_decode_caps_hostile_lengths() {
        // A response claiming an absurd trace count is refused before
        // any allocation happens.
        let mut e = Enc(Vec::new());
        e.u32(MAX_TRACES + 1);
        let payload = e.0;
        let sum = fletcher32(&payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(13 + payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&5u64.to_le_bytes());
        frame.push(Opcode::Trace as u8);
        frame.extend_from_slice(&sum.to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(matches!(
            read_response(&mut frame.as_slice()),
            Err(NetError::Protocol(_))
        ));

        // Same for a hostile per-trace span count.
        let mut e = Enc(Vec::new());
        e.u32(1);
        e.u64(1); // trace_id
        e.u64(2); // root_span
        e.u64(3); // duration
        e.u8(1); // ok
        e.u8(0); // slow
        e.u32(MAX_TRACE_SPANS + 1);
        let payload = e.0;
        let sum = fletcher32(&payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(13 + payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&5u64.to_le_bytes());
        frame.push(Opcode::Trace as u8);
        frame.extend_from_slice(&sum.to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(matches!(
            read_response(&mut frame.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn metrics_responses_round_trip() {
        round_trip_response(Response::Metrics(MetricsSnapshot::default()));
        let mut snap = MetricsSnapshot::default();
        snap.add_counter("srv.req.read", 17);
        snap.add_counter("store.stripe_locks", 3);
        snap.add_gauge("srv.connections", -1);
        snap.add_histogram(
            "srv.lat_us.read",
            &HistogramSnapshot {
                buckets: vec![0, 2, 5, 1],
                sum: 44,
                max: 7,
            },
        );
        snap.slow_ops.push(TraceEvent {
            t_us: 123_456,
            kind: "write".into(),
            shard: 2,
            bytes: 4096,
            duration_us: 15_000,
            ok: true,
        });
        snap.slow_ops.push(TraceEvent {
            t_us: 200_000,
            kind: "scrub".into(),
            shard: 0,
            bytes: 0,
            duration_us: 99_000,
            ok: false,
        });
        round_trip_response(Response::Metrics(snap));
    }

    #[test]
    fn metrics_decode_caps_hostile_lengths() {
        // A histogram claiming more than BUCKETS buckets is refused
        // before any allocation happens.
        let mut e = Enc(Vec::new());
        e.u32(0); // counters
        e.u32(0); // gauges
        e.u32(1); // histograms
        e.str("h");
        e.u32(BUCKETS as u32 + 1);
        let payload = e.0;
        let sum = fletcher32(&payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(13 + payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&5u64.to_le_bytes());
        frame.push(Opcode::Metrics as u8);
        frame.extend_from_slice(&sum.to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(matches!(
            read_response(&mut frame.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn batch_caps_are_enforced_at_decode_time() {
        // Op count over the cap.
        let ops = vec![IoOp::Read { offset: 0, len: 1 }; MAX_BATCH_OPS as usize + 1];
        let mut wire = Vec::new();
        write_request(&mut wire, 1, &Request::Batch { batch_id: 0, ops }).unwrap();
        assert!(matches!(
            read_request(&mut wire.as_slice()),
            Err(NetError::Protocol(_))
        ));
        // Combined byte budget over the cap, even though each op is
        // individually inside it.
        let ops = vec![
            IoOp::Read {
                offset: 0,
                len: MAX_IO_BYTES as usize / 2 + 1,
            };
            2
        ];
        let mut wire = Vec::new();
        write_request(&mut wire, 1, &Request::Batch { batch_id: 0, ops }).unwrap();
        assert!(matches!(
            read_request(&mut wire.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Hello(ServerInfo {
            version: 1,
            shards: 4,
            capacity: 1 << 30,
            block_size: 512,
            range_blocks: 20,
            codec: "stair:8,4,2,1-1-2".into(),
        }));
        round_trip_response(Response::Status(vec![WireShardStatus {
            codec: "sd:8,4,2,3".into(),
            capacity: 999,
            block_size: 128,
            stripes: 12,
            blocks_per_stripe: 17,
            failed_devices: vec![1, 5],
            rebuilding_devices: vec![],
            known_bad_sectors: 2,
            clean_shutdown: false,
            replayed_records: 31,
        }]));
        round_trip_response(Response::Data(vec![0xAB; 1000]));
        round_trip_response(Response::Written(WriteSummary {
            bytes: 512,
            blocks_written: 4,
            stripes_touched: 1,
            full_stripe_encodes: 0,
            delta_updates: 4,
            coalesced: 2,
        }));
        round_trip_response(Response::Flushed);
        round_trip_response(Response::Failed);
        round_trip_response(Response::Scrubbed(ScrubSummary {
            stripes_scanned: 10,
            sectors_verified: 320,
            mismatches: 1,
            unavailable_devices: 0,
            records_cleared: 0,
        }));
        round_trip_response(Response::Repaired(RepairSummary {
            devices_replaced: 1,
            stripes_repaired: 8,
            sectors_rewritten: 32,
            unrecoverable_stripes: 0,
        }));
        round_trip_response(Response::Batched(vec![
            BatchReply::Data(vec![7; 96]),
            BatchReply::Written(WriteSummary {
                bytes: 64,
                blocks_written: 1,
                stripes_touched: 1,
                full_stripe_encodes: 0,
                delta_updates: 1,
                coalesced: 1,
            }),
            BatchReply::Data(Vec::new()),
        ]));
        round_trip_response(Response::Batched(vec![]));
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error("it broke".into()));
    }

    #[test]
    fn v3_sessions_keep_the_pre_journal_batch_and_status_layout() {
        // A BATCH written at session version 3 carries no batch id and
        // is byte-identical to what a v3 build produced; decoding it at
        // v3 yields batch_id 0.
        let req = Request::Batch {
            batch_id: 77, // dropped on the wire at v3
            ops: vec![IoOp::Read {
                offset: 512,
                len: 8,
            }],
        };
        let mut v3_wire = Vec::new();
        write_request_traced_v(&mut v3_wire, 9, &req, None, 3).unwrap();
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&(9 + 4 + 13u32).to_le_bytes()); // count + one read op
        legacy.extend_from_slice(&9u64.to_le_bytes());
        legacy.push(Opcode::Batch as u8);
        legacy.extend_from_slice(&1u32.to_le_bytes());
        legacy.push(0); // read
        legacy.extend_from_slice(&512u64.to_le_bytes());
        legacy.extend_from_slice(&8u32.to_le_bytes());
        assert_eq!(v3_wire, legacy);
        let (_, back, _) = read_request_traced_v(&mut v3_wire.as_slice(), 3).unwrap();
        assert_eq!(
            back,
            Request::Batch {
                batch_id: 0,
                ops: vec![IoOp::Read {
                    offset: 512,
                    len: 8
                }],
            }
        );
        // At v4 the same request round-trips its id.
        let mut v4_wire = Vec::new();
        write_request_traced_v(&mut v4_wire, 9, &req, None, 4).unwrap();
        assert_eq!(v4_wire.len(), v3_wire.len() + 8);
        let (_, back, _) = read_request_traced_v(&mut v4_wire.as_slice(), 4).unwrap();
        assert_eq!(back, req);

        // A STATUS response written at v3 drops the journal fields and
        // decodes to the vacuous defaults (clean, nothing replayed).
        let shard = WireShardStatus {
            codec: "rs:6,4,2".into(),
            capacity: 4096,
            block_size: 64,
            stripes: 4,
            blocks_per_stripe: 16,
            failed_devices: vec![],
            rebuilding_devices: vec![],
            known_bad_sectors: 0,
            clean_shutdown: false,
            replayed_records: 12,
        };
        let mut wire = Vec::new();
        write_response_v(&mut wire, 5, &Response::Status(vec![shard.clone()]), 3).unwrap();
        let (_, back) = read_response_v(&mut wire.as_slice(), 3).unwrap();
        let expected = WireShardStatus {
            clean_shutdown: true,
            replayed_records: 0,
            ..shard.clone()
        };
        assert_eq!(back, Response::Status(vec![expected]));
        // And at v4 the crash-recovery fields survive the trip.
        let mut wire = Vec::new();
        write_response_v(&mut wire, 5, &Response::Status(vec![shard.clone()]), 4).unwrap();
        let (_, back) = read_response_v(&mut wire.as_slice(), 4).unwrap();
        assert_eq!(back, Response::Status(vec![shard]));
    }

    #[test]
    fn ok_or_remote_maps_only_error_responses() {
        match ok_or_remote(Response::Error("disk on fire".into())) {
            Err(NetError::Remote(msg)) => assert_eq!(msg, "disk on fire"),
            other => panic!("expected Remote, got {other:?}"),
        }
        assert!(matches!(
            ok_or_remote(Response::Data(vec![1, 2])),
            Ok(Response::Data(_))
        ));
        assert!(matches!(
            ok_or_remote(Response::Flushed),
            Ok(Response::Flushed)
        ));
    }

    #[test]
    fn write_summaries_absorb_chunked_totals() {
        let mut total = WriteSummary {
            bytes: 100,
            blocks_written: 4,
            stripes_touched: 1,
            full_stripe_encodes: 1,
            delta_updates: 0,
            coalesced: 3,
        };
        total.absorb(&WriteSummary {
            bytes: 28,
            blocks_written: 1,
            stripes_touched: 1,
            full_stripe_encodes: 0,
            delta_updates: 1,
            coalesced: 2,
        });
        assert_eq!(
            total,
            WriteSummary {
                bytes: 128,
                blocks_written: 5,
                stripes_touched: 2,
                full_stripe_encodes: 1,
                delta_updates: 1,
                coalesced: 3,
            }
        );
    }

    #[test]
    fn corrupted_response_payload_fails_checksum() {
        let mut wire = Vec::new();
        write_response(&mut wire, 1, &Response::Data(vec![1, 2, 3, 4])).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        match read_response(&mut wire.as_slice()) {
            Err(NetError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let mut wire = Vec::new();
        write_request(&mut wire, 1, &Request::Status).unwrap();
        assert!(matches!(
            read_request(&mut wire[..wire.len() - 1].as_ref()),
            Err(NetError::Io(_))
        ));
        let huge = (MAX_FRAME + 1).to_le_bytes().to_vec();
        assert!(matches!(
            read_request(&mut huge.as_slice()),
            Err(NetError::Protocol(_))
        ));
        // A READ larger than the request cap is refused at decode time.
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            1,
            &Request::Read {
                offset: 0,
                len: MAX_IO_BYTES + 1,
            },
        )
        .unwrap();
        assert!(matches!(
            read_request(&mut wire.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // Hand-build a STATUS request frame with an extra byte.
        let mut frame = Vec::new();
        frame.extend_from_slice(&10u32.to_le_bytes());
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.push(Opcode::Status as u8);
        frame.push(0xEE);
        assert!(matches!(
            read_request(&mut frame.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn bad_hello_magic_is_rejected() {
        let mut frame = Vec::new();
        let payload = [b'X'; 12];
        frame.extend_from_slice(&(9 + payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.push(Opcode::Hello as u8);
        frame.extend_from_slice(&payload);
        assert!(matches!(
            read_request(&mut frame.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn opcode_table_is_dense_and_collision_free() {
        let mut seen = std::collections::BTreeSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op as u8), "duplicate discriminant for {op:?}");
            // Round trip: the discriminant decodes back to the variant.
            assert_eq!(Opcode::from_u8(op as u8).unwrap(), op);
        }
        // Dense from 1 with no gaps: every byte in 1..=N decodes, and
        // everything outside is rejected.
        let n = Opcode::ALL.len() as u8;
        assert_eq!(*seen.iter().min().unwrap(), 1);
        assert_eq!(*seen.iter().max().unwrap(), n);
        assert_eq!(seen.len(), n as usize);
        assert!(Opcode::from_u8(0).is_err());
        assert!(Opcode::from_u8(n + 1).is_err());
    }

    #[test]
    fn opcode_wire_names_are_unique() {
        let mut names = std::collections::BTreeSet::new();
        for op in Opcode::ALL {
            assert!(names.insert(op.name()), "duplicate wire name for {op:?}");
        }
    }
}
