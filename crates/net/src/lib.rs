//! `stair-net`: a sharded network storage service over codec-generic
//! stripe stores.
//!
//! PRs 1–2 built a fault-tolerant [`stair_store::StripeStore`] that
//! reproduces the paper's device+sector failure coverage on a real I/O
//! path, but only in-process. This crate is the scale-out layer the
//! ROADMAP's "heavy traffic" north star requires:
//!
//! * **[`ShardSet`]** — `k` equally-shaped stripe stores under one root,
//!   glued into a single logical block space by a deterministic
//!   round-robin [`Placement`] map (one placement range = one stripe);
//! * **[`protocol`]** — a versioned, length-prefixed binary protocol
//!   (HELLO/STATUS/READ/WRITE/FLUSH/FAIL/SCRUB/REPAIR/SHUTDOWN) with
//!   request IDs for pipelining and Fletcher-32 checksums on every
//!   response payload;
//! * **[`Server`]** — a multi-threaded TCP service on `std::net`: one
//!   reader thread per connection, a fixed worker pool, and per-shard
//!   write batching so adjacent small writes coalesce into a single
//!   parity-delta pass in the store;
//! * **[`Client`] / [`StripedClient`]** — blocking, connection-reusing
//!   clients; the striped variant fans one transfer out over several
//!   connections;
//! * **[`json`]** — a dependency-free JSON builder for the `--json`
//!   surfaces of the CLI and benchmarks;
//! * **[`open_device`] / [`open_admin`]** — the registry turning a
//!   `stair_device::DeviceSpec` (`file:…`, `shards:…`, `tcp:…`) into a
//!   live `Box<dyn BlockDevice>`; every backend here implements the
//!   unified trait.
//!
//! # Example
//!
//! ```
//! use stair_net::{Client, Server, ServerConfig, ShardSet};
//! use stair_store::StoreOptions;
//!
//! let dir = std::env::temp_dir().join(format!("stair-net-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let opts = StoreOptions { code: "stair:8,4,2,1-1-2".parse()?, symbol: 64, stripes: 4 };
//! let shards = ShardSet::create(&dir, 2, &opts)?;
//!
//! let server = Server::bind("127.0.0.1:0", shards, ServerConfig::default())?;
//! let addr = server.local_addr().to_string();
//! let running = std::thread::spawn(move || server.run());
//!
//! let client = Client::connect(&addr)?;
//! let payload: Vec<u8> = (0..client.capacity() as usize).map(|i| i as u8).collect();
//! client.write_at(0, &payload)?;
//! client.fail_device(0, 3)?; // lose a device on shard 0 …
//! assert_eq!(client.read_at(0, payload.len())?, payload); // … reads still verify
//! client.shutdown_server()?;
//! running.join().expect("server thread")?;
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod device_impl;
mod error;
pub mod json;
mod placement;
pub mod protocol;
mod server;
mod shards;

pub use client::{Client, StripedClient};
pub use device_impl::{open_admin, open_device};
pub use error::NetError;
pub use placement::{Placement, ShardSpan};
pub use protocol::{WireSpan, WireTrace};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shards::{shard_dir_name, wire_status, ShardSet};
