//! [`BlockDevice`] / [`FaultAdmin`] implementations for the sharded
//! and remote backends, plus the [`open_device`] registry that turns a
//! [`DeviceSpec`] into a live device — the storage-layer mirror of
//! `stair_store::build_codec()`.

use stair_device::{
    seed_results, BatchResult, BlockDevice, DeviceError, DeviceSpec, DeviceStatus, FaultAdmin,
    IoBatch, OpResult, RepairOutcome, ScrubOutcome, ShardHealth, WriteOutcome,
};
use stair_store::{shard_health, StoreStatus, StripeStore};

use crate::placement::split_batch;
use crate::protocol::{RepairSummary, ScrubSummary, WriteSummary};
use crate::{Client, NetError, ShardSet, StripedClient};

/// Opens the backend a spec names as a data-path device.
///
/// `file:` and `shards:` targets must already exist on disk (`stair
/// store init` / `stair serve` create them); `tcp:` targets must have a
/// server listening.
///
/// # Errors
///
/// Unusable targets (missing store, shard-count mismatch, unreachable
/// server) surface as [`DeviceError`]s.
pub fn open_device(spec: &DeviceSpec) -> Result<Box<dyn BlockDevice>, DeviceError> {
    open_admin(spec).map(|dev| dev as Box<dyn BlockDevice>)
}

/// Opens the backend a spec names with fault administration attached —
/// what the CLI's `fail` verb and the conformance harness use. Every
/// built-in backend accepts admin operations; a future production
/// frontend can register one that refuses them.
///
/// # Errors
///
/// Same conditions as [`open_device`].
pub fn open_admin(spec: &DeviceSpec) -> Result<Box<dyn stair_device::AdminDevice>, DeviceError> {
    Ok(match spec {
        DeviceSpec::File { dir } => Box::new(StripeStore::open(dir)?),
        DeviceSpec::Shards { root, shards } => {
            let set = ShardSet::open(root)?;
            if let Some(n) = shards {
                if set.shard_count() != *n {
                    return Err(DeviceError::Spec(format!(
                        "{} holds {} shard(s) but the spec asked for n={n}",
                        root.display(),
                        set.shard_count()
                    )));
                }
            }
            Box::new(set)
        }
        DeviceSpec::Tcp { addr, lanes } => {
            if *lanes <= 1 {
                Box::new(Client::connect(addr)?)
            } else {
                Box::new(StripedClient::connect(addr, *lanes)?)
            }
        }
        DeviceSpec::Cache {
            inner,
            mb,
            wb,
            interval_ms,
        } => {
            let inner = open_admin(inner)?;
            Box::new(stair_cache::CachedDevice::new(
                inner,
                stair_cache::CacheConfig::from_spec(*mb, *wb, *interval_ms),
            ))
        }
    })
}

/// Builds the unified status, enforcing the `DeviceStatus` contract
/// that `shards` is never empty (a `ShardSet` guarantees it by
/// construction; a remote peer's STATUS response cannot be trusted to).
fn device_status(backend: &str, statuses: &[StoreStatus]) -> Result<DeviceStatus, DeviceError> {
    let shards: Vec<ShardHealth> = statuses.iter().map(shard_health).collect();
    let Some(first) = shards.first() else {
        return Err(DeviceError::Backend(format!(
            "{backend} backend reported no shards"
        )));
    };
    Ok(DeviceStatus {
        backend: backend.into(),
        capacity: shards.iter().map(|s| s.capacity).sum(),
        block_size: first.block_size,
        shards,
        cache: None,
    })
}

pub(crate) fn write_outcome(w: &WriteSummary) -> WriteOutcome {
    WriteOutcome {
        bytes: w.bytes,
        blocks_written: w.blocks_written,
        stripes_touched: w.stripes_touched,
        full_stripe_encodes: w.full_stripe_encodes,
        delta_updates: w.delta_updates,
    }
}

/// Stitches one sub-batch's results back into the global result slots:
/// `map[j]` names the global op and the byte offset sub-op `j` covers.
/// Read bytes are copied into place; write outcomes fold additively.
pub(crate) fn stitch(
    results: &mut [OpResult],
    map: &[(usize, usize)],
    sub: Vec<OpResult>,
) -> Result<(), NetError> {
    if sub.len() != map.len() {
        return Err(NetError::Protocol(format!(
            "batch produced {} results for {} sub-ops",
            sub.len(),
            map.len()
        )));
    }
    for (reply, &(op_idx, span_off)) in sub.into_iter().zip(map) {
        match (reply, &mut results[op_idx]) {
            (OpResult::Read(data), OpResult::Read(out)) => {
                let end = span_off + data.len();
                if end > out.len() {
                    return Err(NetError::Protocol(format!(
                        "batch read fragment [{span_off}, {end}) exceeds the op's {} bytes",
                        out.len()
                    )));
                }
                out[span_off..end].copy_from_slice(&data);
            }
            (OpResult::Write(w), OpResult::Write(total)) => total.absorb(&w),
            _ => {
                return Err(NetError::Protocol(
                    "batch sub-result kind does not match its op".into(),
                ))
            }
        }
    }
    Ok(())
}

fn scrub_outcome(s: &ScrubSummary) -> ScrubOutcome {
    ScrubOutcome {
        stripes_scanned: s.stripes_scanned,
        sectors_verified: s.sectors_verified,
        mismatches: s.mismatches,
        unavailable_devices: s.unavailable_devices,
        records_cleared: s.records_cleared,
    }
}

fn repair_outcome(r: &RepairSummary) -> RepairOutcome {
    RepairOutcome {
        devices_replaced: r.devices_replaced,
        stripes_repaired: r.stripes_repaired,
        sectors_rewritten: r.sectors_rewritten,
        unrecoverable_stripes: r.unrecoverable_stripes,
    }
}

// ---------------------------------------------------------------------
// shards: — the in-process sharded set
// ---------------------------------------------------------------------

impl BlockDevice for ShardSet {
    fn capacity(&self) -> u64 {
        ShardSet::capacity(self)
    }

    fn block_size(&self) -> usize {
        ShardSet::block_size(self)
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        Ok(ShardSet::read_at(self, offset, len)?)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        let report = ShardSet::write_at(self, offset, data)?;
        Ok(stair_store::write_outcome(&report, data.len() as u64))
    }

    /// Splits the batch by placement and executes the shard groups in
    /// parallel — shards share nothing, and each group runs the stripe
    /// store's native batched path (one lock + one codec decision per
    /// touched stripe). Conflicting ops always share the shard their
    /// overlap lands on, where submission order is preserved.
    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        let _split = stair_obs::trace::span(stair_obs::trace::names::SHARDS_SUBMIT);
        let groups = split_batch(self.placement(), batch.ops())?;
        let mut results = seed_results(batch.ops());
        let (maps, work): (Vec<_>, Vec<_>) = groups
            .into_iter()
            .map(|g| (g.map, (g.shard, g.ops)))
            .unzip();
        // One touched shard — the common shape batching optimizes for —
        // runs inline; spawning threads buys nothing at width 1.
        let subs: Vec<Result<BatchResult, NetError>> = if work.len() == 1 {
            // check: panic-ok guarded by work.len() == 1 on the line above
            let (shard, ops) = work.into_iter().next().expect("one group");
            vec![(|| Ok(self.shard(shard)?.submit(&IoBatch::from(ops))?))()]
        } else {
            // Shard threads inherit the submitting thread's span context
            // so per-stripe store spans attach to this trace.
            let ctx = stair_obs::trace::current();
            std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .into_iter()
                    .map(|(shard, ops)| {
                        scope.spawn(move || -> Result<BatchResult, NetError> {
                            let _trace = stair_obs::trace::enter_ctx(ctx);
                            Ok(self.shard(shard)?.submit(&IoBatch::from(ops))?)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // check: panic-ok a panicked shard thread is a bug — propagate, don't mask as NetError
                    .map(|h| h.join().expect("shard batch thread"))
                    .collect()
            })
        };
        for (map, sub) in maps.iter().zip(subs) {
            stitch(&mut results, map, sub?.results)?;
        }
        Ok(BatchResult::from_results(results))
    }

    fn flush(&self) -> Result<(), DeviceError> {
        Ok(ShardSet::flush(self)?)
    }

    fn status(&self) -> Result<DeviceStatus, DeviceError> {
        device_status("shards", &ShardSet::status(self))
    }

    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError> {
        let mut total = ScrubOutcome::default();
        for report in ShardSet::scrub(self, threads)? {
            total.absorb(&stair_store::scrub_outcome(&report));
        }
        Ok(total)
    }

    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError> {
        let mut total = RepairOutcome::default();
        for report in ShardSet::repair(self, threads)? {
            total.absorb(&stair_store::repair_outcome(&report));
        }
        Ok(total)
    }

    fn metrics(&self) -> Result<stair_obs::MetricsSnapshot, DeviceError> {
        Ok(ShardSet::metrics(self))
    }
}

impl FaultAdmin for ShardSet {
    fn fail_device(&self, shard: usize, device: usize) -> Result<(), DeviceError> {
        Ok(self.shard(shard)?.fail_device(device)?)
    }

    fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), DeviceError> {
        Ok(self
            .shard(shard)?
            .corrupt_sectors(device, stripe, row, len)?)
    }
}

// ---------------------------------------------------------------------
// tcp: — the remote clients
// ---------------------------------------------------------------------

impl BlockDevice for Client {
    fn capacity(&self) -> u64 {
        Client::capacity(self)
    }

    fn block_size(&self) -> usize {
        Client::block_size(self)
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        Ok(Client::read_at(self, offset, len)?)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        Ok(write_outcome(&Client::write_at(self, offset, data)?))
    }

    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        Ok(Client::submit(self, batch)?)
    }

    fn flush(&self) -> Result<(), DeviceError> {
        Ok(Client::flush(self)?)
    }

    fn status(&self) -> Result<DeviceStatus, DeviceError> {
        device_status("tcp", &Client::status(self)?)
    }

    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError> {
        Ok(scrub_outcome(&Client::scrub(self, threads)?))
    }

    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError> {
        Ok(repair_outcome(&Client::repair(self, threads)?))
    }

    fn metrics(&self) -> Result<stair_obs::MetricsSnapshot, DeviceError> {
        Ok(Client::metrics(self)?)
    }
}

impl FaultAdmin for Client {
    fn fail_device(&self, shard: usize, device: usize) -> Result<(), DeviceError> {
        Ok(Client::fail_device(self, shard, device)?)
    }

    fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), DeviceError> {
        Ok(Client::corrupt_sectors(
            self, shard, device, stripe, row, len,
        )?)
    }
}

impl BlockDevice for StripedClient {
    fn capacity(&self) -> u64 {
        self.info().capacity
    }

    fn block_size(&self) -> usize {
        self.info().block_size as usize
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        Ok(StripedClient::read_at(self, offset, len)?)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        Ok(write_outcome(&StripedClient::write_at(self, offset, data)?))
    }

    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        Ok(StripedClient::submit(self, batch)?)
    }

    fn flush(&self) -> Result<(), DeviceError> {
        Ok(self.lane0().flush()?)
    }

    fn status(&self) -> Result<DeviceStatus, DeviceError> {
        device_status("tcp", &self.lane0().status()?)
    }

    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError> {
        Ok(scrub_outcome(&self.lane0().scrub(threads)?))
    }

    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError> {
        Ok(repair_outcome(&self.lane0().repair(threads)?))
    }

    fn metrics(&self) -> Result<stair_obs::MetricsSnapshot, DeviceError> {
        Ok(StripedClient::metrics(self)?)
    }
}

impl FaultAdmin for StripedClient {
    fn fail_device(&self, shard: usize, device: usize) -> Result<(), DeviceError> {
        Ok(self.lane0().fail_device(shard, device)?)
    }

    fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), DeviceError> {
        Ok(self
            .lane0()
            .corrupt_sectors(shard, device, stripe, row, len)?)
    }
}
