//! The sharded store: `k` independent [`StripeStore`]s under one root
//! directory, glued into a single logical block space by the
//! [`Placement`] map.
//!
//! Every shard runs the same codec and geometry, so the placement
//! arithmetic is uniform and a shard's stripe is exactly one placement
//! range. The set is usable in-process (the benchmarks drive it through
//! the server, tests may drive it directly); the TCP server is a thin
//! wire layer on top.

use std::path::{Path, PathBuf};

use stair_store::{StoreOptions, StoreStatus, StripeStore, WriteReport};

use crate::placement::Placement;
use crate::protocol::WireShardStatus;
use crate::NetError;

/// Directory name of shard `i` under the serve root.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:04}")
}

/// A fixed set of equally-shaped stripe-store shards plus the placement
/// map over them.
pub struct ShardSet {
    root: PathBuf,
    stores: Vec<StripeStore>,
    placement: Placement,
}

impl ShardSet {
    /// Creates `shards` fresh stores under `root` (one per
    /// `root/shard-NNNN`), all with the same [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// Fails if `root` already contains shard directories or any store
    /// creation fails.
    pub fn create(root: &Path, shards: usize, opts: &StoreOptions) -> Result<Self, NetError> {
        if shards == 0 {
            return Err(NetError::Shards("need at least one shard".into()));
        }
        if root.join(shard_dir_name(0)).exists() {
            return Err(NetError::Shards(format!(
                "{} already holds shards (open it instead of re-initializing)",
                root.display()
            )));
        }
        std::fs::create_dir_all(root)?;
        let mut stores = Vec::with_capacity(shards);
        for i in 0..shards {
            stores.push(StripeStore::create(&root.join(shard_dir_name(i)), opts)?);
        }
        Self::assemble(root, stores)
    }

    /// Opens the shards already present under `root` (`shard-0000`,
    /// `shard-0001`, … with no gaps).
    ///
    /// # Errors
    ///
    /// Fails when no shards exist, a shard fails to open, or the shards
    /// disagree on codec or scalar geometry.
    pub fn open(root: &Path) -> Result<Self, NetError> {
        let mut stores = Vec::new();
        loop {
            let dir = root.join(shard_dir_name(stores.len()));
            if !dir.is_dir() {
                break;
            }
            stores.push(StripeStore::open(&dir)?);
        }
        if stores.is_empty() {
            return Err(NetError::Shards(format!(
                "{} contains no shard directories (expected {}, …)",
                root.display(),
                shard_dir_name(0)
            )));
        }
        Self::assemble(root, stores)
    }

    /// Opens `root` if it holds shards, otherwise creates `shards` new
    /// ones. When opening, `shards` must match what is on disk.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardSet::open`] / [`ShardSet::create`] failures,
    /// plus a shard-count mismatch on open.
    pub fn open_or_create(
        root: &Path,
        shards: usize,
        opts: &StoreOptions,
    ) -> Result<Self, NetError> {
        if root.join(shard_dir_name(0)).is_dir() {
            let set = Self::open(root)?;
            if set.stores.len() != shards {
                return Err(NetError::Shards(format!(
                    "{} holds {} shard(s) but --shards asked for {shards}",
                    root.display(),
                    set.stores.len()
                )));
            }
            return Ok(set);
        }
        Self::create(root, shards, opts)
    }

    fn assemble(root: &Path, stores: Vec<StripeStore>) -> Result<Self, NetError> {
        let first = &stores[0];
        for (i, s) in stores.iter().enumerate().skip(1) {
            if s.codec_spec() != first.codec_spec()
                || s.block_size() != first.block_size()
                || s.stripe_count() != first.stripe_count()
            {
                return Err(NetError::Shards(format!(
                    "shard {i} ({}, {} stripes of {}-byte blocks) does not match shard 0 ({}, {} stripes of {}-byte blocks)",
                    s.codec_spec(),
                    s.stripe_count(),
                    s.block_size(),
                    first.codec_spec(),
                    first.stripe_count(),
                    first.block_size()
                )));
            }
        }
        let placement = Placement::new(
            stores.len(),
            first.blocks_per_stripe(),
            first.stripe_count(),
            first.block_size(),
        );
        Ok(ShardSet {
            root: root.to_path_buf(),
            stores,
            placement,
        })
    }

    /// The serve root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The placement map.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.stores.len()
    }

    /// Direct access to one shard's store.
    ///
    /// # Errors
    ///
    /// Out-of-range indices are rejected.
    pub fn shard(&self, i: usize) -> Result<&StripeStore, NetError> {
        self.stores.get(i).ok_or_else(|| {
            NetError::Shards(format!(
                "shard {i} out of range (have {})",
                self.stores.len()
            ))
        })
    }

    /// Total logical capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.placement.capacity()
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.placement.block_size()
    }

    /// The codec spec string every shard runs.
    pub fn codec(&self) -> String {
        self.stores[0].codec_spec().to_string()
    }

    /// Reads `len` bytes at global byte `offset`, shard by shard
    /// (degraded shards reconstruct transparently).
    ///
    /// # Errors
    ///
    /// Span errors and store errors propagate.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, NetError> {
        let mut out = vec![0u8; len];
        for span in self.placement.split(offset, len)? {
            let piece = self.stores[span.shard].read_at(span.local_offset, span.len)?;
            out[span.span_offset..span.span_offset + span.len].copy_from_slice(&piece);
        }
        Ok(out)
    }

    /// Writes `data` at global byte `offset`, returning the aggregated
    /// per-shard write report.
    ///
    /// # Errors
    ///
    /// Span errors and store errors propagate.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteReport, NetError> {
        let mut total = WriteReport::default();
        for span in self.placement.split(offset, data.len())? {
            let r = self.stores[span.shard].write_at(
                span.local_offset,
                &data[span.span_offset..span.span_offset + span.len],
            )?;
            total.blocks_written += r.blocks_written;
            total.stripes_touched += r.stripes_touched;
            total.full_stripe_encodes += r.full_stripe_encodes;
            total.delta_updates += r.delta_updates;
            total.parity_sectors_patched += r.parity_sectors_patched;
            total.sectors_healed += r.sectors_healed;
        }
        Ok(total)
    }

    /// Health snapshot of every shard, in shard order.
    pub fn status(&self) -> Vec<StoreStatus> {
        self.stores.iter().map(|s| s.status()).collect()
    }

    /// Persists every shard.
    ///
    /// # Errors
    ///
    /// The first store error aborts the pass.
    pub fn flush(&self) -> Result<(), NetError> {
        for s in &self.stores {
            s.flush()?;
        }
        Ok(())
    }

    /// Scrubs every shard with `threads` workers each, returning one
    /// report per shard.
    ///
    /// # Errors
    ///
    /// The first store error aborts the pass.
    pub fn scrub(&self, threads: usize) -> Result<Vec<stair_store::ScrubReport>, NetError> {
        self.stores
            .iter()
            .map(|s| s.scrub(threads).map_err(NetError::from))
            .collect()
    }

    /// Repairs every shard with `threads` workers each, returning one
    /// report per shard.
    ///
    /// # Errors
    ///
    /// The first store error aborts the pass.
    pub fn repair(&self, threads: usize) -> Result<Vec<stair_store::RepairReport>, NetError> {
        self.stores
            .iter()
            .map(|s| s.repair(threads).map_err(NetError::from))
            .collect()
    }

    /// Aggregated metrics across every shard: the per-shard `store.*`
    /// counters summed, plus the process-global `gf.*` field-arithmetic
    /// counters folded in exactly once (they are shared by every codec
    /// instance, so per-shard merging would multiply them).
    pub fn metrics(&self) -> stair_obs::MetricsSnapshot {
        let mut snap = stair_obs::MetricsSnapshot::default();
        for store in &self.stores {
            snap.merge(&store.store_metrics());
        }
        snap.merge(&stair_store::gf_metrics());
        snap
    }
}

/// Converts a store status to its wire form.
pub fn wire_status(status: &StoreStatus) -> WireShardStatus {
    WireShardStatus {
        codec: status.codec.to_string(),
        capacity: status.capacity,
        block_size: status.block_size as u32,
        stripes: status.stripes as u32,
        blocks_per_stripe: status.blocks_per_stripe as u32,
        failed_devices: status.failed_devices.iter().map(|&d| d as u32).collect(),
        rebuilding_devices: status
            .rebuilding_devices
            .iter()
            .map(|&d| d as u32)
            .collect(),
        known_bad_sectors: status.known_bad_sectors as u32,
        clean_shutdown: status.clean_shutdown,
        replayed_records: status.replayed_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stair-shards-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> StoreOptions {
        StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 4,
        }
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn sharded_round_trip_and_reopen() {
        let dir = tmpdir("rt");
        let set = ShardSet::create(&dir, 3, &opts()).unwrap();
        assert_eq!(set.capacity(), 3 * 4 * 20 * 64);
        let payload = pattern(set.capacity() as usize, 5);
        set.write_at(0, &payload).unwrap();
        assert_eq!(set.read_at(0, payload.len()).unwrap(), payload);
        // Unaligned window crossing shard boundaries.
        assert_eq!(
            set.read_at(1000, 3000).unwrap(),
            payload[1000..4000].to_vec()
        );
        drop(set);
        let set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.shard_count(), 3);
        assert_eq!(set.read_at(0, payload.len()).unwrap(), payload);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_shard_reads_through() {
        let dir = tmpdir("deg");
        let set = ShardSet::create(&dir, 2, &opts()).unwrap();
        let payload = pattern(set.capacity() as usize, 9);
        set.write_at(0, &payload).unwrap();
        set.shard(1).unwrap().fail_device(2).unwrap();
        assert_eq!(set.read_at(0, payload.len()).unwrap(), payload);
        let reports = set.repair(2).unwrap();
        assert!(reports.iter().all(|r| r.complete()));
        let scrubs = set.scrub(2).unwrap();
        assert!(scrubs.iter().all(|r| r.clean()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_empty_create_rejects_existing() {
        let dir = tmpdir("guard");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(ShardSet::open(&dir), Err(NetError::Shards(_))));
        let set = ShardSet::create(&dir, 2, &opts()).unwrap();
        drop(set);
        assert!(matches!(
            ShardSet::create(&dir, 2, &opts()),
            Err(NetError::Shards(_))
        ));
        // open_or_create with the wrong count is refused.
        assert!(matches!(
            ShardSet::open_or_create(&dir, 3, &opts()),
            Err(NetError::Shards(_))
        ));
        assert_eq!(
            ShardSet::open_or_create(&dir, 2, &opts())
                .unwrap()
                .shard_count(),
            2
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
