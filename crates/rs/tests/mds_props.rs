//! Property tests: the MDS property must hold for randomized shapes,
//! erasure patterns, and payloads — this is the foundation STAIR's fault
//! tolerance proof builds on.

use proptest::prelude::*;
use stair_gf::{Gf16, Gf8};
use stair_rs::MdsCode;

proptest! {
    /// decode(erase(encode(data))) == data for any κ-sized surviving set.
    #[test]
    fn any_k_surviving_symbols_recover_gf8(
        total in 3usize..24,
        seed in any::<u64>(),
    ) {
        let data_len = 1 + (seed as usize % (total - 1));
        let code: MdsCode<Gf8> = MdsCode::new(total, data_len).unwrap();
        let data: Vec<u8> = (0..data_len).map(|i| (seed >> (i % 8) ^ i as u64) as u8).collect();
        let parity = code.encode_elems(&data).unwrap();
        let full: Vec<u8> = data.iter().chain(&parity).copied().collect();

        // Choose a pseudo-random surviving set of exactly κ symbols.
        let mut order: Vec<usize> = (0..total).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let survivors = &order[..data_len];
        let cw: Vec<Option<u8>> = (0..total)
            .map(|i| survivors.contains(&i).then_some(full[i]))
            .collect();
        prop_assert_eq!(code.decode_elems(&cw).unwrap(), full);
    }

    /// Region-level decode agrees with element-level decode on every byte.
    #[test]
    fn region_and_element_decode_agree(
        payload in proptest::collection::vec(any::<u8>(), 5 * 8),
    ) {
        let code: MdsCode<Gf8> = MdsCode::new(8, 5).unwrap();
        let regions: Vec<&[u8]> = payload.chunks_exact(8).collect();
        let mut parities: Vec<Vec<u8>> = (0..3).map(|_| vec![0u8; 8]).collect();
        {
            let mut prefs: Vec<&mut [u8]> = parities.iter_mut().map(Vec::as_mut_slice).collect();
            code.encode_regions(&regions, &mut prefs).unwrap();
        }
        // Erase data 1, 4 and parity 6; decode data back from the rest.
        let available: Vec<(usize, &[u8])> = vec![
            (0, regions[0]), (2, regions[2]), (3, regions[3]),
            (5, &parities[0]), (7, &parities[2]),
        ];
        let mut r1 = vec![0u8; 8];
        let mut r4 = vec![0u8; 8];
        {
            let mut out: Vec<&mut [u8]> = vec![&mut r1, &mut r4];
            code.decode_regions(&available, &[1, 4], &mut out).unwrap();
        }
        prop_assert_eq!(r1.as_slice(), regions[1]);
        prop_assert_eq!(r4.as_slice(), regions[4]);
    }

}

proptest! {
    // The (300,297) construction inverts a 297×297 matrix per case; a few
    // random cases give the coverage we need.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// GF(2^16) codes support lengths beyond 256.
    #[test]
    fn wide_field_code_round_trips(seed in any::<u64>()) {
        let code: MdsCode<Gf16> = MdsCode::new(300, 297).unwrap();
        let data: Vec<u16> = (0..297).map(|i| (seed ^ (i as u64 * 2654435761)) as u16).collect();
        let parity = code.encode_elems(&data).unwrap();
        let mut cw: Vec<Option<u16>> = data.iter().chain(&parity).map(|&x| Some(x)).collect();
        cw[0] = None;
        cw[150] = None;
        cw[299] = None;
        let full = code.decode_elems(&cw).unwrap();
        prop_assert_eq!(&full[..297], &data[..]);
    }
}
