//! Systematic Cauchy Reed–Solomon MDS codes.
//!
//! The paper's STAIR construction composes two systematic MDS codes (§2):
//! `C_row`, an `(n+m', n−m)`-code applied across stripe rows, and `C_col`,
//! an `(r+e_max, r)`-code applied down chunks. Both are instantiated here as
//! Cauchy Reed–Solomon codes [8, 38]: the generator matrix is `[I | A]`
//! with `A` a Cauchy block, which makes any `κ` of the `η` codeword symbols
//! sufficient to recover the rest (the MDS property).
//!
//! [`MdsCode`] exposes both element-level arithmetic (used to derive
//! coefficient schedules) and sector-sized *region* operations built on the
//! `Mult_XOR` kernel of [`stair_gf`], which is how real stripes are encoded
//! and repaired.
//!
//! # Example
//!
//! ```
//! use stair_gf::Gf8;
//! use stair_rs::MdsCode;
//!
//! // A (6,4)-code: 4 data symbols, 2 parity symbols.
//! let code: MdsCode<Gf8> = MdsCode::new(6, 4)?;
//! let data = [1u8, 2, 3, 4];
//! let parity = code.encode_elems(&data)?;
//!
//! // Erase any two symbols; the remaining four always suffice.
//! let mut codeword: Vec<Option<u8>> = data.iter().copied().map(Some).collect();
//! codeword.extend(parity.iter().copied().map(Some));
//! codeword[1] = None;
//! codeword[4] = None;
//! let recovered = code.decode_elems(&codeword)?;
//! assert_eq!(&recovered[..4], &data);
//! # Ok::<(), stair_rs::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod error;

pub use code::MdsCode;
pub use error::Error;
