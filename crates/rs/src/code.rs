//! The systematic `(η, κ)` MDS code.

use stair_gf::Field;
use stair_gfmatrix::{cauchy_parity, Matrix};

use crate::Error;

/// A systematic `(η, κ)` MDS code over the field `F` (Cauchy Reed–Solomon).
///
/// Symbols `0..κ` of a codeword are the data symbols (stored verbatim);
/// symbols `κ..η` are parity. Any `κ` symbols of a codeword determine the
/// remaining `η − κ`.
///
/// The paper's `C_row` is `MdsCode::new(n + m', n − m)` and `C_col` is
/// `MdsCode::new(r + e_max, r)` (§3).
///
/// # Example
///
/// ```
/// use stair_gf::Gf8;
/// use stair_rs::MdsCode;
///
/// let code: MdsCode<Gf8> = MdsCode::new(5, 3)?;
/// assert_eq!((code.total_len(), code.data_len(), code.parity_len()), (5, 3, 2));
/// # Ok::<(), stair_rs::Error>(())
/// ```
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct MdsCode<F: Field> {
    total: usize,
    data: usize,
    /// The κ×η systematic generator `[I | A]`.
    generator: Matrix<F>,
}

impl<F: Field> MdsCode<F> {
    /// Constructs the systematic `(total, data)`-code.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `data == 0`, `data >= total`, or
    /// `total` exceeds the field order (not enough Cauchy points).
    pub fn new(total: usize, data: usize) -> Result<Self, Error> {
        if data == 0 {
            return Err(Error::InvalidParams {
                total,
                data,
                reason: "κ must be positive",
            });
        }
        if data >= total {
            return Err(Error::InvalidParams {
                total,
                data,
                reason: "κ must be less than η",
            });
        }
        if total > F::ORDER {
            return Err(Error::InvalidParams {
                total,
                data,
                reason: "η exceeds the field order; use a wider field",
            });
        }
        let parity = cauchy_parity::<F>(data, total - data)?;
        let generator = Matrix::identity(data).hstack(&parity)?;
        Ok(MdsCode {
            total,
            data,
            generator,
        })
    }

    /// Codeword length η.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Number of data symbols κ.
    pub fn data_len(&self) -> usize {
        self.data
    }

    /// Number of parity symbols η − κ.
    pub fn parity_len(&self) -> usize {
        self.total - self.data
    }

    /// The κ×η systematic generator matrix `[I | A]`.
    pub fn generator(&self) -> &Matrix<F> {
        &self.generator
    }

    /// Encodes κ data elements, returning the η − κ parity elements.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongSymbolCount`] if `data.len() != κ`.
    pub fn encode_elems(&self, data: &[F::Elem]) -> Result<Vec<F::Elem>, Error> {
        if data.len() != self.data {
            return Err(Error::WrongSymbolCount {
                got: data.len(),
                expected: self.data,
            });
        }
        let mut parity = vec![F::zero(); self.parity_len()];
        for (j, p) in parity.iter_mut().enumerate() {
            let col = self.data + j;
            let mut acc = F::zero();
            for (i, &d) in data.iter().enumerate() {
                acc = F::add(acc, F::mul(self.generator.get(i, col), d));
            }
            *p = acc;
        }
        Ok(parity)
    }

    /// Recovers the *full* codeword from any κ (or more) present symbols.
    ///
    /// `codeword[i]` is `Some` if symbol `i` is available, `None` if erased.
    ///
    /// # Errors
    ///
    /// * [`Error::WrongSymbolCount`] if `codeword.len() != η`;
    /// * [`Error::NotEnoughSymbols`] if fewer than κ symbols are present.
    pub fn decode_elems(&self, codeword: &[Option<F::Elem>]) -> Result<Vec<F::Elem>, Error> {
        if codeword.len() != self.total {
            return Err(Error::WrongSymbolCount {
                got: codeword.len(),
                expected: self.total,
            });
        }
        let present: Vec<usize> = codeword
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect();
        if present.len() < self.data {
            return Err(Error::NotEnoughSymbols {
                available: present.len(),
                needed: self.data,
            });
        }
        let use_idx = &present[..self.data];
        let wanted: Vec<usize> = (0..self.total).collect();
        let coeff = self.recovery_coefficients(use_idx, &wanted)?;
        let avail: Vec<F::Elem> = use_idx.iter().map(|&i| codeword[i].unwrap()).collect();
        let mut out = vec![F::zero(); self.total];
        for (w, o) in out.iter_mut().enumerate() {
            let mut acc = F::zero();
            for (a, &v) in avail.iter().enumerate() {
                acc = F::add(acc, F::mul(coeff.get(a, w), v));
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Computes the κ×|wanted| coefficient matrix `M` such that for a valid
    /// codeword `c`: `c[wanted[j]] = Σ_i M[i][j] · c[available[i]]`.
    ///
    /// This is the workhorse used by the STAIR upstairs/downstairs schedules:
    /// it expresses *any* codeword symbols as linear combinations of *any* κ
    /// available ones (`d = c_A · G_A⁻¹`, then `c_W = d · G_W`).
    ///
    /// # Errors
    ///
    /// * [`Error::WrongSymbolCount`] if `available.len() != κ`;
    /// * [`Error::IndexOutOfRange`] / [`Error::DuplicateIndex`] for bad
    ///   index sets.
    pub fn recovery_coefficients(
        &self,
        available: &[usize],
        wanted: &[usize],
    ) -> Result<Matrix<F>, Error> {
        if available.len() != self.data {
            return Err(Error::WrongSymbolCount {
                got: available.len(),
                expected: self.data,
            });
        }
        self.check_indices(available)?;
        for &w in wanted {
            if w >= self.total {
                return Err(Error::IndexOutOfRange {
                    index: w,
                    total: self.total,
                });
            }
        }
        if wanted.is_empty() {
            return Err(Error::RegionMismatch("wanted set must be non-empty".into()));
        }
        // G_A: columns of the generator at the available positions (κ×κ).
        let ga = self.generator.select_cols(available);
        // MDS ⇒ invertible.
        let ga_inv = ga.inverted()?;
        let gw = self.generator.select_cols(wanted);
        Ok(ga_inv.mul(&gw)?)
    }

    /// Encodes sector-sized regions: `data` holds κ equal-length regions,
    /// `parity` receives the η − κ parity regions (overwritten).
    ///
    /// Costs exactly `κ · (η − κ)` `Mult_XOR` operations, matching how the
    /// paper counts encoding work (§5.3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongSymbolCount`] or [`Error::RegionMismatch`] on
    /// shape violations.
    pub fn encode_regions(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), Error> {
        if data.len() != self.data {
            return Err(Error::WrongSymbolCount {
                got: data.len(),
                expected: self.data,
            });
        }
        if parity.len() != self.parity_len() {
            return Err(Error::WrongSymbolCount {
                got: parity.len(),
                expected: self.parity_len(),
            });
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) || parity.iter().any(|p| p.len() != len) {
            return Err(Error::RegionMismatch(
                "all regions must have equal length".into(),
            ));
        }
        for (j, p) in parity.iter_mut().enumerate() {
            p.fill(0);
            let col = self.data + j;
            for (i, d) in data.iter().enumerate() {
                F::mult_xor_region(p, d, self.generator.get(i, col));
            }
        }
        Ok(())
    }

    /// Applies a coefficient matrix from [`Self::recovery_coefficients`] to
    /// regions: `out[j] = Σ_i coeff[i][j] · available[i]`.
    ///
    /// Costs `κ` `Mult_XOR`s per output region.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongSymbolCount`] or [`Error::RegionMismatch`] on
    /// shape violations.
    pub fn apply_coefficients(
        &self,
        coeff: &Matrix<F>,
        available: &[&[u8]],
        out: &mut [&mut [u8]],
    ) -> Result<(), Error> {
        if available.len() != coeff.rows() {
            return Err(Error::WrongSymbolCount {
                got: available.len(),
                expected: coeff.rows(),
            });
        }
        if out.len() != coeff.cols() {
            return Err(Error::WrongSymbolCount {
                got: out.len(),
                expected: coeff.cols(),
            });
        }
        let len = available.first().map(|a| a.len()).unwrap_or(0);
        if available.iter().any(|a| a.len() != len) || out.iter().any(|o| o.len() != len) {
            return Err(Error::RegionMismatch(
                "all regions must have equal length".into(),
            ));
        }
        for (j, o) in out.iter_mut().enumerate() {
            o.fill(0);
            for (i, a) in available.iter().enumerate() {
                F::mult_xor_region(o, a, coeff.get(i, j));
            }
        }
        Ok(())
    }

    /// Reconstructs the regions at `wanted` positions from κ `available`
    /// `(index, region)` pairs. Convenience wrapper combining
    /// [`Self::recovery_coefficients`] and [`Self::apply_coefficients`].
    ///
    /// # Errors
    ///
    /// Propagates the errors of the two wrapped steps.
    pub fn decode_regions(
        &self,
        available: &[(usize, &[u8])],
        wanted: &[usize],
        out: &mut [&mut [u8]],
    ) -> Result<(), Error> {
        let idx: Vec<usize> = available.iter().map(|&(i, _)| i).collect();
        let regions: Vec<&[u8]> = available.iter().map(|&(_, r)| r).collect();
        let coeff = self.recovery_coefficients(&idx, wanted)?;
        self.apply_coefficients(&coeff, &regions, out)
    }

    fn check_indices(&self, idx: &[usize]) -> Result<(), Error> {
        let mut seen = vec![false; self.total];
        for &i in idx {
            if i >= self.total {
                return Err(Error::IndexOutOfRange {
                    index: i,
                    total: self.total,
                });
            }
            if seen[i] {
                return Err(Error::DuplicateIndex(i));
            }
            seen[i] = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_gf::{Gf4, Gf8};

    fn sample_data(k: usize) -> Vec<u8> {
        (0..k).map(|i| ((i * 37 + 11) % 256) as u8).collect()
    }

    #[test]
    fn systematic_property() {
        let code: MdsCode<Gf8> = MdsCode::new(8, 5).unwrap();
        let data = sample_data(5);
        let parity = code.encode_elems(&data).unwrap();
        let full: Vec<Option<u8>> = data.iter().chain(&parity).map(|&x| Some(x)).collect();
        let decoded = code.decode_elems(&full).unwrap();
        assert_eq!(&decoded[..5], &data[..]);
        assert_eq!(&decoded[5..], &parity[..]);
    }

    /// Exhaustive MDS check on a small code: every κ-subset of symbol
    /// positions recovers the full codeword.
    #[test]
    fn any_k_of_n_recovers_exhaustive() {
        let code: MdsCode<Gf8> = MdsCode::new(7, 4).unwrap();
        let data = sample_data(4);
        let parity = code.encode_elems(&data).unwrap();
        let full: Vec<u8> = data.iter().chain(&parity).copied().collect();

        // Iterate all C(7,4) = 35 subsets via bitmasks.
        for mask in 0u32..(1 << 7) {
            if mask.count_ones() != 4 {
                continue;
            }
            let cw: Vec<Option<u8>> = (0..7)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        Some(full[i])
                    } else {
                        None
                    }
                })
                .collect();
            let decoded = code.decode_elems(&cw).unwrap();
            assert_eq!(decoded, full, "mask {mask:b}");
        }
    }

    #[test]
    fn too_few_symbols_rejected() {
        let code: MdsCode<Gf8> = MdsCode::new(6, 4).unwrap();
        let cw: Vec<Option<u8>> = vec![Some(1), Some(2), Some(3), None, None, None];
        assert_eq!(
            code.decode_elems(&cw),
            Err(Error::NotEnoughSymbols {
                available: 3,
                needed: 4
            })
        );
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            MdsCode::<Gf8>::new(4, 0),
            Err(Error::InvalidParams { .. })
        ));
        assert!(matches!(
            MdsCode::<Gf8>::new(4, 4),
            Err(Error::InvalidParams { .. })
        ));
        assert!(matches!(
            MdsCode::<Gf4>::new(17, 4),
            Err(Error::InvalidParams { .. })
        ));
        assert!(MdsCode::<Gf4>::new(16, 4).is_ok());
    }

    #[test]
    fn region_encode_matches_element_encode() {
        let code: MdsCode<Gf8> = MdsCode::new(6, 4).unwrap();
        // Each region holds several independent codewords, element-wise.
        let regions: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..32)
                    .map(|j| ((i * 61 + j * 13 + 7) % 256) as u8)
                    .collect()
            })
            .collect();
        let data_refs: Vec<&[u8]> = regions.iter().map(Vec::as_slice).collect();
        let mut p0 = vec![0u8; 32];
        let mut p1 = vec![0u8; 32];
        {
            let mut parity: Vec<&mut [u8]> = vec![&mut p0, &mut p1];
            code.encode_regions(&data_refs, &mut parity).unwrap();
        }
        for byte in 0..32 {
            let col: Vec<u8> = regions.iter().map(|r| r[byte]).collect();
            let parity = code.encode_elems(&col).unwrap();
            assert_eq!(p0[byte], parity[0]);
            assert_eq!(p1[byte], parity[1]);
        }
    }

    #[test]
    fn region_decode_round_trip() {
        let code: MdsCode<Gf8> = MdsCode::new(6, 4).unwrap();
        let regions: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..16)
                    .map(|j| ((i * 31 + j * 17 + 3) % 256) as u8)
                    .collect()
            })
            .collect();
        let data_refs: Vec<&[u8]> = regions.iter().map(Vec::as_slice).collect();
        let mut p0 = vec![0u8; 16];
        let mut p1 = vec![0u8; 16];
        {
            let mut parity: Vec<&mut [u8]> = vec![&mut p0, &mut p1];
            code.encode_regions(&data_refs, &mut parity).unwrap();
        }
        // Erase data symbols 0 and 2; recover from 1, 3 and both parities.
        let available: Vec<(usize, &[u8])> =
            vec![(1, &regions[1]), (3, &regions[3]), (4, &p0), (5, &p1)];
        let mut r0 = vec![0u8; 16];
        let mut r2 = vec![0u8; 16];
        {
            let mut out: Vec<&mut [u8]> = vec![&mut r0, &mut r2];
            code.decode_regions(&available, &[0, 2], &mut out).unwrap();
        }
        assert_eq!(r0, regions[0]);
        assert_eq!(r2, regions[2]);
    }

    #[test]
    fn recovery_coefficient_errors() {
        let code: MdsCode<Gf8> = MdsCode::new(6, 4).unwrap();
        assert_eq!(
            code.recovery_coefficients(&[0, 1, 2], &[5]),
            Err(Error::WrongSymbolCount {
                got: 3,
                expected: 4
            })
        );
        assert_eq!(
            code.recovery_coefficients(&[0, 1, 2, 9], &[5]),
            Err(Error::IndexOutOfRange { index: 9, total: 6 })
        );
        assert_eq!(
            code.recovery_coefficients(&[0, 1, 2, 2], &[5]),
            Err(Error::DuplicateIndex(2))
        );
    }

    #[test]
    fn mult_xor_cost_matches_model() {
        let code: MdsCode<Gf8> = MdsCode::new(9, 6).unwrap();
        let regions: Vec<Vec<u8>> = (0..6).map(|_| vec![0u8; 64]).collect();
        let data_refs: Vec<&[u8]> = regions.iter().map(Vec::as_slice).collect();
        let mut ps: Vec<Vec<u8>> = (0..3).map(|_| vec![0u8; 64]).collect();
        let before = stair_gf::counters::mult_xors();
        {
            let mut parity: Vec<&mut [u8]> = ps.iter_mut().map(Vec::as_mut_slice).collect();
            code.encode_regions(&data_refs, &mut parity).unwrap();
        }
        // κ·(η−κ) = 6·3 = 18 Mult_XORs per stripe-row encode.
        assert_eq!(stair_gf::counters::mult_xors() - before, 18);
    }
}
