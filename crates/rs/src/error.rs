//! Error type for MDS code construction and use.

use core::fmt;

/// Errors returned by [`crate::MdsCode`] operations.
#[derive(Clone, Debug, Eq, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The requested `(η, κ)` pair is invalid (κ = 0, κ ≥ η, or η exceeds
    /// the field order).
    InvalidParams {
        /// Total codeword length η requested.
        total: usize,
        /// Data length κ requested.
        data: usize,
        /// Explanation of the violation.
        reason: &'static str,
    },
    /// Fewer than κ symbols are available, so decoding cannot proceed.
    NotEnoughSymbols {
        /// How many symbols were available.
        available: usize,
        /// How many are needed (κ).
        needed: usize,
    },
    /// An input slice had the wrong number of symbols for this code.
    WrongSymbolCount {
        /// Symbols provided.
        got: usize,
        /// Symbols expected.
        expected: usize,
    },
    /// A symbol index was out of range for this code.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The codeword length η.
        total: usize,
    },
    /// The same symbol index was supplied twice.
    DuplicateIndex(usize),
    /// Region buffers had mismatched or invalid lengths.
    RegionMismatch(String),
    /// An underlying linear-algebra failure (should not occur for valid
    /// Cauchy constructions; surfaced rather than panicking).
    Matrix(stair_gfmatrix::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParams {
                total,
                data,
                reason,
            } => {
                write!(f, "invalid ({total},{data})-code: {reason}")
            }
            Error::NotEnoughSymbols { available, needed } => {
                write!(
                    f,
                    "not enough symbols: {available} available, {needed} needed"
                )
            }
            Error::WrongSymbolCount { got, expected } => {
                write!(f, "wrong symbol count: got {got}, expected {expected}")
            }
            Error::IndexOutOfRange { index, total } => {
                write!(
                    f,
                    "symbol index {index} out of range for codeword length {total}"
                )
            }
            Error::DuplicateIndex(i) => write!(f, "symbol index {i} supplied twice"),
            Error::RegionMismatch(msg) => write!(f, "region mismatch: {msg}"),
            Error::Matrix(e) => write!(f, "matrix error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stair_gfmatrix::Error> for Error {
    fn from(e: stair_gfmatrix::Error) -> Self {
        Error::Matrix(e)
    }
}

impl From<Error> for stair_code::CodeError {
    fn from(e: Error) -> stair_code::CodeError {
        use stair_code::CodeError;
        match e {
            Error::InvalidParams { .. } => CodeError::InvalidConfig(e.to_string()),
            Error::NotEnoughSymbols { .. } => CodeError::Unrecoverable(e.to_string()),
            Error::WrongSymbolCount { .. } | Error::RegionMismatch(_) => {
                CodeError::ShapeMismatch(e.to_string())
            }
            Error::IndexOutOfRange { .. } | Error::DuplicateIndex(_) => {
                CodeError::InvalidPattern(e.to_string())
            }
            other => CodeError::Internal(other.to_string()),
        }
    }
}
