// Fixture: the reserved metric-name schema as stair-obs declares it —
// a `metric_names` module of string constants, mirroring the span-name
// schema one module over. `FIX_DEAD` is declared but nothing in the
// bad fixture workspace registers it.
pub mod metric_names {
    /// Reads served from a resident fixture frame.
    pub const FIX_HIT: &str = "fixcache.hit";
    /// Declared; only the good fixture registers it.
    pub const FIX_DEAD: &str = "fixcache.dead";
    /// All declared names.
    pub const ALL: &[&str] = &[FIX_HIT, FIX_DEAD];
}

pub struct Registry;

impl Registry {
    pub fn counter(&self, _name: &str) {}
    pub fn gauge(&self, _name: &str) {}
}
