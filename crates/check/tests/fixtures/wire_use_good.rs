// Fixture: near-miss negative for wire-constants — *using* the wire
// constants (imported) is fine; so is a locally-named different cap.
use crate::protocol::{MAX_IO_BYTES, PROTOCOL_VERSION};

pub const LOCAL_WINDOW_BYTES: u32 = 1024;

pub fn ok(version: u32, len: u32) -> bool {
    version == PROTOCOL_VERSION && len <= MAX_IO_BYTES && len >= LOCAL_WINDOW_BYTES
}
