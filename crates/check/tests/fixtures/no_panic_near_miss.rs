// Fixture: near-miss negatives for no-panic-in-lib. Non-panicking
// unwrap_* variants, a waived expect, asserts (allowed), and unwraps
// confined to a #[cfg(test)] module.
pub fn unwrap_variants(v: Option<u64>) -> u64 {
    v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()
}

pub fn waived_expect(v: Option<u64>) -> u64 {
    // check: panic-ok fixture demonstrates the waiver comment
    v.expect("justified")
}

pub fn asserts_are_fine(a: u64, b: u64) {
    assert!(a <= b);
    assert_eq!(a.min(b), a);
    debug_assert_ne!(a, u64::MAX);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u64, String> = Ok(4);
        r.expect("tests are exempt");
        unreachable!("even this is fine in a test");
    }
}
