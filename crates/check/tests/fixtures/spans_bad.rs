// Fixture: true positives for span-discipline. One span recorded
// under a literal that *is* declared (should use the constant), one
// under a name the schema has never heard of.
use crate::trace::{names, root_span, span};

pub fn traced_op() {
    let _declared = span("fix.live");
    let _undeclared = root_span("fix.rogue");
    let _fine = span(names::LIVE_SPAN);
}
