//! Near-misses for L8 persist-ordering that must all stay clean: the
//! journaled commit path, a waived deliberate bypass, non-call uses of
//! the name, and test-module writes.

pub struct Devices;

impl Devices {
    pub fn write_sector(&self, _d: usize, _s: usize, _r: usize, _c: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

pub struct Store {
    devices: Devices,
}

impl Store {
    // The journaled persist leg.
    pub fn write_back_cells(&self, cell: &[u8]) -> Result<(), String> {
        self.devices.write_sector(0, 0, 0, cell)
    }

    // Replay of already-durable records.
    fn replay_journal(&self, cell: &[u8]) -> Result<(), String> {
        self.devices.write_sector(1, 1, 1, cell)
    }

    // The in-place leg of a group commit (records already durable).
    fn apply_write_back(&self, cell: &[u8]) -> Result<(), String> {
        self.devices.write_sector(3, 3, 3, cell)
    }

    // A deliberate bypass, audited at the site.
    pub fn corrupt_for_tests(&self, cell: &[u8]) -> Result<(), String> {
        // check: persist-ok fault injection is deliberately un-journaled
        self.devices.write_sector(2, 2, 2, cell)
    }

    // Mentioning the name without calling it is not a write.
    pub fn describe(&self) -> &'static str {
        "write_sector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_write_raw_sectors() {
        let s = Store { devices: Devices };
        s.devices.write_sector(9, 9, 9, &[0u8; 4]).unwrap();
    }
}
