// Fixture: the complete conversion registry — every promised
// `From` impl present, written with qualified source paths so crate
// attribution resolves lexically.
pub struct DeviceError;
pub struct CodeError;

impl From<stair_store::Error> for DeviceError {
    fn from(_: stair_store::Error) -> Self {
        DeviceError
    }
}
impl From<stair_net::NetError> for DeviceError {
    fn from(_: stair_net::NetError) -> Self {
        DeviceError
    }
}
impl From<stair::Error> for CodeError {
    fn from(_: stair::Error) -> Self {
        CodeError
    }
}
impl From<stair_sd::Error> for CodeError {
    fn from(_: stair_sd::Error) -> Self {
        CodeError
    }
}
impl From<stair_rs::Error> for CodeError {
    fn from(_: stair_rs::Error) -> Self {
        CodeError
    }
}
