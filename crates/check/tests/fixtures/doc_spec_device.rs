// Fixture: a DeviceSpec with two schemes; README fixtures either
// document both (`file:`, `mem:`) or miss one.
pub enum DeviceSpec {
    File { dir: String },
    Mem { bytes: u64 },
}

impl DeviceSpec {
    pub fn scheme(&self) -> &'static str {
        match self {
            DeviceSpec::File { .. } => "file",
            DeviceSpec::Mem { .. } => "mem",
        }
    }
}
