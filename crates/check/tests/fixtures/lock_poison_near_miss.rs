// Fixture: near-miss negatives for lock-poison. Every site here is
// legal: the approved idiom, a justified waiver, an io::Read::read
// call (arguments — not a guard acquisition), and a deferred guard.
use std::io::Read;
use std::sync::{Mutex, PoisonError, RwLock};

pub fn idiom_closure(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

pub fn idiom_path(l: &RwLock<u64>) -> u64 {
    *l.read().unwrap_or_else(PoisonError::into_inner)
}

pub fn waived(m: &Mutex<u64>) -> u64 {
    // check: lock-ok fixture demonstrates the waiver comment
    *m.lock().unwrap()
}

pub fn io_read_is_not_a_guard(r: &mut impl Read) -> u64 {
    let mut buf = [0u8; 8];
    r.read(&mut buf).unwrap();
    u64::from_le_bytes(buf)
}

pub fn deferred_consumption(m: &Mutex<u64>) -> u64 {
    let guard = m.lock();
    *guard.unwrap_or_else(|e| e.into_inner())
}
