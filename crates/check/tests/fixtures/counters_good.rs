// Fixture: near-miss negatives for counter-discipline. Every counter
// field has a writer and a reader; every metric name has a second
// mention — a literal matching a format! pattern, a waived one-off,
// and a plain string that is not a metric at all.
use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) struct Counters {
    used_counter: AtomicU64,
}

impl Counters {
    pub fn bump(&self) {
        self.used_counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(&self) -> u64 {
        self.used_counter.load(Ordering::Relaxed)
    }
}

pub fn register(registry: &Registry, kind: &str) {
    registry.counter(&format!("fix.ops.{kind}"));
    registry.counter("fix.ops.read");
    // check: metric-ok fixture demonstrates the waiver comment
    registry.gauge("fix.lonely_gauge");
    open("not_a_metric.bin");
}
