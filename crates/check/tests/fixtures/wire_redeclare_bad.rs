// Fixture: true positive for wire-constants — a client redeclaring a
// cap instead of importing it from protocol.rs.
pub const MAX_IO_BYTES: u32 = 4 * 1024 * 1024;

pub fn chunk(len: usize) -> usize {
    len.min(MAX_IO_BYTES as usize)
}
