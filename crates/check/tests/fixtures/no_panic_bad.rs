// Fixture: true positives for no-panic-in-lib. Three violations in
// library code: a bare unwrap, an expect, and a panic! macro.
pub fn bare_unwrap(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn bare_expect(v: Option<u64>) -> u64 {
    v.expect("must exist")
}

pub fn explicit_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}
