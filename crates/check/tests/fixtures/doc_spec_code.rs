// Fixture: a CodecSpec with two families; README fixtures either
// document both (`stair:`, `xor:`) or miss one.
pub enum CodecSpec {
    Stair { n: usize },
    Xor { n: usize },
}

impl CodecSpec {
    pub fn family(&self) -> &'static str {
        match self {
            CodecSpec::Stair { .. } => "stair",
            CodecSpec::Xor { .. } => "xor",
        }
    }
}
