// Fixture: true positives for counter-discipline. `dead_counter` is
// declared but never touched; `orphan.metric` is registered exactly
// once with nothing consuming it.
use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) struct Counters {
    live_counter: AtomicU64,
    dead_counter: AtomicU64,
}

impl Counters {
    pub fn bump(&self) {
        self.live_counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(&self) -> u64 {
        self.live_counter.load(Ordering::Relaxed)
    }
}

pub fn register(registry: &Registry) {
    registry.counter("orphan.metric");
}
