// Fixture: a coherent mini protocol.rs — dense discriminants, mirrored
// from_u8, full name() coverage, complete ALL.
pub const PROTOCOL_VERSION: u32 = 2;
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;
pub const MAX_IO_BYTES: u32 = 4 * 1024 * 1024;
pub const MAX_BATCH_OPS: u32 = 4096;

pub enum Opcode {
    Hello = 1,
    Status = 2,
}

impl Opcode {
    pub const ALL: [Opcode; 2] = [Opcode::Hello, Opcode::Status];

    pub fn name(self) -> &'static str {
        match self {
            Opcode::Hello => "hello",
            Opcode::Status => "status",
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Opcode::Hello,
            2 => Opcode::Status,
            _ => return None,
        }
    }
}
