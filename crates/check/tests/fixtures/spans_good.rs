// Fixture: near-miss negatives for span-discipline. Every recording
// site goes through a declared constant; string literals appear only
// in non-sink calls and a waived sink call.
use crate::trace::{names, root_span, span};

pub fn traced_op() {
    let _a = span(names::LIVE_SPAN);
    let _b = root_span(names::DEAD_SPAN);
    // A literal in a non-sink call is not a span name.
    log("fix.live");
    // check: span-ok exercising the waiver path in this fixture
    let _waived = span("fix.waived");
}

fn log(_msg: &str) {}
