// Fixture: the span-name schema as stair-obs declares it — a `names`
// module of string constants. `DEAD_SPAN` is declared but nothing in
// the fixture workspace records it.
pub mod names {
    /// A span every fixture records.
    pub const LIVE_SPAN: &str = "fix.live";
    /// Declared, never recorded anywhere.
    pub const DEAD_SPAN: &str = "fix.dead";
    /// All declared names.
    pub const ALL: &[&str] = &[LIVE_SPAN, DEAD_SPAN];
}

pub fn span(_name: &str) {}
pub fn root_span(_name: &str) {}
