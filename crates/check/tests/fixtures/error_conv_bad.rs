// Fixture: true positive for error-conversions — the net → DeviceError
// conversion is missing (a near-miss `TryFrom` does not count), the
// other four are present.
pub struct DeviceError;
pub struct CodeError;

impl From<stair_store::Error> for DeviceError {
    fn from(_: stair_store::Error) -> Self {
        DeviceError
    }
}
impl TryFrom<stair_net::NetError> for DeviceError {
    type Error = ();
    fn try_from(_: stair_net::NetError) -> Result<Self, ()> {
        Ok(DeviceError)
    }
}
impl From<stair::Error> for CodeError {
    fn from(_: stair::Error) -> Self {
        CodeError
    }
}
impl From<stair_sd::Error> for CodeError {
    fn from(_: stair_sd::Error) -> Self {
        CodeError
    }
}
impl From<stair_rs::Error> for CodeError {
    fn from(_: stair_rs::Error) -> Self {
        CodeError
    }
}
