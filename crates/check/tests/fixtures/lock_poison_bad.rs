// Fixture: true positives for lock-poison. Three violations: a mutex
// unwrap, an rwlock-read expect, and an unwrap_or_else whose closure
// does NOT recover via into_inner.
use std::sync::{Mutex, RwLock};

pub fn mutex_unwrap(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

pub fn rwlock_expect(l: &RwLock<u64>) -> u64 {
    *l.read().expect("poisoned")
}

pub fn lazy_without_recovery(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(|_| panic!("still panics"))
}
