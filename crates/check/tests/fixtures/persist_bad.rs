//! True positives for L8 persist-ordering: in-place sector writes in
//! `crates/store` outside the journaled commit path.

pub struct Devices;

impl Devices {
    pub fn write_sector(&self, _d: usize, _s: usize, _r: usize, _c: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

pub struct Store {
    devices: Devices,
}

impl Store {
    // Violation: a write path that skips the journal entirely.
    pub fn sneaky_overwrite(&self, cell: &[u8]) -> Result<(), String> {
        self.devices.write_sector(0, 1, 2, cell)
    }

    // Violation: helper with an innocuous name, still un-journaled.
    fn flush_cache_line(&self, cell: &[u8]) -> Result<(), String> {
        self.devices.write_sector(3, 4, 5, cell)
    }

    // Allowed: the journaled persist leg.
    pub fn write_back_cells(&self, cell: &[u8]) -> Result<(), String> {
        self.devices.write_sector(0, 0, 0, cell)
    }

    // Allowed: replaying already-durable journal records.
    fn replay_journal(&self, cell: &[u8]) -> Result<(), String> {
        self.devices.write_sector(0, 0, 0, cell)
    }
}
