// Fixture: true positives for the reserved metric-name checks. One
// sink literal duplicating a declared name (should use the constant),
// one literal forking the reserved prefix with a name the schema has
// never heard of — and `FIX_DEAD` left unregistered by anything.
use crate::registry::{metric_names, Registry};

pub fn register(registry: &Registry) {
    registry.counter("fixcache.hit");
    registry.counter("fixcache.rogue");
    registry.counter(metric_names::FIX_HIT);
}
