// Fixture: near-miss negatives for the reserved metric-name checks.
// Every registration goes through a declared constant; a reserved
// string appears only in a non-sink call and a waived sink call.
use crate::registry::{metric_names, Registry};

pub fn register(registry: &Registry) {
    registry.counter(metric_names::FIX_HIT);
    registry.gauge(metric_names::FIX_DEAD);
    // A reserved string in a non-sink call is not a registration.
    log("fixcache.hit");
    // check: metric-ok fixture demonstrates the waiver comment
    registry.counter("fixcache.waived");
}

fn log(_msg: &str) {}
