// Fixture: an incoherent protocol.rs. Deliberate defects:
//   * discriminants 1 and 3 — the table has a gap at 2;
//   * from_u8 is missing the Status arm and accepts an undeclared 9;
//   * name() has no arm for Status;
//   * ALL is missing Status.
pub const PROTOCOL_VERSION: u32 = 2;
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

pub enum Opcode {
    Hello = 1,
    Status = 3,
}

impl Opcode {
    pub const ALL: [Opcode; 1] = [Opcode::Hello];

    pub fn name(self) -> &'static str {
        match self {
            Opcode::Hello => "hello",
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Opcode::Hello,
            9 => Opcode::Hello,
            _ => return None,
        }
    }
}
