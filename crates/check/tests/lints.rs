//! Per-lint fixture tests: each lint gets at least one true-positive
//! and one near-miss-negative workspace, assembled in a temp directory
//! from the snippets under `tests/fixtures/` and run through the full
//! pipeline (`stair_check::run`), baseline included.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use stair_check::findings::Lint;
use stair_check::{run, Config, Report};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// Reads a fixture snippet.
fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Builds a throwaway workspace from `(rel-path, contents)` pairs: the
/// root `Cargo.toml` member list is derived from the `crates/<name>/…`
/// paths used.
fn build_ws(files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stair-check-fix-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let mut members: Vec<String> = files
        .iter()
        .filter_map(|(p, _)| {
            let mut it = p.split('/');
            match (it.next(), it.next()) {
                (Some("crates"), Some(name)) => Some(format!("crates/{name}")),
                _ => None,
            }
        })
        .collect();
    members.sort();
    members.dedup();
    let mut manifest = String::from("[workspace]\nmembers = [\n");
    for m in &members {
        manifest.push_str(&format!("    \"{m}\",\n"));
    }
    manifest.push_str("]\n");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("Cargo.toml"), manifest).unwrap();
    for (rel, contents) in files {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }
    dir
}

/// Runs the pipeline on a fixture workspace.
fn run_ws(files: &[(&str, &str)]) -> Report {
    let dir = build_ws(files);
    run(&Config::new(&dir)).expect("fixture workspace must load")
}

/// The active findings of one lint.
fn of(report: &Report, lint: Lint) -> Vec<String> {
    report
        .findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| format!("{}:{} {}", f.file, f.line, f.message))
        .collect()
}

// ---- L1 lock-poison ------------------------------------------------

#[test]
fn lock_poison_true_positives() {
    let bad = fixture("lock_poison_bad.rs");
    let r = run_ws(&[("crates/misc/src/lib.rs", &bad)]);
    let hits = of(&r, Lint::LockPoison);
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("unwrap")));
    assert!(hits.iter().any(|h| h.contains("expect")));
    assert_ne!(r.exit_code(), 0);
}

#[test]
fn lock_poison_near_misses_stay_clean() {
    let ok = fixture("lock_poison_near_miss.rs");
    let r = run_ws(&[("crates/misc/src/lib.rs", &ok)]);
    assert_eq!(of(&r, Lint::LockPoison), Vec::<String>::new());
    // The waiver shows up in the audit trail.
    assert!(r.waivers.iter().any(|w| w.key == "lock-ok"));
}

// ---- L2 no-panic-in-lib --------------------------------------------

#[test]
fn no_panic_true_positives_in_zone_crate() {
    let bad = fixture("no_panic_bad.rs");
    let r = run_ws(&[("crates/store/src/lib.rs", &bad)]);
    let hits = of(&r, Lint::NoPanicInLib);
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert_ne!(r.exit_code(), 0);
}

#[test]
fn no_panic_ignores_non_zone_crates_bins_and_tests() {
    let bad = fixture("no_panic_bad.rs");
    // Same violations, but in a non-zone crate, a binary, and an
    // integration test: all exempt.
    let r = run_ws(&[
        ("crates/cli/src/lib.rs", &bad),
        ("crates/store/src/main.rs", &bad),
        ("crates/store/tests/a_test.rs", &bad),
    ]);
    assert_eq!(of(&r, Lint::NoPanicInLib), Vec::<String>::new());
}

#[test]
fn no_panic_near_misses_stay_clean() {
    let ok = fixture("no_panic_near_miss.rs");
    let r = run_ws(&[("crates/store/src/lib.rs", &ok)]);
    assert_eq!(of(&r, Lint::NoPanicInLib), Vec::<String>::new());
}

#[test]
fn index_lint_is_opt_in() {
    let src = "pub fn f(v: &[u8], i: usize) -> u8 { v[i] }\n";
    let files = [("crates/store/src/lib.rs", src)];
    let quiet = run_ws(&files);
    assert_eq!(of(&quiet, Lint::IndexInLib), Vec::<String>::new());
    let dir = build_ws(&files);
    let mut cfg = Config::new(&dir);
    cfg.deny.push("index-in-lib".into());
    let loud = run(&cfg).unwrap();
    assert_eq!(of(&loud, Lint::IndexInLib).len(), 1);
}

// ---- L3 wire-constants ---------------------------------------------

#[test]
fn wire_incoherent_protocol_is_flagged() {
    let bad = fixture("wire_protocol_bad.rs");
    let r = run_ws(&[("crates/net/src/protocol.rs", &bad)]);
    let hits = of(&r, Lint::WireConstants);
    assert!(
        hits.iter().any(|h| h.contains("not dense")),
        "want density finding in {hits:?}"
    );
    assert!(hits.iter().any(|h| h.contains("from_u8 has no arm")));
    assert!(hits.iter().any(|h| h.contains("from_u8 accepts 9")));
    assert!(hits.iter().any(|h| h.contains("name() has no arm")));
    assert!(hits.iter().any(|h| h.contains("`Opcode::ALL` is missing")));
}

#[test]
fn wire_redeclaration_is_flagged_import_is_not() {
    let proto = fixture("wire_protocol_good.rs");
    let redecl = fixture("wire_redeclare_bad.rs");
    let imports = fixture("wire_use_good.rs");
    let r = run_ws(&[
        ("crates/net/src/protocol.rs", &proto),
        ("crates/net/src/client.rs", &redecl),
        ("crates/net/src/server.rs", &imports),
    ]);
    let hits = of(&r, Lint::WireConstants);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].contains("client.rs"));
    assert!(hits[0].contains("MAX_IO_BYTES"));
}

#[test]
fn wire_coherent_protocol_is_clean() {
    let proto = fixture("wire_protocol_good.rs");
    let imports = fixture("wire_use_good.rs");
    let r = run_ws(&[
        ("crates/net/src/protocol.rs", &proto),
        ("crates/net/src/server.rs", &imports),
    ]);
    assert_eq!(of(&r, Lint::WireConstants), Vec::<String>::new());
}

// ---- L4 error-conversions ------------------------------------------

#[test]
fn missing_from_impl_is_flagged() {
    let bad = fixture("error_conv_bad.rs");
    let r = run_ws(&[("crates/device/src/error.rs", &bad)]);
    let hits = of(&r, Lint::ErrorConversions);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].contains("NetError"));
    assert!(hits[0].contains("DeviceError"));
}

#[test]
fn complete_registry_is_clean() {
    let good = fixture("error_conv_good.rs");
    let r = run_ws(&[("crates/device/src/error.rs", &good)]);
    assert_eq!(of(&r, Lint::ErrorConversions), Vec::<String>::new());
}

// ---- L5 doc-drift --------------------------------------------------

#[test]
fn doc_drift_flags_undocumented_names() {
    let r = run_ws(&[
        (
            "crates/net/src/protocol.rs",
            &fixture("wire_protocol_good.rs"),
        ),
        ("crates/device/src/spec.rs", &fixture("doc_spec_device.rs")),
        ("crates/code/src/spec.rs", &fixture("doc_spec_code.rs")),
        ("README.md", &fixture("doc_readme_bad.md")),
    ]);
    let hits = of(&r, Lint::DocDrift);
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("`status`")));
    assert!(hits.iter().any(|h| h.contains("`mem`")));
    assert!(hits.iter().any(|h| h.contains("`xor`")));
}

#[test]
fn doc_drift_complete_readme_is_clean() {
    let r = run_ws(&[
        (
            "crates/net/src/protocol.rs",
            &fixture("wire_protocol_good.rs"),
        ),
        ("crates/device/src/spec.rs", &fixture("doc_spec_device.rs")),
        ("crates/code/src/spec.rs", &fixture("doc_spec_code.rs")),
        ("README.md", &fixture("doc_readme_good.md")),
    ]);
    assert_eq!(of(&r, Lint::DocDrift), Vec::<String>::new());
}

// ---- L6 counter-discipline -----------------------------------------

#[test]
fn dead_counters_and_orphan_metrics_are_flagged() {
    let bad = fixture("counters_bad.rs");
    let r = run_ws(&[("crates/store/src/store.rs", &bad)]);
    let hits = of(&r, Lint::CounterDiscipline);
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("dead_counter")));
    assert!(hits.iter().any(|h| h.contains("orphan.metric")));
}

#[test]
fn wired_counters_and_matched_metrics_are_clean() {
    let good = fixture("counters_good.rs");
    let r = run_ws(&[("crates/store/src/store.rs", &good)]);
    assert_eq!(of(&r, Lint::CounterDiscipline), Vec::<String>::new());
}

#[test]
fn reserved_metric_literals_and_dead_declared_names_are_flagged() {
    let registry = fixture("counters_registry.rs");
    let bad = fixture("counters_reserved_bad.rs");
    let doc = fixture("counters_reserved_doc.md");
    let r = run_ws(&[
        ("crates/obs/src/registry.rs", &registry),
        ("crates/cache/src/lib.rs", &bad),
        ("README.md", &doc),
    ]);
    let hits = of(&r, Lint::CounterDiscipline);
    assert_eq!(hits.len(), 5, "{hits:?}");
    // A literal that duplicates a declared name points at the constant…
    assert!(hits
        .iter()
        .any(|h| h.contains("`fixcache.hit`") && h.contains("metric_names::FIX_HIT")));
    // … a literal nobody declared asks for a declaration …
    assert!(hits
        .iter()
        .any(|h| h.contains("`fixcache.rogue`") && h.contains("not declared")));
    // … a declared name nothing registers is dead schema …
    assert!(hits
        .iter()
        .any(|h| h.contains("`fixcache.dead`") && h.contains("never registered")));
    // … and the check-2 consequences: the rogue fork has no second
    // mention, and the dead name's doc line points at nothing.
    assert!(hits
        .iter()
        .any(|h| h.contains("fixcache.rogue") && h.contains("exactly once")));
    assert!(hits
        .iter()
        .any(|h| h.contains("fixcache.dead") && h.contains("never produced")));
}

#[test]
fn constant_metric_registrations_and_waived_literals_are_clean() {
    let registry = fixture("counters_registry.rs");
    let good = fixture("counters_reserved_good.rs");
    let doc = fixture("counters_reserved_doc.md");
    let r = run_ws(&[
        ("crates/obs/src/registry.rs", &registry),
        ("crates/cache/src/lib.rs", &good),
        ("README.md", &doc),
    ]);
    assert_eq!(of(&r, Lint::CounterDiscipline), Vec::<String>::new());
}

// ---- L7 span-discipline --------------------------------------------

#[test]
fn literal_and_dead_span_names_are_flagged() {
    let obs = fixture("spans_obs.rs");
    let bad = fixture("spans_bad.rs");
    let r = run_ws(&[
        ("crates/obs/src/trace.rs", &obs),
        ("crates/store/src/lib.rs", &bad),
    ]);
    let hits = of(&r, Lint::SpanDiscipline);
    assert_eq!(hits.len(), 3, "{hits:?}");
    // A literal that duplicates a declared name points at the constant…
    assert!(hits
        .iter()
        .any(|h| h.contains("fix.live") && h.contains("names::LIVE_SPAN")));
    // … a literal nobody declared asks for a declaration …
    assert!(hits
        .iter()
        .any(|h| h.contains("fix.rogue") && h.contains("not declared")));
    // … and a declared name nothing records is dead schema.
    assert!(hits
        .iter()
        .any(|h| h.contains("fix.dead") && h.contains("never recorded")));
}

#[test]
fn constant_span_names_and_waived_literals_are_clean() {
    let obs = fixture("spans_obs.rs");
    let good = fixture("spans_good.rs");
    let r = run_ws(&[
        ("crates/obs/src/trace.rs", &obs),
        ("crates/store/src/lib.rs", &good),
    ]);
    assert_eq!(of(&r, Lint::SpanDiscipline), Vec::<String>::new());
}

// ---- L8 persist-ordering -------------------------------------------

#[test]
fn unjournaled_sector_writes_are_flagged() {
    let bad = fixture("persist_bad.rs");
    let r = run_ws(&[("crates/store/src/store.rs", &bad)]);
    let hits = of(&r, Lint::PersistOrdering);
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("sneaky_overwrite")));
    assert!(hits.iter().any(|h| h.contains("flush_cache_line")));
    assert_ne!(r.exit_code(), 0);
}

#[test]
fn persist_ordering_scope_is_store_lib_only() {
    let bad = fixture("persist_bad.rs");
    // The same call sites in the defining module, another crate, a
    // store binary, and an integration test are all out of scope.
    let r = run_ws(&[
        ("crates/store/src/device.rs", &bad),
        ("crates/net/src/lib.rs", &bad),
        ("crates/store/src/main.rs", &bad),
        ("crates/store/tests/crash.rs", &bad),
    ]);
    assert_eq!(of(&r, Lint::PersistOrdering), Vec::<String>::new());
}

#[test]
fn journaled_waived_and_test_writes_stay_clean() {
    let ok = fixture("persist_near_miss.rs");
    let r = run_ws(&[("crates/store/src/store.rs", &ok)]);
    assert_eq!(of(&r, Lint::PersistOrdering), Vec::<String>::new());
    // The deliberate bypass shows up in the waiver audit trail.
    assert!(r.waivers.iter().any(|w| w.key == "persist-ok"));
}

// ---- baseline ------------------------------------------------------

#[test]
fn baseline_suppresses_then_goes_stale() {
    let bad = fixture("no_panic_bad.rs");
    let files = [("crates/store/src/lib.rs", bad.as_str())];
    let dir = build_ws(&files);
    let first = run(&Config::new(&dir)).unwrap();
    assert_eq!(of(&first, Lint::NoPanicInLib).len(), 3);

    // Baseline everything (the mini-workspace also trips the registry
    // lints): the run goes clean, findings move aside.
    let mut allow = String::from("# grandfathered\n");
    for f in &first.findings {
        allow.push_str(&format!("{} {} {} legacy\n", f.fingerprint, f.lint, f.file));
    }
    fs::write(dir.join("check.allow"), &allow).unwrap();
    let second = run(&Config::new(&dir)).unwrap();
    assert_eq!(second.exit_code(), 0);
    assert_eq!(second.findings.len(), 0);
    assert_eq!(second.baselined.len(), first.findings.len());

    // Fix the code: the baseline entries are now stale and fail the
    // run until deleted.
    fs::write(
        dir.join("crates/store/src/lib.rs"),
        "pub fn fixed() -> u64 { 7 }\n",
    )
    .unwrap();
    let third = run(&Config::new(&dir)).unwrap();
    assert_ne!(third.exit_code(), 0);
    assert_eq!(of(&third, Lint::StaleBaseline).len(), 3);
}

// ---- self-check ----------------------------------------------------

/// The real workspace must pass its own lints (acceptance criterion:
/// `cargo run -p stair-check -- --json .` exits 0).
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = run(&Config::new(root)).unwrap();
    assert_eq!(
        r.exit_code(),
        0,
        "stair-check findings on the real workspace:\n{}",
        r.render_human()
    );
    assert!(r.files_scanned > 100);
}

// ---- JSON ----------------------------------------------------------

#[test]
fn json_report_carries_findings_and_waivers() {
    let r = run_ws(&[
        ("crates/misc/src/lib.rs", &fixture("lock_poison_bad.rs")),
        (
            "crates/other/src/lib.rs",
            &fixture("lock_poison_near_miss.rs"),
        ),
    ]);
    let json = r.to_json();
    assert!(json.contains("\"lint\": \"lock-poison\""));
    assert!(json.contains("\"fingerprint\""));
    assert!(json.contains("\"key\": \"lock-ok\""));
    assert!(json.contains(&format!("\"active\": {}", r.findings.len())));
}
