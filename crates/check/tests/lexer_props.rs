//! Lexer robustness properties: whatever bytes come in, `lex` never
//! panics, token spans are sound (in-bounds, strictly increasing,
//! non-overlapping), and every non-whitespace byte is covered by
//! exactly one token. Plus literal round-trips: a string / raw string
//! / comment lexes as one token whose span reproduces it exactly.

use proptest::prelude::*;
use stair_check::lexer::{str_contents, TokKind, TokenFile};

/// Asserts the span invariants for `src`'s token stream.
fn assert_sound(src: &str) {
    let tf = TokenFile::lex(src.to_string());
    let mut prev_end = 0usize;
    for (i, t) in tf.toks.iter().enumerate() {
        assert!(t.start < t.end, "token {i} has empty span");
        assert!(t.end <= src.len(), "token {i} ends past EOF");
        assert!(t.start >= prev_end, "token {i} overlaps its predecessor");
        // Gaps between tokens are pure whitespace.
        assert!(
            src.as_bytes()[prev_end..t.start]
                .iter()
                .all(u8::is_ascii_whitespace),
            "uncovered non-whitespace bytes before token {i}"
        );
        // Spans sit on char boundaries so slicing cannot panic.
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        prev_end = t.end;
    }
    assert!(
        src.as_bytes()[prev_end..]
            .iter()
            .all(u8::is_ascii_whitespace),
        "uncovered non-whitespace tail"
    );
}

/// Builds a string from charset indices (the shim has no regex-string
/// strategies, so contents are generated this way).
fn from_charset(charset: &[char], picks: &[usize]) -> String {
    picks.iter().map(|&i| charset[i % charset.len()]).collect()
}

/// Escape-free string-literal contents.
const INNER: &[char] = &[
    'a', 'b', 'z', '0', '9', ' ', '.', ',', '_', '-', ':', ';', '=',
];
/// Raw-string contents may additionally hold quotes and backslashes.
const RAW_INNER: &[char] = &['a', 'q', '"', '\\', ' ', '.', '/', '*'];
/// Rust-ish fragments whose concatenation stresses the tricky lexer
/// paths: raw-string fences, comment openers, stray escapes.
const PIECES: &[&str] = &[
    "r#\"",
    "\"#",
    "\"",
    "'",
    "b\"",
    "r#x",
    "//",
    "/*",
    "*/",
    "\\",
    "\n",
    "ident",
    "'a",
    "0x1f",
    "1.5",
    "::",
    "=>",
    "#[cfg(test)]",
    "r\"",
    "…",
    "b'q'",
    "$",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded) never panic the lexer and
    /// always produce a sound token stream.
    #[test]
    fn random_bytes_lex_soundly(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_sound(&src);
    }

    /// Rust-ish soup — quotes, fences, slashes, idents — also lexes
    /// soundly (this is the region where raw strings and nested
    /// comments live).
    #[test]
    fn rusty_soup_lexes_soundly(picks in proptest::collection::vec(0usize..PIECES.len(), 0..40)) {
        let src: String = picks.iter().map(|&i| PIECES[i]).collect();
        assert_sound(&src);
    }

    /// A plain string literal with arbitrary escape-free contents is
    /// one `Str` token whose span round-trips the literal exactly.
    #[test]
    fn plain_strings_round_trip(picks in proptest::collection::vec(0usize..INNER.len(), 0..24)) {
        let inner = from_charset(INNER, &picks);
        let lit = format!("\"{inner}\"");
        let src = format!("x = {lit};");
        let tf = TokenFile::lex(src.clone());
        let strs: Vec<usize> = (0..tf.toks.len())
            .filter(|&i| tf.toks[i].kind == TokKind::Str)
            .collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert_eq!(tf.text(strs[0]), lit.as_str());
        prop_assert_eq!(str_contents(tf.text(strs[0])), inner.as_str());
    }

    /// Raw strings may contain quotes and backslashes; the `#` fence
    /// still delimits exactly one token.
    #[test]
    fn raw_strings_round_trip(picks in proptest::collection::vec(0usize..RAW_INNER.len(), 0..24)) {
        let inner = from_charset(RAW_INNER, &picks);
        // A `"#` inside the contents would close the fence early; the
        // charset cannot produce `#`, so the fence is safe.
        let lit = format!("r#\"{inner}\"#");
        let src = format!("let s = {lit};");
        let tf = TokenFile::lex(src.clone());
        let strs: Vec<usize> = (0..tf.toks.len())
            .filter(|&i| tf.toks[i].kind == TokKind::Str)
            .collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert_eq!(tf.text(strs[0]), lit.as_str());
        prop_assert_eq!(str_contents(tf.text(strs[0])), inner.as_str());
    }

    /// A line comment runs to (not through) the newline, whatever is in
    /// it — including quote and comment openers.
    #[test]
    fn line_comments_round_trip(picks in proptest::collection::vec(0usize..RAW_INNER.len(), 0..24)) {
        let inner = from_charset(RAW_INNER, &picks);
        let src = format!("a //{inner}\nb");
        let tf = TokenFile::lex(src.clone());
        let comments: Vec<usize> = (0..tf.toks.len())
            .filter(|&i| tf.toks[i].kind == TokKind::LineComment)
            .collect();
        prop_assert_eq!(comments.len(), 1);
        prop_assert_eq!(tf.text(comments[0]), format!("//{inner}").as_str());
        // `a` before, `b` after — the comment swallowed nothing else.
        prop_assert_eq!(tf.ctext(0), "a");
        prop_assert_eq!(tf.ctext(1), "b");
    }
}
