//! The findings model: what an analyzer reports, how findings are
//! fingerprinted for the baseline, and the lint registry.

use std::collections::BTreeMap;
use std::fmt;

/// The lints stair-check ships. The string forms are what `--deny` /
/// `--allow`, waiver comments, and the baseline file use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// L1: a poisonable guard (`.lock()`/`.read()`/`.write()`)
    /// consumed with `unwrap`/`expect` instead of the approved
    /// `unwrap_or_else(|e| e.into_inner())` idiom.
    LockPoison,
    /// L2: `unwrap`/`expect`/`panic!`-family calls in library crates.
    NoPanicInLib,
    /// L2b (opt-in via `--deny index-in-lib`): slice/array indexing in
    /// library crates.
    IndexInLib,
    /// L3: wire constants / opcode tables redeclared or incoherent.
    WireConstants,
    /// L4: a registered error type missing its promised `From` impl.
    ErrorConversions,
    /// L5: README tables drifting from the names found in code.
    DocDrift,
    /// L6: declared-but-dead or mentioned-but-undeclared metrics.
    CounterDiscipline,
    /// L7: span names recorded outside the declared `stair-obs` set,
    /// or declared span names nothing ever records.
    SpanDiscipline,
    /// L8: an in-place stripe write-back (`.write_sector(…)`) in
    /// `crates/store` outside the journaled commit path.
    PersistOrdering,
    /// A baseline entry that no current finding matches.
    StaleBaseline,
}

/// Every lint, in reporting order.
pub const ALL_LINTS: [Lint; 10] = [
    Lint::LockPoison,
    Lint::NoPanicInLib,
    Lint::IndexInLib,
    Lint::WireConstants,
    Lint::ErrorConversions,
    Lint::DocDrift,
    Lint::CounterDiscipline,
    Lint::SpanDiscipline,
    Lint::PersistOrdering,
    Lint::StaleBaseline,
];

impl Lint {
    /// The stable string id (`--deny`, baseline, JSON).
    pub fn id(self) -> &'static str {
        match self {
            Lint::LockPoison => "lock-poison",
            Lint::NoPanicInLib => "no-panic-in-lib",
            Lint::IndexInLib => "index-in-lib",
            Lint::WireConstants => "wire-constants",
            Lint::ErrorConversions => "error-conversions",
            Lint::DocDrift => "doc-drift",
            Lint::CounterDiscipline => "counter-discipline",
            Lint::SpanDiscipline => "span-discipline",
            Lint::PersistOrdering => "persist-ordering",
            Lint::StaleBaseline => "stale-baseline",
        }
    }

    /// The waiver keyword accepted in `// check: <key> <reason>`
    /// comments, when the lint is waivable at a site.
    pub fn waiver_key(self) -> Option<&'static str> {
        match self {
            Lint::LockPoison => Some("lock-ok"),
            Lint::NoPanicInLib => Some("panic-ok"),
            Lint::IndexInLib => Some("index-ok"),
            Lint::CounterDiscipline => Some("metric-ok"),
            Lint::SpanDiscipline => Some("span-ok"),
            Lint::PersistOrdering => Some("persist-ok"),
            // Wire/doc/error coherence and baseline freshness are
            // workspace-level facts; a site comment cannot waive them.
            Lint::WireConstants | Lint::ErrorConversions | Lint::DocDrift | Lint::StaleBaseline => {
                None
            }
        }
    }

    /// Whether the lint runs without an explicit `--deny`.
    pub fn on_by_default(self) -> bool {
        !matches!(self, Lint::IndexInLib)
    }

    /// One-line rule statement (for `--list` and docs).
    pub fn describe(self) -> &'static str {
        match self {
            Lint::LockPoison => {
                "poisonable lock guards must use `unwrap_or_else(|e| e.into_inner())`"
            }
            Lint::NoPanicInLib => "no unwrap/expect/panic! in library crates",
            Lint::IndexInLib => "no slice/array indexing in library crates (opt-in)",
            Lint::WireConstants => "wire constants and opcode tables must agree with protocol.rs",
            Lint::ErrorConversions => "registered error types need their promised From impls",
            Lint::DocDrift => "README tables must name every opcode/scheme/codec family in code",
            Lint::CounterDiscipline => "every metric must be both produced and consumed somewhere",
            Lint::SpanDiscipline => {
                "span names live in stair-obs `names`: record only declared names, declare only \
                 recorded ones"
            }
            Lint::PersistOrdering => {
                "in crates/store, sectors are written in place only from the journaled commit \
                 path (write_back_cells / apply_write_back / replay_journal)"
            }
            Lint::StaleBaseline => "check.allow entries must match a current finding",
        }
    }

    /// Parses a lint id.
    pub fn from_id(s: &str) -> Option<Lint> {
        ALL_LINTS.iter().copied().find(|l| l.id() == s)
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One reported problem.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub lint: Lint,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: u32,
    /// 1-based column (0 when not meaningful).
    pub col: u32,
    /// Human explanation, including how to fix or waive.
    pub message: String,
    /// Stable identity for the baseline: independent of line numbers,
    /// derived from the lint, file, and the offending context.
    pub fingerprint: String,
}

impl Finding {
    /// Builds a finding; `context` feeds the fingerprint and should be
    /// stable under unrelated edits (e.g. the trimmed source line, or
    /// the drifting name itself).
    pub fn new(
        lint: Lint,
        file: &str,
        line: u32,
        col: u32,
        message: String,
        context: &str,
    ) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            col,
            message,
            fingerprint: fingerprint(lint, file, context, 0),
        }
    }
}

/// FNV-1a over the identity tuple, rendered as 16 hex chars. `dup`
/// disambiguates several identical contexts in one file.
pub fn fingerprint(lint: Lint, file: &str, context: &str, dup: u32) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(lint.id().as_bytes());
    eat(b"|");
    eat(file.as_bytes());
    eat(b"|");
    // Collapse runs of whitespace so formatting changes do not move
    // fingerprints.
    let mut last_ws = false;
    for ch in context.chars() {
        if ch.is_whitespace() {
            if !last_ws {
                eat(b" ");
            }
            last_ws = true;
        } else {
            let mut buf = [0u8; 4];
            eat(ch.encode_utf8(&mut buf).as_bytes());
            last_ws = false;
        }
    }
    eat(b"|");
    eat(&dup.to_le_bytes());
    format!("{h:016x}")
}

/// Re-fingerprints a finding list so that several findings sharing one
/// (lint, file, context) get distinct, deterministic `dup` indices in
/// report order. Call once after all analyzers ran.
pub fn disambiguate(findings: &mut [Finding]) {
    let mut seen: BTreeMap<String, u32> = BTreeMap::new();
    for f in findings.iter_mut() {
        let n = seen.entry(f.fingerprint.clone()).or_insert(0);
        if *n > 0 {
            // Derive a fresh print from the colliding one.
            f.fingerprint = fingerprint(f.lint, &f.file, &f.fingerprint, *n);
        }
        *n += 1;
    }
}

/// A waiver comment found in source: `// check: <key> <reason>`.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The waiver keyword (e.g. `lock-ok`).
    pub key: String,
    /// Justification text after the keyword.
    pub reason: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the comment sits on.
    pub line: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = fingerprint(Lint::LockPoison, "x.rs", "let  a =  1;", 0);
        let b = fingerprint(Lint::LockPoison, "x.rs", "let a = 1;", 0);
        assert_eq!(a, b, "whitespace runs collapse");
        let c = fingerprint(Lint::LockPoison, "y.rs", "let a = 1;", 0);
        assert_ne!(a, c);
        let d = fingerprint(Lint::NoPanicInLib, "x.rs", "let a = 1;", 0);
        assert_ne!(a, d);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn duplicate_contexts_get_distinct_prints() {
        let f = |i| Finding::new(Lint::NoPanicInLib, "a.rs", i, 1, "m".into(), "x.unwrap()");
        let mut v = vec![f(1), f(5), f(9)];
        disambiguate(&mut v);
        assert_ne!(v[0].fingerprint, v[1].fingerprint);
        assert_ne!(v[1].fingerprint, v[2].fingerprint);
    }

    #[test]
    fn lint_ids_round_trip() {
        for l in ALL_LINTS {
            assert_eq!(Lint::from_id(l.id()), Some(l));
        }
        assert_eq!(Lint::from_id("nope"), None);
    }
}
