//! Workspace discovery: which files exist, which crate each belongs
//! to, what role it plays (library source, test, bench, …), where its
//! `#[cfg(test)]` modules sit, and which waiver comments it carries.

use std::fs;
use std::path::{Path, PathBuf};

use crate::findings::Waiver;
use crate::lexer::{TokKind, TokenFile};

/// The role a file plays, which decides which lints apply to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A crate's library source (`src/` minus binary entry points).
    LibSrc,
    /// A binary entry point (`src/main.rs`, `src/bin/…`).
    BinSrc,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

impl FileKind {
    /// String form for JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            FileKind::LibSrc => "lib",
            FileKind::BinSrc => "bin",
            FileKind::Test => "test",
            FileKind::Bench => "bench",
            FileKind::Example => "example",
        }
    }
}

/// One lexed source file plus everything analyzers ask about it.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The owning crate's directory name (`store`, `net`,
    /// `shims/rand`, or `.` for the root package).
    pub crate_name: String,
    /// Role.
    pub kind: FileKind,
    /// Lexed content.
    pub tf: TokenFile,
    /// Byte ranges covered by `#[cfg(test)]` modules.
    pub test_spans: Vec<(usize, usize)>,
    /// `// check: <key> <reason>` comments.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// `true` when byte offset `at` falls inside a `#[cfg(test)]` module.
    pub fn in_test_span(&self, at: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// `true` when the file as a whole is test-only code (integration
    /// tests, benches, examples).
    pub fn is_test_like(&self) -> bool {
        matches!(
            self.kind,
            FileKind::Test | FileKind::Bench | FileKind::Example
        )
    }

    /// Looks for a waiver with `key` on `line` or the line above it —
    /// the two attachment points the waiver grammar allows.
    pub fn waived(&self, key: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.key == key && (w.line == line || w.line + 1 == line))
    }
}

/// A loaded workspace: lexed sources plus the prose docs some lints
/// cross-check.
pub struct Workspace {
    /// Absolute root.
    pub root: PathBuf,
    /// Every `.rs` file found, lexed.
    pub files: Vec<SourceFile>,
    /// `(rel-path, contents)` for README.md / EXPERIMENTS.md when
    /// present.
    pub docs: Vec<(String, String)>,
}

impl Workspace {
    /// Walks the workspace at `root`. Reads the root `Cargo.toml` for
    /// the member list; falls back to scanning `crates/*` when absent.
    ///
    /// # Errors
    ///
    /// Returns a rendered message when the root is unreadable.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let root = root
            .canonicalize()
            .map_err(|e| format!("cannot open workspace root {}: {e}", root.display()))?;
        let manifest = fs::read_to_string(root.join("Cargo.toml"))
            .map_err(|e| format!("cannot read {}/Cargo.toml: {e}", root.display()))?;
        let mut members = parse_members(&manifest);
        // The root package itself (umbrella crate), if it has sources.
        members.push(String::from("."));

        let mut files = Vec::new();
        for member in &members {
            let dir = if member == "." {
                root.clone()
            } else {
                root.join(member)
            };
            let crate_name = member
                .strip_prefix("crates/")
                .unwrap_or(member.as_str())
                .to_string();
            for (sub, kind) in [
                ("src", FileKind::LibSrc),
                ("tests", FileKind::Test),
                ("benches", FileKind::Bench),
                ("examples", FileKind::Example),
            ] {
                let base = dir.join(sub);
                if !base.is_dir() {
                    continue;
                }
                let mut paths = Vec::new();
                collect_rs(&base, &mut paths);
                for path in paths {
                    // Fixture files are known-bad on purpose; the
                    // workspace scan must never read them.
                    if path
                        .components()
                        .any(|c| c.as_os_str() == "fixtures" || c.as_os_str() == "target")
                    {
                        continue;
                    }
                    let Ok(text) = fs::read_to_string(&path) else {
                        continue;
                    };
                    let rel = path
                        .strip_prefix(&root)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .replace('\\', "/");
                    // Skip files that belong to a nested member (the
                    // root package walk would otherwise re-add crates/).
                    if member == "." && rel.starts_with("crates/") {
                        continue;
                    }
                    let kind = classify(kind, &rel);
                    let tf = TokenFile::lex(text);
                    let test_spans = find_test_spans(&tf);
                    let waivers = find_waivers(&tf, &rel);
                    files.push(SourceFile {
                        rel,
                        crate_name: crate_name.clone(),
                        kind,
                        tf,
                        test_spans,
                        waivers,
                    });
                }
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));

        let mut docs = Vec::new();
        for name in ["README.md", "EXPERIMENTS.md", "ROADMAP.md"] {
            if let Ok(text) = fs::read_to_string(root.join(name)) {
                docs.push((name.to_string(), text));
            }
        }
        Ok(Workspace { root, files, docs })
    }

    /// The file at workspace-relative path `rel`, if scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// The contents of doc `name`, if present.
    pub fn doc(&self, name: &str) -> Option<&str> {
        self.docs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }
}

/// Demotes a `src` file to a binary entry point when the path says so.
fn classify(base: FileKind, rel: &str) -> FileKind {
    if base == FileKind::LibSrc && (rel.ends_with("/main.rs") || rel.contains("/src/bin/")) {
        FileKind::BinSrc
    } else {
        base
    }
}

/// Pulls the `members = [ "…", … ]` list out of `[workspace]` without a
/// TOML parser: collect quoted strings between the opening bracket of
/// `members` and its closing `]`.
fn parse_members(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let Some(at) = manifest.find("members") else {
        return out;
    };
    let Some(open) = manifest[at..].find('[') else {
        return out;
    };
    let rest = &manifest[at + open + 1..];
    let Some(close) = rest.find(']') else {
        return out;
    };
    for piece in rest[..close].split(',') {
        let m = piece.trim().trim_matches('"');
        if !m.is_empty() && !m.starts_with('#') {
            out.push(m.to_string());
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Finds `#[cfg(test)] mod … { … }` byte spans by walking code tokens:
/// the attribute sequence, any further attributes, `mod name {`, then
/// brace matching to the close.
fn find_test_spans(tf: &TokenFile) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let n = tf.code.len();
    let mut ci = 0;
    while ci < n {
        if is_cfg_test_attr(tf, ci) {
            let start = tf.ctok(ci).start;
            // Skip to the end of this attribute: `#` `[` … matching `]`.
            let mut k = ci + 2; // past `#` `[`
            let mut depth = 1;
            while k < n && depth > 0 {
                match tf.ctext(k) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            // Skip any further attributes between cfg(test) and `mod`.
            while k < n && tf.is_punct(k, "#") {
                let mut d = 0;
                k += 1;
                if tf.is_punct(k, "[") {
                    d = 1;
                    k += 1;
                    while k < n && d > 0 {
                        match tf.ctext(k) {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let _ = d;
            }
            if tf.is_ident(k, "mod") {
                // `mod name { … }` — find the opening brace, match it.
                while k < n && !tf.is_punct(k, "{") && !tf.is_punct(k, ";") {
                    k += 1;
                }
                if tf.is_punct(k, "{") {
                    let mut depth = 1;
                    k += 1;
                    while k < n && depth > 0 {
                        match tf.ctext(k) {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    let end = if k > 0 && k <= n {
                        tf.ctok(k - 1).end
                    } else {
                        tf.src.len()
                    };
                    spans.push((start, end));
                    ci = k;
                    continue;
                }
            }
        }
        ci += 1;
    }
    spans
}

/// `true` when code token `ci` opens `#[cfg(test)]` or
/// `#[cfg(all(test, …))]`.
fn is_cfg_test_attr(tf: &TokenFile, ci: usize) -> bool {
    if !(tf.is_punct(ci, "#") && tf.is_punct(ci + 1, "[") && tf.is_ident(ci + 2, "cfg")) {
        return false;
    }
    // Look for a bare `test` ident inside the attribute brackets.
    let mut k = ci + 3;
    let mut depth = 0;
    while k < tf.code.len() {
        match tf.ctext(k) {
            "[" | "(" => depth += 1,
            "]" if depth == 0 => return false,
            "]" | ")" => depth -= 1,
            "test" if tf.ctok(k).kind == TokKind::Ident => return true,
            _ => {}
        }
        if depth < 0 {
            return false;
        }
        k += 1;
    }
    false
}

/// Extracts `// check: <key> <reason>` waiver comments. Doc comments
/// (`///`, `//!`) never carry waivers — a waiver is an annotation, not
/// documentation.
fn find_waivers(tf: &TokenFile, rel: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (i, t) in tf.toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = tf.text(i);
        let body = text.trim_start_matches('/');
        // After stripping `//`, doc comments leave a leading `/` or `!`
        // that `trim_start_matches('/')` removed or kept as `!`.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let body = body.trim_start();
        let Some(rest) = body.strip_prefix("check:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (key, reason) = match rest.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (rest, ""),
        };
        if key.is_empty() {
            continue;
        }
        out.push(Waiver {
            key: key.to_string(),
            reason: reason.to_string(),
            file: rel.to_string(),
            line: t.line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_list_parses() {
        let m =
            parse_members("[workspace]\nmembers = [\n \"crates/a\",\n \"crates/b\", # note\n]\n");
        assert!(m.contains(&"crates/a".to_string()));
        assert!(m.contains(&"crates/b".to_string()));
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let tf = TokenFile::lex(src.to_string());
        let spans = find_test_spans(&tf);
        assert_eq!(spans.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(spans[0].0 <= src.find("#[cfg").unwrap());
        assert!(unwrap_at > spans[0].0 && unwrap_at < spans[0].1);
        let after = src.find("fn c").unwrap();
        assert!(after >= spans[0].1);
    }

    #[test]
    fn cfg_all_test_also_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { }\nfn keep() {}\n";
        let tf = TokenFile::lex(src.to_string());
        assert_eq!(find_test_spans(&tf).len(), 1);
    }

    #[test]
    fn waivers_parse_and_attach() {
        let src = "// check: lock-ok guards only a counter\nlet g = m.lock().unwrap();\n/// check: lock-ok not a waiver (doc comment)\nfn f() {}\n";
        let tf = TokenFile::lex(src.to_string());
        let w = find_waivers(&tf, "x.rs");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].key, "lock-ok");
        assert_eq!(w[0].reason, "guards only a counter");
        assert_eq!(w[0].line, 1);
    }
}
