//! The `check.allow` baseline: grandfathered findings that do not fail
//! the build, plus the freshness guard that keeps the file honest.
//!
//! Format, one entry per line:
//!
//! ```text
//! # comment
//! <fingerprint> <lint-id> <file> [note…]
//! ```
//!
//! The fingerprint is the identity; the lint id and file are recorded
//! so humans can read the file, and are cross-checked on load. An
//! entry no current finding matches becomes a `stale-baseline` finding
//! — the baseline may only shrink silently, never rot.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::findings::{Finding, Lint};

/// One baseline entry.
#[derive(Clone, Debug)]
pub struct Entry {
    /// The finding fingerprint this entry suppresses.
    pub fingerprint: String,
    /// Lint id recorded next to it (informational).
    pub lint: String,
    /// File recorded next to it (informational).
    pub file: String,
    /// 1-based line in `check.allow`, for stale reports.
    pub line: u32,
}

/// The parsed baseline file.
#[derive(Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Entry>,
    /// The baseline file's workspace-relative name (for messages).
    pub name: String,
}

impl Baseline {
    /// Loads `path`; a missing file is an empty baseline, not an error.
    ///
    /// # Errors
    ///
    /// Returns a rendered message on malformed entries (wrong field
    /// count, non-hex fingerprint) — a corrupt baseline must not
    /// silently allow everything.
    pub fn load(path: &Path, name: &str) -> Result<Baseline, String> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(_) => {
                return Ok(Baseline {
                    entries: Vec::new(),
                    name: name.to_string(),
                })
            }
        };
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(fp), Some(lint), Some(file)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "{name}:{}: malformed baseline entry (want `<fingerprint> <lint> <file> [note]`): {line}",
                    i + 1
                ));
            };
            if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!(
                    "{name}:{}: `{fp}` is not a 16-hex-char fingerprint",
                    i + 1
                ));
            }
            entries.push(Entry {
                fingerprint: fp.to_string(),
                lint: lint.to_string(),
                file: file.to_string(),
                line: i as u32 + 1,
            });
        }
        Ok(Baseline {
            entries,
            name: name.to_string(),
        })
    }

    /// Splits `findings` into (active, baselined) and appends a
    /// `stale-baseline` finding for every entry nothing matched.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let allowed: BTreeSet<&str> = self
            .entries
            .iter()
            .map(|e| e.fingerprint.as_str())
            .collect();
        let mut matched: BTreeSet<String> = BTreeSet::new();
        let mut active = Vec::new();
        let mut baselined = Vec::new();
        for f in findings {
            if allowed.contains(f.fingerprint.as_str()) {
                matched.insert(f.fingerprint.clone());
                baselined.push(f);
            } else {
                active.push(f);
            }
        }
        for e in &self.entries {
            if !matched.contains(&e.fingerprint) {
                active.push(Finding::new(
                    Lint::StaleBaseline,
                    &self.name,
                    e.line,
                    1,
                    format!(
                        "baseline entry `{}` ({} in {}) matches no current finding; delete it",
                        e.fingerprint, e.lint, e.file
                    ),
                    &e.fingerprint,
                ));
            }
        }
        (active, baselined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Lint;

    fn bl(text: &str) -> Baseline {
        let dir = std::env::temp_dir().join(format!("check-bl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("check.allow");
        std::fs::write(&p, text).unwrap();
        Baseline::load(&p, "check.allow").unwrap()
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/check.allow"), "check.allow").unwrap();
        assert!(b.entries.is_empty());
    }

    #[test]
    fn matched_entries_suppress_unmatched_go_stale() {
        let f = Finding::new(Lint::NoPanicInLib, "a.rs", 3, 1, "m".into(), "ctx");
        let fp = f.fingerprint.clone();
        let b = bl(&format!(
            "# header\n{fp} no-panic-in-lib a.rs legacy\ndeadbeefdeadbeef no-panic-in-lib b.rs gone\n"
        ));
        let (active, baselined) = b.apply(vec![f]);
        assert_eq!(baselined.len(), 1);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].lint, Lint::StaleBaseline);
        assert!(active[0].message.contains("deadbeefdeadbeef"));
    }

    #[test]
    fn malformed_entries_error() {
        let dir = std::env::temp_dir().join(format!("check-bl2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("check.allow");
        std::fs::write(&p, "not-a-fingerprint lint file\n").unwrap();
        assert!(Baseline::load(&p, "check.allow").is_err());
    }
}
