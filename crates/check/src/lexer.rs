//! A hand-rolled Rust lexer: the token stream every stair-check
//! analyzer works on.
//!
//! The workspace is offline (no registry access), so there is no
//! `syn`/`proc-macro2` to lean on. The analyzers only need line- and
//! token-level facts — "this `.lock()` call is followed by
//! `.unwrap()`", "this string literal sits inside a `counter(…)`
//! call" — so a faithful *lexer* is enough; no parser is built on top.
//!
//! What it understands, because real source in this repo uses all of
//! it: line and (nested) block comments, string literals with escapes,
//! raw strings `r#"…"#` with any number of `#`s, byte and raw-byte
//! strings, char and byte-char literals, lifetimes (`'a` vs `'a'`),
//! raw identifiers (`r#type`), numeric literals with underscores /
//! base prefixes / type suffixes, and maximal-munch multi-character
//! operators.
//!
//! Guarantees the property tests assert:
//!
//! * lexing **never panics**, whatever bytes come in (malformed input
//!   degrades to best-effort tokens, never an abort);
//! * token spans are in-bounds, non-overlapping, and strictly
//!   increasing, and every non-whitespace byte of the input is covered
//!   by exactly one token — so offsets can be trusted for reporting.

/// What a token is, at the granularity the analyzers care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Integer literal, with any base prefix / suffix.
    Int,
    /// Float literal.
    Float,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nesting respected.
    BlockComment,
    /// Punctuation / operator, maximal munch (`::`, `=>`, `<<`, …).
    Punct,
    /// Bytes the lexer could not classify (stray `\\`, unterminated
    /// quote tails, non-UTF8 survivors). Kept as tokens so coverage
    /// stays total.
    Unknown,
}

/// One token: kind plus its byte span and line/column (1-based).
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column (in bytes) of `start`.
    pub col: u32,
}

/// A lexed file: the source text plus its token stream and an index of
/// the non-comment ("code") tokens most analyzers iterate over.
pub struct TokenFile {
    /// The source text.
    pub src: String,
    /// Every token, in order, comments included.
    pub toks: Vec<Token>,
    /// Indices into `toks` of non-comment tokens.
    pub code: Vec<usize>,
}

impl TokenFile {
    /// Lexes `src` to a token file.
    pub fn lex(src: String) -> TokenFile {
        let toks = lex(&src);
        let code = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokKind::LineComment | TokKind::BlockComment | TokKind::Unknown
                )
            })
            .map(|(i, _)| i)
            .collect();
        TokenFile { src, toks, code }
    }

    /// The text of token `i` (an index into `toks`).
    pub fn text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.src[t.start..t.end]
    }

    /// The text of the `ci`-th *code* token.
    pub fn ctext(&self, ci: usize) -> &str {
        self.text(self.code[ci])
    }

    /// The `ci`-th code token.
    pub fn ctok(&self, ci: usize) -> &Token {
        &self.toks[self.code[ci]]
    }

    /// `true` when code token `ci` exists and is the identifier `s`.
    pub fn is_ident(&self, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.ctok(ci).kind == TokKind::Ident && self.ctext(ci) == s
    }

    /// `true` when code token `ci` exists and is the punct `s`.
    pub fn is_punct(&self, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.ctok(ci).kind == TokKind::Punct && self.ctext(ci) == s
    }

    /// The full line of text containing byte `at` (for messages and
    /// fingerprints), without the trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        self.src.lines().nth(line as usize - 1).unwrap_or("")
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.at + ahead).unwrap_or(&0)
    }

    fn starts_with(&self, s: &str) -> bool {
        // Byte-based: `at` may sit mid-way through a multi-byte char
        // while bumping through a comment or string body.
        self.bytes[self.at..].starts_with(s.as_bytes())
    }

    /// Advances one byte, tracking line/column.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.at += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.at >= self.bytes.len() {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Multi-character operators, longest first so munching is maximal.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        bytes: src.as_bytes(),
        at: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while c.at < c.bytes.len() {
        let b = c.peek(0);
        // Whitespace is skipped, everything else becomes a token.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        let (start, line, col) = (c.at, c.line, c.col);
        let kind = scan_one(&mut c);
        // Defensive: a scanner that consumed nothing would loop forever.
        if c.at == start {
            c.bump();
        }
        out.push(Token {
            kind,
            start,
            end: c.at,
            line,
            col,
        });
    }
    out
}

/// Scans one token starting at the cursor. Always consumes ≥ 1 byte.
fn scan_one(c: &mut Cursor<'_>) -> TokKind {
    let b = c.peek(0);
    if c.starts_with("//") {
        while c.at < c.bytes.len() && c.peek(0) != b'\n' {
            c.bump();
        }
        return TokKind::LineComment;
    }
    if c.starts_with("/*") {
        c.bump_n(2);
        let mut depth = 1usize;
        while c.at < c.bytes.len() && depth > 0 {
            if c.starts_with("/*") {
                depth += 1;
                c.bump_n(2);
            } else if c.starts_with("*/") {
                depth -= 1;
                c.bump_n(2);
            } else {
                c.bump();
            }
        }
        return TokKind::BlockComment;
    }
    // Raw strings / raw identifiers / byte strings before plain idents.
    if b == b'r' || b == b'b' {
        if let Some(kind) = scan_raw_or_byte(c) {
            return kind;
        }
    }
    if is_ident_start(b) && !b.is_ascii_digit() {
        while c.at < c.bytes.len() && is_ident_continue(c.peek(0)) {
            c.bump();
        }
        return TokKind::Ident;
    }
    if b.is_ascii_digit() {
        return scan_number(c);
    }
    if b == b'"' {
        scan_string_body(c, 0, false);
        return TokKind::Str;
    }
    if b == b'\'' {
        return scan_quote(c);
    }
    for p in PUNCTS {
        if c.starts_with(p) {
            c.bump_n(p.len());
            return TokKind::Punct;
        }
    }
    if b.is_ascii_punctuation() {
        c.bump();
        return TokKind::Punct;
    }
    c.bump();
    TokKind::Unknown
}

/// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, `b'…'`.
/// Returns `None` when the `r`/`b` opens a plain identifier instead.
fn scan_raw_or_byte(c: &mut Cursor<'_>) -> Option<TokKind> {
    let b = c.peek(0);
    // How many prefix bytes before a possible raw marker: `r`, `b`, `br`.
    let (prefix, raw_allowed, char_allowed) = match (b, c.peek(1)) {
        (b'r', _) => (1, true, false),
        (b'b', b'r') => (2, true, false),
        (b'b', _) => (1, false, true),
        _ => return None,
    };
    let mut k = prefix;
    let mut hashes = 0usize;
    if raw_allowed {
        while c.peek(k) == b'#' {
            hashes += 1;
            k += 1;
        }
    }
    if c.peek(k) == b'"' && (hashes == 0 || raw_allowed) {
        c.bump_n(k);
        scan_string_body(c, if raw_allowed { hashes } else { 0 }, raw_allowed);
        return Some(TokKind::Str);
    }
    if char_allowed && c.peek(1) == b'\'' {
        c.bump();
        return Some(scan_quote(c));
    }
    // `r#ident` raw identifier.
    if b == b'r' && hashes == 1 && is_ident_start(c.peek(k)) {
        c.bump_n(k);
        while c.at < c.bytes.len() && is_ident_continue(c.peek(0)) {
            c.bump();
        }
        return Some(TokKind::Ident);
    }
    None
}

/// Consumes a string starting at the opening `"`. Raw strings close on
/// `"` followed by `hashes` `#`s and never process escapes; plain
/// strings honour `\`-escapes. Unterminated strings run to EOF.
fn scan_string_body(c: &mut Cursor<'_>, hashes: usize, raw: bool) {
    let escapes = !raw;
    c.bump(); // opening quote
    while c.at < c.bytes.len() {
        if escapes && c.peek(0) == b'\\' {
            c.bump_n(2);
            continue;
        }
        if c.peek(0) == b'"' {
            let mut ok = true;
            for h in 0..hashes {
                if c.peek(1 + h) != b'#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                c.bump_n(1 + hashes);
                return;
            }
        }
        c.bump();
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal) and consumes
/// whichever it is, starting at the `'`.
fn scan_quote(c: &mut Cursor<'_>) -> TokKind {
    let next = c.peek(1);
    if is_ident_start(next) && !next.is_ascii_digit() {
        // `'a` could open either. It is a char literal iff the ident
        // run is followed by a closing quote.
        let mut k = 2;
        while is_ident_continue(c.peek(k)) {
            k += 1;
        }
        if c.peek(k) != b'\'' {
            c.bump(); // '
            while c.at < c.bytes.len() && is_ident_continue(c.peek(0)) {
                c.bump();
            }
            return TokKind::Lifetime;
        }
    }
    // Char literal (possibly escaped, possibly malformed). Consume up
    // to the closing quote on the same line.
    c.bump(); // '
    while c.at < c.bytes.len() {
        match c.peek(0) {
            b'\\' => c.bump_n(2),
            b'\'' => {
                c.bump();
                return TokKind::Char;
            }
            b'\n' => return TokKind::Unknown,
            _ => c.bump(),
        }
    }
    TokKind::Unknown
}

fn scan_number(c: &mut Cursor<'_>) -> TokKind {
    let mut float = false;
    // Base prefix?
    if c.peek(0) == b'0' && matches!(c.peek(1), b'x' | b'o' | b'b') {
        c.bump_n(2);
        while c.at < c.bytes.len() && (c.peek(0).is_ascii_alphanumeric() || c.peek(0) == b'_') {
            c.bump();
        }
        return TokKind::Int;
    }
    while c.at < c.bytes.len() && (c.peek(0).is_ascii_digit() || c.peek(0) == b'_') {
        c.bump();
    }
    // Fractional part: `.` followed by a digit (so `1..4` and `1.foo()`
    // stay integers).
    if c.peek(0) == b'.' && c.peek(1).is_ascii_digit() {
        float = true;
        c.bump();
        while c.at < c.bytes.len() && (c.peek(0).is_ascii_digit() || c.peek(0) == b'_') {
            c.bump();
        }
    }
    // Exponent.
    if matches!(c.peek(0), b'e' | b'E')
        && (c.peek(1).is_ascii_digit()
            || (matches!(c.peek(1), b'+' | b'-') && c.peek(2).is_ascii_digit()))
    {
        float = true;
        c.bump();
        if matches!(c.peek(0), b'+' | b'-') {
            c.bump();
        }
        while c.at < c.bytes.len() && (c.peek(0).is_ascii_digit() || c.peek(0) == b'_') {
            c.bump();
        }
    }
    // Type suffix (`u32`, `f64`, …).
    while c.at < c.bytes.len() && is_ident_continue(c.peek(0)) {
        if matches!(c.peek(0), b'f') && !float {
            float = true; // 1f32
        }
        c.bump();
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

/// Parses an integer literal's value (`0x…`, `0o…`, `0b…`, underscores,
/// type suffix), for the wire-constant evaluator. `None` when the text
/// is not a clean integer.
pub fn int_value(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (digits, radix) = if let Some(rest) = t.strip_prefix("0x") {
        (rest, 16)
    } else if let Some(rest) = t.strip_prefix("0o") {
        (rest, 8)
    } else if let Some(rest) = t.strip_prefix("0b") {
        (rest, 2)
    } else {
        (t.as_str(), 10)
    };
    // Strip a type suffix: the first char that is not a digit of the
    // radix opens the suffix.
    let end = digits
        .char_indices()
        .find(|(_, ch)| !ch.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// Unquotes a string literal token's text to its contents (handles
/// plain, raw, and byte forms; escape sequences are kept verbatim —
/// the analyzers only match names, which never use escapes).
pub fn str_contents(text: &str) -> &str {
    let t = text
        .trim_start_matches('b')
        .trim_start_matches('r')
        .trim_start_matches('#');
    let t = t.strip_prefix('"').unwrap_or(t);
    let t = t.trim_end_matches('#');
    t.strip_suffix('"').unwrap_or(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let tf = TokenFile::lex(src.to_string());
        tf.toks
            .iter()
            .map(|t| (t.kind, src[t.start..t.end].to_string()))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let ks = kinds("let x = 42u32 + 0xFF_u8 << 2;");
        let texts: Vec<&str> = ks.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "42u32", "+", "0xFF_u8", "<<", "2", ";"]
        );
        assert_eq!(ks[3].0, TokKind::Int);
        assert_eq!(ks[6].0, TokKind::Punct);
    }

    #[test]
    fn floats_vs_ranges_vs_methods() {
        let ks = kinds("1.5 1..4 1.max(2) 2e3 1_000.25");
        assert_eq!(ks[0].0, TokKind::Float);
        assert_eq!(ks[1].0, TokKind::Int); // 1
        assert_eq!(ks[2].1, ".."); // range stays punct
        assert_eq!(ks[4].0, TokKind::Int); // 1 before .max
        assert_eq!(ks[5].1, ".");
        assert_eq!(ks[6].1, "max");
        let last = &ks[ks.len() - 1];
        assert_eq!(last.0, TokKind::Float);
        assert_eq!(last.1, "1_000.25");
    }

    #[test]
    fn strings_raw_strings_chars_lifetimes() {
        let src = r####"f("a\"b", r#"raw "inner" ok"#, 'x', '\n', b'q', &'a str)"####;
        let ks = kinds(src);
        let strs: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[1].1, r###"r#"raw "inner" ok"#"###);
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 3);
        assert!(ks.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let ks = kinds("a /* x /* y */ z */ b // tail\nc");
        let texts: Vec<&str> = ks.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["a", "/* x /* y */ z */", "b", "// tail", "c"]);
        assert_eq!(ks[1].0, TokKind::BlockComment);
        assert_eq!(ks[3].0, TokKind::LineComment);
    }

    #[test]
    fn line_and_column_tracking() {
        let tf = TokenFile::lex("ab\n  cd".to_string());
        assert_eq!((tf.toks[0].line, tf.toks[0].col), (1, 1));
        assert_eq!((tf.toks[1].line, tf.toks[1].col), (2, 3));
    }

    #[test]
    fn int_values_parse() {
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("4096u32"), Some(4096));
        assert_eq!(int_value("0xFF_u8"), Some(255));
        assert_eq!(int_value("0b101"), Some(5));
        assert_eq!(int_value("1_000_000"), Some(1_000_000));
        assert_eq!(int_value("x"), None);
    }

    #[test]
    fn str_contents_unquotes() {
        assert_eq!(str_contents("\"abc\""), "abc");
        assert_eq!(str_contents("r#\"a.b\"#"), "a.b");
        assert_eq!(str_contents("b\"xy\""), "xy");
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ks = kinds("r#type r#match x");
        assert_eq!(ks.len(), 3);
        assert!(ks.iter().all(|(k, _)| *k == TokKind::Ident));
    }
}
