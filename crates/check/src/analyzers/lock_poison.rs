//! L1 `lock-poison`: the PR 3 soundness rule. A poisoned mutex only
//! means *some other thread panicked mid-hold*; the data's integrity
//! story is the checksum layer, not the poison flag. So a poisonable
//! guard must never be consumed with `unwrap`/`expect` — that converts
//! one thread's panic into a cascading denial of service. The approved
//! idiom is `unwrap_or_else(|e| e.into_inner())` (or
//! `unwrap_or_else(PoisonError::into_inner)`).

use crate::findings::{Finding, Lint};
use crate::workspace::{SourceFile, Workspace};

/// Appends one finding per lock site that panics on poison.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        // Test code may panic on poison freely — a poisoned lock in a
        // test IS a failure, and the double panic points at it.
        if f.is_test_like() {
            continue;
        }
        scan_file(f, out);
    }
}

/// `true` when code tokens at `ci` open `.lock()` / `.read()` /
/// `.write()` — an *empty-argument* call, which is what distinguishes
/// a poisonable guard acquisition from `io::Read::read(&mut buf)`.
pub fn is_guard_acquisition(f: &SourceFile, ci: usize) -> bool {
    let tf = &f.tf;
    tf.is_punct(ci, ".")
        && (tf.is_ident(ci + 1, "lock")
            || tf.is_ident(ci + 1, "read")
            || tf.is_ident(ci + 1, "write"))
        && tf.is_punct(ci + 2, "(")
        && tf.is_punct(ci + 3, ")")
}

fn scan_file(f: &SourceFile, out: &mut Vec<Finding>) {
    let tf = &f.tf;
    let n = tf.code.len();
    for ci in 0..n {
        if !is_guard_acquisition(f, ci) {
            continue;
        }
        let site = tf.ctok(ci + 1);
        if f.in_test_span(site.start) {
            continue;
        }
        // What consumes the Result<Guard, PoisonError>?
        if !tf.is_punct(ci + 4, ".") {
            continue; // `let r = m.lock();` — consumption is elsewhere
        }
        let method = ci + 5;
        let bad = (tf.is_ident(method, "unwrap") || tf.is_ident(method, "expect"))
            && tf.is_punct(method + 1, "(");
        let lazy_without_into_inner = tf.is_ident(method, "unwrap_or_else")
            && tf.is_punct(method + 1, "(")
            && !closure_mentions_into_inner(f, method + 1);
        if !(bad || lazy_without_into_inner) {
            continue;
        }
        let key = Lint::LockPoison.waiver_key().unwrap_or("lock-ok");
        let consume = tf.ctok(method);
        if f.waived(key, site.line) || f.waived(key, consume.line) {
            continue;
        }
        let what = tf.ctext(ci + 1).to_string();
        let how = tf.ctext(method).to_string();
        out.push(Finding::new(
            Lint::LockPoison,
            &f.rel,
            consume.line,
            consume.col,
            format!(
                "`.{what}()` guard consumed with `{how}`; poison is detection metadata, not a \
                 correctness gate — use `unwrap_or_else(|e| e.into_inner())` or waive with \
                 `// check: lock-ok <reason>`"
            ),
            tf.line_text(site.line),
        ));
    }
}

/// `true` when the call opening at code token `open_ci` (a `(`)
/// contains an `into_inner` identifier before its matching close.
fn closure_mentions_into_inner(f: &SourceFile, open_ci: usize) -> bool {
    let tf = &f.tf;
    let mut depth = 0usize;
    let mut ci = open_ci;
    while ci < tf.code.len() {
        match tf.ctext(ci) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "into_inner" => return true,
            _ => {}
        }
        ci += 1;
    }
    false
}
