//! L2 `no-panic-in-lib` (and the opt-in `index-in-lib`): library crates
//! in the zone list return errors, they do not abort the process. The
//! conformance suites and the server's request loop both assume a bad
//! input surfaces as `Err`, never as a worker-thread panic.

use crate::analyzers::{lock_poison, PANIC_FREE_CRATES};
use crate::findings::{Finding, Lint};
use crate::lexer::TokKind;
use crate::workspace::{FileKind, SourceFile, Workspace};

/// Panicking macros the lint flags (`assert!` family is allowed:
/// asserting an internal invariant is a bug-detector, not control
/// flow on input).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Appends findings for panic sites (always) and indexing sites (the
/// opt-in `index-in-lib` lint; the driver drops them unless denied).
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if f.kind != FileKind::LibSrc || !PANIC_FREE_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        scan_file(f, out);
    }
}

fn scan_file(f: &SourceFile, out: &mut Vec<Finding>) {
    let tf = &f.tf;
    let n = tf.code.len();
    for ci in 0..n {
        let tok = *tf.ctok(ci);
        if tok.kind != TokKind::Ident || f.in_test_span(tok.start) {
            continue;
        }
        let text = tf.ctext(ci);
        // `.unwrap()` / `.expect(` — but a lock-guard consumption is
        // L1's finding, not a duplicate here.
        if (text == "unwrap" || text == "expect")
            && tf.is_punct(ci.wrapping_sub(1), ".")
            && tf.is_punct(ci + 1, "(")
        {
            if ci >= 5 && lock_poison::is_guard_acquisition(f, ci - 5) {
                continue;
            }
            if waived(f, tok.line) {
                continue;
            }
            out.push(Finding::new(
                Lint::NoPanicInLib,
                &f.rel,
                tok.line,
                tok.col,
                format!(
                    "`{text}` in library crate `{}`: return an error instead, or waive with \
                     `// check: panic-ok <reason>`",
                    f.crate_name
                ),
                tf.line_text(tok.line),
            ));
            continue;
        }
        // `panic!(…)` and friends.
        if PANIC_MACROS.contains(&text) && tf.is_punct(ci + 1, "!") {
            if waived(f, tok.line) {
                continue;
            }
            out.push(Finding::new(
                Lint::NoPanicInLib,
                &f.rel,
                tok.line,
                tok.col,
                format!(
                    "`{text}!` in library crate `{}`: return an error instead, or waive with \
                     `// check: panic-ok <reason>`",
                    f.crate_name
                ),
                tf.line_text(tok.line),
            ));
            continue;
        }
        // Opt-in: `expr[i]` indexing (can panic on out-of-bounds).
        if tf.is_punct(ci + 1, "[") && !tf.is_punct(ci.wrapping_sub(1), "#") {
            let key = Lint::IndexInLib.waiver_key().unwrap_or("index-ok");
            if f.waived(key, tok.line) {
                continue;
            }
            let bracket = tf.ctok(ci + 1);
            out.push(Finding::new(
                Lint::IndexInLib,
                &f.rel,
                bracket.line,
                bracket.col,
                format!(
                    "indexing after `{text}` in library crate `{}` can panic; prefer `get()` or \
                     waive with `// check: index-ok <reason>`",
                    f.crate_name
                ),
                tf.line_text(bracket.line),
            ));
        }
    }
}

fn waived(f: &SourceFile, line: u32) -> bool {
    let key = Lint::NoPanicInLib.waiver_key().unwrap_or("panic-ok");
    f.waived(key, line)
}
