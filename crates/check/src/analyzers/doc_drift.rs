//! L5 `doc-drift`: the README's wire tables are part of the interface.
//! Every opcode wire name, every `DeviceSpec` scheme, and every
//! `CodecSpec` family that exists in code must appear in README.md —
//! the names are extracted from the `name()`/`scheme()`/`family()`
//! match arms, so adding a variant without documenting it fails the
//! build.

use crate::analyzers::wire::{fn_body_range, parse_name_arms, PROTOCOL_RS};
use crate::findings::{Finding, Lint};
use crate::lexer::{str_contents, TokKind, TokenFile};
use crate::workspace::Workspace;

/// Appends findings for names present in code but absent from README.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(readme) = ws.doc("README.md") else {
        out.push(Finding::new(
            Lint::DocDrift,
            "README.md",
            0,
            0,
            "README.md not found at the workspace root".into(),
            "missing README",
        ));
        return;
    };
    let lower = readme.to_lowercase();

    // Opcode wire names: README mentions them in its opcode line and
    // metric tables; match case-insensitively (docs write `HELLO(1)`).
    if let Some(proto) = ws.file(PROTOCOL_RS) {
        for (variant, wire) in parse_name_arms(&proto.tf) {
            if !lower.contains(&wire.to_lowercase()) {
                out.push(Finding::new(
                    Lint::DocDrift,
                    "README.md",
                    0,
                    0,
                    format!(
                        "opcode `{variant}` (wire name `{wire}`) is not mentioned in README.md; \
                         update the wire-protocol section"
                    ),
                    &format!("opcode {wire}"),
                ));
            }
        }
    }

    // DeviceSpec schemes and CodecSpec families: the README grammar
    // lines write them as `scheme:…`, so require the colon form.
    for (rel, getter, what, section) in [
        (
            "crates/device/src/spec.rs",
            "scheme",
            "DeviceSpec scheme",
            "device-backend table",
        ),
        (
            "crates/code/src/spec.rs",
            "family",
            "CodecSpec family",
            "codec grammar table",
        ),
    ] {
        let Some(f) = ws.file(rel) else { continue };
        for name in fn_string_arms(&f.tf, getter) {
            let with_colon = format!("{name}:");
            if !readme.contains(&with_colon) {
                out.push(Finding::new(
                    Lint::DocDrift,
                    "README.md",
                    0,
                    0,
                    format!(
                        "{what} `{name}` (from {rel}) does not appear as `{with_colon}` in \
                         README.md; update the {section}"
                    ),
                    &format!("{what} {name}"),
                ));
            }
        }
    }
}

/// String literals returned by the match arms of `fn <name>`.
fn fn_string_arms(tf: &TokenFile, name: &str) -> Vec<String> {
    let Some((lo, hi)) = fn_body_range(tf, name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for ci in lo..hi.min(tf.code.len()) {
        if tf.ctok(ci).kind == TokKind::Str {
            out.push(str_contents(tf.ctext(ci)).to_string());
        }
    }
    out
}
