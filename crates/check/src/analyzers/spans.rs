//! L7 `span-discipline`: the mirror of counter-discipline, one level
//! up the observability stack. Span names are declared exactly once —
//! as `pub const` strings in the `names` module of
//! `crates/obs/src/trace.rs` — and every recording site refers to them
//! through those constants. Two checks:
//!
//! 1. a string literal handed to a span sink (`span(…)`,
//!    `root_span(…)`, `span_or_root(…)`, `wire_root_at(…)`,
//!    `span_at(…)`) outside the declaring file is a violation: if the
//!    text matches a declared name the site should use the constant,
//!    and if it does not, the name is undeclared — either way the
//!    trace schema has forked;
//! 2. a declared span name no recording site ever references is dead
//!    schema: the constant exists, dashboards may key on it, but no
//!    trace will ever contain it.

use std::collections::BTreeMap;

use crate::findings::{Finding, Lint};
use crate::lexer::{str_contents, TokKind};
use crate::workspace::{SourceFile, Workspace};

/// Where the span-name schema lives.
const TRACE_RS: &str = "crates/obs/src/trace.rs";

/// Call names that record a span under a name.
const SINKS: &[&str] = &[
    "span",
    "root_span",
    "span_or_root",
    "wire_root_at",
    "span_at",
];

/// Appends span-discipline findings.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(trace) = ws.file(TRACE_RS) else {
        return; // no trace module, nothing to keep coherent
    };
    let declared = declared_names(trace);
    check_literal_sites(ws, &declared, out);
    check_dead_names(ws, trace, &declared, out);
}

/// `name string → (const ident, line)` for every
/// `pub const IDENT: &str = "…"` in a schema module — shared with the
/// counter-discipline analyzer, which applies the same declared-once
/// rule to the `metric_names` module in the obs registry.
pub(crate) fn declared_names(f: &SourceFile) -> BTreeMap<String, (String, u32)> {
    let tf = &f.tf;
    let n = tf.code.len();
    let mut out = BTreeMap::new();
    for ci in 0..n {
        // `const IDENT : & str = "…"` — the `&[&str]` ALL table fails
        // the `str` ident at +4 and is skipped.
        if tf.is_ident(ci, "const")
            && ci + 6 < n
            && tf.ctok(ci + 1).kind == TokKind::Ident
            && tf.is_punct(ci + 2, ":")
            && tf.is_punct(ci + 3, "&")
            && tf.is_ident(ci + 4, "str")
            && tf.is_punct(ci + 5, "=")
            && tf.ctok(ci + 6).kind == TokKind::Str
        {
            out.insert(
                str_contents(tf.ctext(ci + 6)).to_string(),
                (tf.ctext(ci + 1).to_string(), tf.ctok(ci + 1).line),
            );
        }
    }
    out
}

/// Check 1: string literals inside span-sink calls anywhere but the
/// declaring file.
fn check_literal_sites(
    ws: &Workspace,
    declared: &BTreeMap<String, (String, u32)>,
    out: &mut Vec<Finding>,
) {
    for f in &ws.files {
        if f.rel == TRACE_RS {
            continue; // declarations and their unit tests
        }
        let tf = &f.tf;
        let mut stack: Vec<Option<String>> = Vec::new();
        for ci in 0..tf.code.len() {
            let t = tf.ctok(ci);
            match tf.ctext(ci) {
                "(" => {
                    let callee = if ci >= 1 && tf.ctok(ci - 1).kind == TokKind::Ident {
                        Some(tf.ctext(ci - 1).to_string())
                    } else {
                        None
                    };
                    stack.push(callee);
                }
                ")" => {
                    stack.pop();
                }
                _ if t.kind == TokKind::Str => {
                    let in_sink = stack
                        .last()
                        .and_then(|c| c.as_deref())
                        .is_some_and(|c| SINKS.contains(&c));
                    if !in_sink || f.waived("span-ok", t.line) {
                        continue;
                    }
                    let name = str_contents(tf.ctext(ci));
                    let fix = match declared.get(name) {
                        Some((ident, _)) => {
                            format!("use `stair_obs::trace::names::{ident}` instead")
                        }
                        None => format!(
                            "`{name}` is not declared in stair-obs `names`; add it there and \
                             record it through the constant"
                        ),
                    };
                    out.push(Finding::new(
                        Lint::SpanDiscipline,
                        &f.rel,
                        t.line,
                        t.col,
                        format!(
                            "span recorded under a string literal `{name}` — names are declared \
                             once in stair-obs; {fix} (waive with `// check: span-ok <reason>`)"
                        ),
                        &format!("span literal {name}"),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Check 2: declared names never referenced by any file other than the
/// declaring one.
fn check_dead_names(
    ws: &Workspace,
    trace: &SourceFile,
    declared: &BTreeMap<String, (String, u32)>,
    out: &mut Vec<Finding>,
) {
    for (name, (ident, line)) in declared {
        let used = ws
            .files
            .iter()
            .any(|f| f.rel != TRACE_RS && (0..f.tf.code.len()).any(|ci| f.tf.is_ident(ci, ident)));
        if used || trace.waived("span-ok", *line) {
            continue;
        }
        out.push(Finding::new(
            Lint::SpanDiscipline,
            TRACE_RS,
            *line,
            1,
            format!(
                "declared span name `{name}` (`names::{ident}`) is never recorded anywhere; \
                 delete it or instrument the path it was meant for (waive with \
                 `// check: span-ok <reason>`)"
            ),
            &format!("dead span name {name}"),
        ));
    }
}
