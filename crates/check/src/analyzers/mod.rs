//! The analyzers. Each submodule exports
//! `run(ws: &Workspace, out: &mut Vec<Finding>)` and appends findings
//! for one lint family; the driver filters by enabled lints afterward.

pub mod counters;
pub mod doc_drift;
pub mod error_conv;
pub mod lock_poison;
pub mod no_panic;
pub mod persist_ordering;
pub mod spans;
pub mod wire;

use crate::workspace::Workspace;

/// Library crates under the no-panic policy (ISSUE 7 zone list).
pub const PANIC_FREE_CRATES: &[&str] = &["code", "store", "net", "device", "obs", "gf", "cache"];

/// Runs every analyzer over the workspace.
pub fn run_all(ws: &Workspace, out: &mut Vec<crate::findings::Finding>) {
    lock_poison::run(ws, out);
    no_panic::run(ws, out);
    wire::run(ws, out);
    error_conv::run(ws, out);
    doc_drift::run(ws, out);
    counters::run(ws, out);
    spans::run(ws, out);
    persist_ordering::run(ws, out);
}
