//! L6 `counter-discipline`: a metric that is declared but never
//! consumed is dead weight; a metric name typo'd at one site splits a
//! counter into two that nobody ever joins. Two checks:
//!
//! 1. every `AtomicU64` field of the store's `Counters` struct has
//!    both a writer (`fetch_add`/`store`) and a reader (`load`) in the
//!    store crate;
//! 2. every *string-named* metric (the `registry.counter("…")` /
//!    `snap.add_counter("…")` world) is mentioned at least twice
//!    across code and docs — a name seen exactly once has no consumer
//!    (or is a typo of one that does). `format!("dev.ops.{kind}")`
//!    patterns and README `dev.ops.<kind>` placeholders unify via a
//!    one-segment wildcard;
//! 3. cache-tier counters (`cache.*` / `wb.*` — any name whose prefix
//!    the obs registry's `metric_names` module reserves) are the
//!    span-name rule one module over: declared exactly once as
//!    constants, registered through those constants (a literal at a
//!    sink is a fork of the schema), and documented — a declared name
//!    no code registers or no doc explains is drift.

use std::collections::BTreeMap;

use crate::findings::{Finding, Lint};
use crate::lexer::{str_contents, TokKind};
use crate::workspace::{SourceFile, Workspace};

use super::spans::declared_names;

/// Where the store's hard counters live.
const STORE_RS: &str = "crates/store/src/store.rs";

/// Where the reserved metric-name schema (`metric_names`) lives.
const OBS_REGISTRY_RS: &str = "crates/obs/src/registry.rs";

/// Call names that make a string literal a metric-name mention.
const SINKS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "add_counter",
    "add_gauge",
    "add_histogram",
];

/// One sighting of a metric name.
struct Mention {
    /// Normalized name: `{…}`/`<…>` interpolations become `*`.
    name: String,
    /// File (or doc) it appeared in.
    file: String,
    /// 1-based line.
    line: u32,
    /// 1-based column.
    col: u32,
    /// `true` when it came from README/EXPERIMENTS rather than code.
    from_doc: bool,
    /// `true` when the code site is test-only (integration tests,
    /// benches, or a `#[cfg(test)]` module).
    from_test: bool,
}

/// Appends counter-discipline findings.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let declared = ws
        .file(OBS_REGISTRY_RS)
        .map(declared_names)
        .unwrap_or_default();
    check_atomic_counters(ws, out);
    check_named_metrics(ws, &declared, out);
    check_reserved_literals(ws, &declared, out);
    check_declared_metric_names(ws, &declared, out);
}

// ---- part 1: the Counters struct ----------------------------------

fn check_atomic_counters(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(store) = ws.file(STORE_RS) else {
        return; // store.rs missing is its own (L4/L5) problem
    };
    let fields = struct_atomic_fields(store, "Counters");
    let store_files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.crate_name == "store")
        .collect();
    for (field, line) in fields {
        let wrote = store_files
            .iter()
            .any(|f| has_member_call(f, &field, &["fetch_add", "store"]));
        let read = store_files
            .iter()
            .any(|f| has_member_call(f, &field, &["load"]));
        if !wrote || !read {
            let what = if !wrote {
                "never incremented"
            } else {
                "never read"
            };
            if store.waived("metric-ok", line) {
                continue;
            }
            out.push(Finding::new(
                Lint::CounterDiscipline,
                STORE_RS,
                line,
                1,
                format!(
                    "Counters field `{field}` is {what} in crates/store; delete it or wire it up \
                     (waive with `// check: metric-ok <reason>`)"
                ),
                &format!("Counters.{field} {what}"),
            ));
        }
    }
}

/// `(field name, line)` for each `name: AtomicU64` field of `struct <name>`.
fn struct_atomic_fields(f: &SourceFile, struct_name: &str) -> Vec<(String, u32)> {
    let tf = &f.tf;
    let n = tf.code.len();
    let mut out = Vec::new();
    let Some(at) = (0..n).find(|&ci| tf.is_ident(ci, "struct") && tf.is_ident(ci + 1, struct_name))
    else {
        return out;
    };
    let mut k = at + 2;
    while k < n && !tf.is_punct(k, "{") {
        k += 1;
    }
    let mut depth = 1i32;
    k += 1;
    while k < n && depth > 0 {
        match tf.ctext(k) {
            "{" | "(" => depth += 1,
            "}" | ")" => depth -= 1,
            // The ident straight before the `:` is the field name.
            ":" if depth == 1
                && tf.is_ident(k + 1, "AtomicU64")
                && k >= 1
                && tf.ctok(k - 1).kind == TokKind::Ident =>
            {
                out.push((tf.ctext(k - 1).to_string(), tf.ctok(k - 1).line));
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// `true` when the file contains `.<field>.<one of methods>(`.
fn has_member_call(f: &SourceFile, field: &str, methods: &[&str]) -> bool {
    let tf = &f.tf;
    (0..tf.code.len()).any(|ci| {
        tf.is_punct(ci, ".")
            && tf.is_ident(ci + 1, field)
            && tf.is_punct(ci + 2, ".")
            && methods.iter().any(|m| tf.is_ident(ci + 3, m))
            && tf.is_punct(ci + 4, "(")
    })
}

// ---- part 2: string-named metrics ---------------------------------

fn check_named_metrics(
    ws: &Workspace,
    declared: &BTreeMap<String, (String, u32)>,
    out: &mut Vec<Finding>,
) {
    // A sink call through a declared constant
    // (`registry.counter(metric_names::CACHE_HIT)`) mentions that
    // constant's name, not a literal — resolve idents so declared
    // metrics don't read as "documented but never produced".
    let by_ident: BTreeMap<&str, &str> = declared
        .iter()
        .map(|(name, (ident, _))| (ident.as_str(), name.as_str()))
        .collect();
    let mut mentions: Vec<Mention> = Vec::new();
    for f in &ws.files {
        collect_code_mentions(f, &by_ident, &mut mentions);
    }
    // Doc mentions only count for prefixes the code actually produces
    // (`protocol.rs` in a README backtick is not a metric).
    let prefixes: Vec<String> = {
        let mut p: Vec<String> = mentions
            .iter()
            .filter_map(|m| m.name.split('.').next().map(str::to_string))
            .collect();
        p.sort();
        p.dedup();
        p
    };
    for (doc, text) in &ws.docs {
        collect_doc_mentions(doc, text, &prefixes, &mut mentions);
    }

    let mut by_name: BTreeMap<&str, Vec<&Mention>> = BTreeMap::new();
    for m in &mentions {
        by_name.entry(&m.name).or_default().push(m);
    }
    for (name, sites) in &by_name {
        let total: usize = by_name
            .iter()
            .filter(|(other, _)| names_match(name, other))
            .map(|(_, v)| v.len())
            .sum();
        // Production code sites carry the rule; a metric that only
        // exists inside tests is test-local scaffolding, and test or
        // doc mentions still count as consumption of a real one.
        let code_site = sites.iter().find(|m| !m.from_doc && !m.from_test);
        if code_site.is_none() && sites.iter().any(|m| !m.from_doc) {
            continue;
        }
        match code_site {
            Some(site) => {
                if total >= 2 {
                    continue;
                }
                // Waivable at the producing site.
                if let Some(f) = ws.files.iter().find(|f| f.rel == site.file) {
                    if f.waived("metric-ok", site.line) {
                        continue;
                    }
                }
                out.push(Finding::new(
                    Lint::CounterDiscipline,
                    &site.file,
                    site.line,
                    site.col,
                    format!(
                        "metric `{name}` is mentioned exactly once in the workspace — nothing \
                         consumes it (or the consumer spells it differently); document it, read \
                         it somewhere, or waive with `// check: metric-ok <reason>`"
                    ),
                    &format!("metric {name}"),
                ));
            }
            None => {
                // Documented but never produced: drift in the docs.
                if by_name
                    .keys()
                    .any(|other| *other != *name && names_match(name, other))
                {
                    continue;
                }
                let site = sites[0];
                out.push(Finding::new(
                    Lint::CounterDiscipline,
                    &site.file,
                    site.line,
                    site.col,
                    format!(
                        "documented metric `{name}` is never produced by any code path; fix the \
                         doc or the code"
                    ),
                    &format!("doc metric {name}"),
                ));
            }
        }
    }
}

/// Segment-wise equality where `*` (an interpolation) matches any one
/// segment on either side.
fn names_match(a: &str, b: &str) -> bool {
    let (sa, sb): (Vec<&str>, Vec<&str>) = (a.split('.').collect(), b.split('.').collect());
    sa.len() == sb.len()
        && sa
            .iter()
            .zip(&sb)
            .all(|(x, y)| x == y || *x == "*" || *y == "*")
}

/// Walks the code tokens of `f` with a stack of enclosing call names;
/// a string literal — or an ident resolving to a declared metric
/// constant — inside a metric sink call is a mention.
fn collect_code_mentions(f: &SourceFile, by_ident: &BTreeMap<&str, &str>, out: &mut Vec<Mention>) {
    let tf = &f.tf;
    let mut stack: Vec<Option<String>> = Vec::new();
    for ci in 0..tf.code.len() {
        let t = tf.ctok(ci);
        match tf.ctext(ci) {
            "(" => {
                // Callee: `ident(` or `ident!(`.
                let callee = if ci >= 1 && tf.ctok(ci - 1).kind == TokKind::Ident {
                    Some(tf.ctext(ci - 1).to_string())
                } else if ci >= 2
                    && tf.is_punct(ci - 1, "!")
                    && tf.ctok(ci - 2).kind == TokKind::Ident
                {
                    Some(tf.ctext(ci - 2).to_string())
                } else {
                    None
                };
                stack.push(callee);
            }
            ")" => {
                stack.pop();
            }
            _ if t.kind == TokKind::Str => {
                let in_sink = stack.iter().flatten().any(|c| SINKS.contains(&c.as_str()));
                if !in_sink {
                    continue;
                }
                if let Some(name) = normalize(str_contents(tf.ctext(ci)), '{', '}') {
                    out.push(Mention {
                        name,
                        file: f.rel.clone(),
                        line: t.line,
                        col: t.col,
                        from_doc: false,
                        from_test: f.is_test_like() || f.in_test_span(t.start),
                    });
                }
            }
            _ if t.kind == TokKind::Ident => {
                // `counter(metric_names::CACHE_HIT)` — the constant is
                // the mention. A callee ident sits *before* its `(`,
                // so it is never on the stack for itself.
                let in_sink = stack.iter().flatten().any(|c| SINKS.contains(&c.as_str()));
                if !in_sink {
                    continue;
                }
                if let Some(name) = by_ident.get(tf.ctext(ci)) {
                    out.push(Mention {
                        name: (*name).to_string(),
                        file: f.rel.clone(),
                        line: t.line,
                        col: t.col,
                        from_doc: false,
                        from_test: f.is_test_like() || f.in_test_span(t.start),
                    });
                }
            }
            _ => {}
        }
    }
}

// ---- part 3: the reserved metric-name schema ----------------------

/// Check 3a: a string literal at a metric sink whose leading segment
/// the `metric_names` module reserves, anywhere but the declaring
/// file. Mirrors the span-discipline literal rule: matching a declared
/// name means "use the constant", not matching means the name forked
/// the schema.
fn check_reserved_literals(
    ws: &Workspace,
    declared: &BTreeMap<String, (String, u32)>,
    out: &mut Vec<Finding>,
) {
    let reserved: Vec<&str> = {
        let mut p: Vec<&str> = declared
            .keys()
            .filter_map(|n| n.split('.').next())
            .collect();
        p.sort();
        p.dedup();
        p
    };
    if reserved.is_empty() {
        return;
    }
    for f in &ws.files {
        if f.rel == OBS_REGISTRY_RS {
            continue; // declarations and their unit tests
        }
        let tf = &f.tf;
        let mut stack: Vec<Option<String>> = Vec::new();
        for ci in 0..tf.code.len() {
            let t = tf.ctok(ci);
            match tf.ctext(ci) {
                "(" => {
                    let callee = if ci >= 1 && tf.ctok(ci - 1).kind == TokKind::Ident {
                        Some(tf.ctext(ci - 1).to_string())
                    } else {
                        None
                    };
                    stack.push(callee);
                }
                ")" => {
                    stack.pop();
                }
                _ if t.kind == TokKind::Str => {
                    let in_sink = stack.iter().flatten().any(|c| SINKS.contains(&c.as_str()));
                    if !in_sink || f.waived("metric-ok", t.line) {
                        continue;
                    }
                    let Some(name) = normalize(str_contents(tf.ctext(ci)), '{', '}') else {
                        continue;
                    };
                    if !name
                        .split('.')
                        .next()
                        .is_some_and(|p| reserved.contains(&p))
                    {
                        continue;
                    }
                    let fix = match declared.get(&name) {
                        Some((ident, _)) => {
                            format!("use `stair_obs::metric_names::{ident}` instead")
                        }
                        None => format!(
                            "`{name}` is not declared in stair-obs `metric_names`; add it there \
                             and register it through the constant"
                        ),
                    };
                    out.push(Finding::new(
                        Lint::CounterDiscipline,
                        &f.rel,
                        t.line,
                        t.col,
                        format!(
                            "reserved metric prefix registered under a string literal `{name}` — \
                             cache-tier names are declared once in stair-obs; {fix} (waive with \
                             `// check: metric-ok <reason>`)"
                        ),
                        &format!("reserved metric literal {name}"),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Check 3b: every declared metric constant must be registered by some
/// other file *and* documented — dead schema and undocumented
/// counters are both drift.
fn check_declared_metric_names(
    ws: &Workspace,
    declared: &BTreeMap<String, (String, u32)>,
    out: &mut Vec<Finding>,
) {
    let Some(registry) = ws.file(OBS_REGISTRY_RS) else {
        return;
    };
    for (name, (ident, line)) in declared {
        if registry.waived("metric-ok", *line) {
            continue;
        }
        let used = ws.files.iter().any(|f| {
            f.rel != OBS_REGISTRY_RS && (0..f.tf.code.len()).any(|ci| f.tf.is_ident(ci, ident))
        });
        if !used {
            out.push(Finding::new(
                Lint::CounterDiscipline,
                OBS_REGISTRY_RS,
                *line,
                1,
                format!(
                    "declared metric name `{name}` (`metric_names::{ident}`) is never registered \
                     anywhere; delete it or wire up the counter it was meant for (waive with \
                     `// check: metric-ok <reason>`)"
                ),
                &format!("dead metric name {name}"),
            ));
        }
        let documented = ws
            .docs
            .iter()
            .any(|(_, text)| text.contains(&format!("`{name}`")));
        if !documented {
            out.push(Finding::new(
                Lint::CounterDiscipline,
                OBS_REGISTRY_RS,
                *line,
                1,
                format!(
                    "declared metric name `{name}` (`metric_names::{ident}`) is undocumented; \
                     add it (backticked) to README.md or EXPERIMENTS.md so operators can find it \
                     (waive with `// check: metric-ok <reason>`)"
                ),
                &format!("undocumented metric name {name}"),
            ));
        }
    }
}

/// Backticked spans in a doc that look like metric names with a known
/// prefix; `<placeholder>` segments become wildcards.
fn collect_doc_mentions(doc: &str, text: &str, prefixes: &[String], out: &mut Vec<Mention>) {
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        let mut col0 = 0usize;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            let span = &after[..close];
            let at_col = col0 + open + 2; // 1-based, inside the backtick
            if let Some(name) = normalize(span, '<', '>') {
                if name.contains('.')
                    && prefixes
                        .iter()
                        .any(|p| name.split('.').next() == Some(p.as_str()))
                {
                    out.push(Mention {
                        name,
                        file: doc.to_string(),
                        line: i as u32 + 1,
                        col: at_col as u32,
                        from_doc: true,
                        from_test: false,
                    });
                }
            }
            col0 += open + 1 + close + 1;
            rest = &after[close + 1..];
        }
    }
}

/// Normalizes a candidate metric name: `open…close` interpolations
/// become `*` segments. Returns `None` unless the result is a dotted
/// lowercase name (≥ 2 segments, each `[a-z0-9_]+` or `*`).
fn normalize(s: &str, open: char, close: char) -> Option<String> {
    let mut outp = String::new();
    let mut depth = 0usize;
    for ch in s.chars() {
        if ch == open {
            if depth == 0 {
                outp.push('*');
            }
            depth += 1;
        } else if ch == close {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            outp.push(ch);
        }
    }
    let segs: Vec<&str> = outp.split('.').collect();
    if segs.len() < 2 {
        return None;
    }
    let ok = segs.iter().all(|seg| {
        *seg == "*"
            || (!seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
    });
    if ok {
        Some(outp)
    } else {
        None
    }
}
