//! L8 `persist-ordering`: the crash-consistency invariant behind the
//! journal, shipped as a lint instead of prose. In `crates/store`,
//! mutating a stripe in place is only safe after the journal holds a
//! durable record of the post-image — so the only functions allowed to
//! call `.write_sector(…)` are the legs of the journal protocol:
//!
//! * `write_back_cells` — journals first, then persists in place;
//! * `apply_write_back` — the in-place leg shared by the single-stripe
//!   path and the batch group commit (both journal-first);
//! * `replay_journal` — re-applies already-durable records at open.
//!
//! Any other call site is a write the journal cannot finish after a
//! crash: a torn stripe that is neither old nor new, the exact
//! corruption mode the subsystem exists to rule out. Deliberate
//! exceptions (fault injection, repair's erased-cell rewrites) carry a
//! `// check: persist-ok <reason>` waiver at the site, so every bypass
//! of the ordering is visible in the audit trail.
//!
//! The defining module (`crates/store/src/device.rs`) and test code
//! are exempt: the former *is* the sector-write primitive, the latter
//! exercises crash states on purpose.

use crate::findings::{Finding, Lint};
use crate::lexer::TokKind;
use crate::workspace::{FileKind, SourceFile, Workspace};

/// Where the sector-write primitive lives — definitions and their unit
/// tests, not callers under the ordering policy.
const DEVICE_RS: &str = "crates/store/src/device.rs";

/// The journaled commit path: the only enclosing functions that may
/// write sectors in place without a waiver.
const ALLOWED_FNS: &[&str] = &["write_back_cells", "apply_write_back", "replay_journal"];

/// Appends persist-ordering findings.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if f.crate_name != "store"
            || f.kind != FileKind::LibSrc
            || f.rel == DEVICE_RS
            || f.is_test_like()
        {
            continue;
        }
        scan_file(f, out);
    }
}

fn scan_file(f: &SourceFile, out: &mut Vec<Finding>) {
    let tf = &f.tf;
    let n = tf.code.len();
    // Track the innermost enclosing `fn` by brace depth: a pending name
    // is armed at `fn ident` and attached to the next `{` (a `;` first
    // means a bodyless trait signature — disarm).
    let mut depth = 0usize;
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut pending: Option<String> = None;
    for ci in 0..n {
        // `fn ident` arms a pending name; fn-pointer types (`fn(u8)`)
        // have no ident and stay disarmed.
        if tf.is_ident(ci, "fn") && ci + 1 < n && tf.ctok(ci + 1).kind == TokKind::Ident {
            pending = Some(tf.ctext(ci + 1).to_string());
            continue;
        }
        match tf.ctext(ci) {
            "{" => {
                depth += 1;
                if let Some(name) = pending.take() {
                    stack.push((name, depth));
                }
            }
            "}" => {
                if stack.last().is_some_and(|&(_, d)| d == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            ";" => {
                pending = None;
            }
            "write_sector" => {
                if !(tf.is_punct(ci.wrapping_sub(1), ".") && tf.is_punct(ci + 1, "(")) {
                    continue;
                }
                let tok = *tf.ctok(ci);
                if f.in_test_span(tok.start) {
                    continue;
                }
                let enclosing = stack.last().map(|(name, _)| name.as_str());
                if enclosing.is_some_and(|name| ALLOWED_FNS.contains(&name)) {
                    continue;
                }
                let key = Lint::PersistOrdering.waiver_key().unwrap_or("persist-ok");
                if f.waived(key, tok.line) {
                    continue;
                }
                let site = enclosing.unwrap_or("<no enclosing fn>");
                out.push(Finding::new(
                    Lint::PersistOrdering,
                    &f.rel,
                    tok.line,
                    tok.col,
                    format!(
                        "in-place sector write in `{site}`, outside the journaled commit path \
                         ({}): journal the post-image first or route through `write_back_cells`; \
                         a deliberate bypass needs `// check: persist-ok <reason>`",
                        ALLOWED_FNS.join(" / ")
                    ),
                    tf.line_text(tok.line),
                ));
            }
            _ => {}
        }
    }
}
