//! L4 `error-conversions`: the device layer promises that every
//! registered crate error converts into the umbrella error its
//! consumers match on (`DeviceError` for the data path, `CodeError`
//! for the codecs). A missing `From` impl silently forces callers back
//! to `map_err` ad-hockery — this pins the registry.

use crate::findings::{Finding, Lint};
use crate::workspace::Workspace;

/// `(source crate, source type, target type)` — the conversion promises.
pub const REGISTRY: &[(&str, &str, &str)] = &[
    ("store", "Error", "DeviceError"),
    ("net", "NetError", "DeviceError"),
    ("stair", "Error", "CodeError"),
    ("sd", "Error", "CodeError"),
    ("rs", "Error", "CodeError"),
];

/// One `impl From<Src> for Dst` found in source.
struct FromImpl {
    /// Identifiers appearing in the `Src` path (e.g. `stair_store`,
    /// `Error`).
    src_idents: Vec<String>,
    /// Last identifier of the `Dst` path.
    dst: String,
    /// Crate the impl lives in.
    crate_name: String,
}

/// Appends a finding per registry entry with no matching impl.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut impls = Vec::new();
    for f in &ws.files {
        collect_from_impls(f, &mut impls);
    }
    for &(src_crate, src_type, dst_type) in REGISTRY {
        let found = impls.iter().any(|i| {
            i.dst == dst_type
                && i.src_idents.iter().any(|s| s == src_type)
                && (i.crate_name == src_crate
                    || i.src_idents
                        .iter()
                        .any(|s| s == src_crate || *s == format!("stair_{src_crate}")))
        });
        if !found {
            out.push(Finding::new(
                Lint::ErrorConversions,
                &format!("crates/{src_crate}/src/lib.rs"),
                0,
                0,
                format!(
                    "no `impl From<{src_type}> for {dst_type}` found for crate `{src_crate}`; \
                     the device layer promises this conversion (see stair-check REGISTRY)"
                ),
                &format!("{src_crate}::{src_type} -> {dst_type}"),
            ));
        }
    }
}

fn collect_from_impls(f: &crate::workspace::SourceFile, out: &mut Vec<FromImpl>) {
    let tf = &f.tf;
    let n = tf.code.len();
    for ci in 0..n {
        if !(tf.is_ident(ci, "impl") && tf.is_ident(ci + 1, "From") && tf.is_punct(ci + 2, "<")) {
            continue;
        }
        // Collect the generic argument up to the matching `>`.
        let mut depth = 1i32;
        let mut k = ci + 3;
        let mut src_idents = Vec::new();
        while k < n && depth > 0 {
            match tf.ctext(k) {
                "<" => depth += 1,
                ">" => depth -= 1,
                t => {
                    if tf.is_ident(k, t) {
                        src_idents.push(t.to_string());
                    }
                }
            }
            k += 1;
        }
        if !tf.is_ident(k, "for") {
            continue;
        }
        // Target path: idents until `{` / `where`.
        let mut dst = String::new();
        k += 1;
        while k < n && !tf.is_punct(k, "{") && !tf.is_ident(k, "where") {
            let t = tf.ctext(k);
            if tf.is_ident(k, t) {
                dst = t.to_string();
            }
            k += 1;
        }
        if !dst.is_empty() {
            out.push(FromImpl {
                src_idents,
                dst,
                crate_name: f.crate_name.clone(),
            });
        }
    }
}
