//! L3 `wire-constants`: the protocol's numbers live in exactly one
//! place — `crates/net/src/protocol.rs`. This analyzer (a) checks that
//! file's internal coherence (enum ↔ `from_u8` ↔ `name()` ↔ `ALL`,
//! dense collision-free discriminants) and (b) flags any other file
//! that *redeclares* a wire constant instead of importing it.

use std::collections::BTreeMap;

use crate::findings::{Finding, Lint};
use crate::lexer::{int_value, str_contents, TokKind, TokenFile};
use crate::workspace::Workspace;

/// Where the protocol truth lives.
pub const PROTOCOL_RS: &str = "crates/net/src/protocol.rs";

/// The constants whose redeclaration anywhere else is drift.
pub const WIRE_CONSTS: &[&str] = &[
    "PROTOCOL_VERSION",
    "MAGIC",
    "MAX_FRAME",
    "MAX_IO_BYTES",
    "MAX_BATCH_OPS",
];

/// What the analyzer extracted from `protocol.rs`, reused by L5.
#[derive(Default)]
pub struct ProtocolFacts {
    /// `(name, value)` for the integer wire constants.
    pub consts: Vec<(String, u64)>,
    /// Opcode variants in declaration order with discriminants.
    pub opcodes: Vec<(String, u64)>,
    /// `name()` wire strings per variant.
    pub wire_names: Vec<(String, String)>,
}

/// Appends wire findings; returns the extracted facts for reuse.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) -> ProtocolFacts {
    let Some(proto) = ws.file(PROTOCOL_RS) else {
        out.push(Finding::new(
            Lint::WireConstants,
            PROTOCOL_RS,
            0,
            0,
            "protocol.rs not found — the wire-constant source of truth is missing".into(),
            "missing protocol.rs",
        ));
        return ProtocolFacts::default();
    };
    let tf = &proto.tf;
    let mut facts = ProtocolFacts {
        consts: parse_consts(tf),
        opcodes: parse_opcode_enum(tf),
        wire_names: parse_name_arms(tf),
    };
    check_protocol_coherence(tf, &mut facts, out);

    // (b) redeclarations elsewhere: any `const`/`static` with a wire
    // constant's name outside protocol.rs must be an import, never a
    // new literal.
    for f in &ws.files {
        if f.rel == PROTOCOL_RS {
            continue;
        }
        let tf = &f.tf;
        for ci in 0..tf.code.len() {
            if !(tf.is_ident(ci, "const") || tf.is_ident(ci, "static")) {
                continue;
            }
            let name = tf.ctext(ci + 1);
            if WIRE_CONSTS.contains(&name) && tf.is_punct(ci + 2, ":") {
                let t = tf.ctok(ci + 1);
                out.push(Finding::new(
                    Lint::WireConstants,
                    &f.rel,
                    t.line,
                    t.col,
                    format!(
                        "`{name}` redeclared outside protocol.rs; import it from \
                         `stair_net::protocol` so the cap cannot fork"
                    ),
                    tf.line_text(t.line),
                ));
            }
        }
    }
    facts
}

/// Coherence checks inside protocol.rs itself.
fn check_protocol_coherence(tf: &TokenFile, facts: &mut ProtocolFacts, out: &mut Vec<Finding>) {
    let file = PROTOCOL_RS;
    let report = |out: &mut Vec<Finding>, msg: String, ctx: &str| {
        out.push(Finding::new(Lint::WireConstants, file, 0, 0, msg, ctx));
    };
    if facts.opcodes.is_empty() {
        report(
            out,
            "no `enum Opcode` found in protocol.rs".into(),
            "no enum",
        );
        return;
    }
    // Discriminants: collision-free and dense from 1.
    let mut by_val: BTreeMap<u64, &str> = BTreeMap::new();
    for (name, v) in &facts.opcodes {
        if let Some(prev) = by_val.insert(*v, name) {
            report(
                out,
                format!("opcode discriminant {v} used by both `{prev}` and `{name}`"),
                &format!("dup {v}"),
            );
        }
    }
    let n = facts.opcodes.len() as u64;
    for want in 1..=n {
        if !by_val.contains_key(&want) {
            report(
                out,
                format!("opcode table is not dense: discriminant {want} is unused (1..={n})"),
                &format!("gap {want}"),
            );
        }
    }
    // from_u8 arms must mirror the enum exactly.
    let arms = parse_from_u8_arms(tf);
    for (name, v) in &facts.opcodes {
        match arms.get(v) {
            Some(mapped) if mapped == name => {}
            Some(mapped) => report(
                out,
                format!("from_u8 maps {v} to `{mapped}` but the enum declares `{name}` = {v}"),
                &format!("from_u8 {v}"),
            ),
            None => report(
                out,
                format!("from_u8 has no arm for `{name}` = {v}"),
                &format!("from_u8 missing {v}"),
            ),
        }
    }
    for (v, mapped) in &arms {
        if !facts.opcodes.iter().any(|(_, ev)| ev == v) {
            report(
                out,
                format!("from_u8 accepts {v} (`{mapped}`) which the enum does not declare"),
                &format!("from_u8 extra {v}"),
            );
        }
    }
    // name() must cover every variant, with unique wire strings.
    let mut seen_names: BTreeMap<&str, &str> = BTreeMap::new();
    for (variant, wire) in &facts.wire_names {
        if let Some(prev) = seen_names.insert(wire.as_str(), variant) {
            report(
                out,
                format!("wire name `{wire}` used by both `{prev}` and `{variant}`"),
                &format!("name dup {wire}"),
            );
        }
    }
    for (name, _) in &facts.opcodes {
        if !facts.wire_names.iter().any(|(v, _)| v == name) {
            report(
                out,
                format!("Opcode::name() has no arm for `{name}`"),
                &format!("name missing {name}"),
            );
        }
    }
    // `Opcode::ALL` must list every variant (it feeds the density test
    // and any iteration over the table).
    match parse_all_list(tf) {
        None => report(
            out,
            "protocol.rs declares no `Opcode::ALL` table; add `pub const ALL: [Opcode; N]`".into(),
            "no ALL",
        ),
        Some(listed) => {
            for (name, _) in &facts.opcodes {
                if !listed.contains(name) {
                    report(
                        out,
                        format!("`Opcode::ALL` is missing variant `{name}`"),
                        &format!("ALL missing {name}"),
                    );
                }
            }
        }
    }
}

/// Extracts `const NAME: TY = <int expr>;` items, evaluating simple
/// constant expressions (`64 * 1024 * 1024`, shifts, refs to earlier
/// consts). Non-integer constants (like `MAGIC`) are skipped.
pub fn parse_consts(tf: &TokenFile) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for ci in 0..tf.code.len() {
        if !tf.is_ident(ci, "const") {
            continue;
        }
        let name = tf.ctext(ci + 1).to_string();
        if tf.ctok(ci + 1).kind != TokKind::Ident || !tf.is_punct(ci + 2, ":") {
            continue;
        }
        // Skip the type, find `=`.
        let mut k = ci + 3;
        while k < tf.code.len() && !tf.is_punct(k, "=") && !tf.is_punct(k, ";") {
            k += 1;
        }
        if !tf.is_punct(k, "=") {
            continue;
        }
        let mut expr = Vec::new();
        let mut d = 0i32;
        let mut j = k + 1;
        while j < tf.code.len() {
            let t = tf.ctext(j);
            if t == ";" && d == 0 {
                break;
            }
            if t == "(" {
                d += 1;
            }
            if t == ")" {
                d -= 1;
            }
            expr.push((tf.ctok(j).kind, t.to_string()));
            j += 1;
        }
        if let Some(v) = eval(&expr, &out) {
            out.push((name, v));
        }
    }
    out
}

/// Evaluates `expr` with Rust-ish precedence (`*` `/` over `+` `-`
/// over `<<` `>>`); identifiers resolve against `known`.
fn eval(expr: &[(TokKind, String)], known: &[(String, u64)]) -> Option<u64> {
    let mut pos = 0usize;
    let v = eval_shift(expr, &mut pos, known)?;
    if pos == expr.len() {
        Some(v)
    } else {
        None
    }
}

fn eval_shift(e: &[(TokKind, String)], p: &mut usize, k: &[(String, u64)]) -> Option<u64> {
    let mut v = eval_add(e, p, k)?;
    while *p < e.len() && (e[*p].1 == "<<" || e[*p].1 == ">>") {
        let op = e[*p].1.clone();
        *p += 1;
        let rhs = eval_add(e, p, k)?;
        v = if op == "<<" {
            v.checked_shl(rhs as u32)?
        } else {
            v.checked_shr(rhs as u32)?
        };
    }
    Some(v)
}

fn eval_add(e: &[(TokKind, String)], p: &mut usize, k: &[(String, u64)]) -> Option<u64> {
    let mut v = eval_mul(e, p, k)?;
    while *p < e.len() && (e[*p].1 == "+" || e[*p].1 == "-") {
        let op = e[*p].1.clone();
        *p += 1;
        let rhs = eval_mul(e, p, k)?;
        v = if op == "+" {
            v.checked_add(rhs)?
        } else {
            v.checked_sub(rhs)?
        };
    }
    Some(v)
}

fn eval_mul(e: &[(TokKind, String)], p: &mut usize, k: &[(String, u64)]) -> Option<u64> {
    let mut v = eval_prim(e, p, k)?;
    while *p < e.len() && (e[*p].1 == "*" || e[*p].1 == "/") {
        let op = e[*p].1.clone();
        *p += 1;
        let rhs = eval_prim(e, p, k)?;
        v = if op == "*" {
            v.checked_mul(rhs)?
        } else {
            v.checked_div(rhs)?
        };
    }
    Some(v)
}

fn eval_prim(e: &[(TokKind, String)], p: &mut usize, k: &[(String, u64)]) -> Option<u64> {
    let (kind, text) = e.get(*p)?;
    match kind {
        TokKind::Int => {
            *p += 1;
            int_value(text)
        }
        TokKind::Ident => {
            *p += 1;
            k.iter().find(|(n, _)| n == text).map(|(_, v)| *v)
        }
        TokKind::Punct if text == "(" => {
            *p += 1;
            let v = eval_shift(e, p, k)?;
            if e.get(*p)?.1 == ")" {
                *p += 1;
                Some(v)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Parses `enum Opcode { Name = N, … }` with auto-increment for
/// variants without an explicit discriminant.
pub fn parse_opcode_enum(tf: &TokenFile) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let n = tf.code.len();
    let Some(start) = (0..n).find(|&ci| tf.is_ident(ci, "enum") && tf.is_ident(ci + 1, "Opcode"))
    else {
        return out;
    };
    let mut k = start + 2;
    while k < n && !tf.is_punct(k, "{") {
        k += 1;
    }
    k += 1;
    let mut next = 0u64;
    let mut depth = 1i32;
    while k < n && depth > 0 {
        let t = tf.ctext(k);
        match t {
            "{" => depth += 1,
            "}" => depth -= 1,
            "#" if tf.is_punct(k + 1, "[") => {
                // Skip an attribute.
                let mut d = 0;
                k += 1;
                while k < n {
                    match tf.ctext(k) {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            _ if depth == 1 && tf.ctok(k).kind == TokKind::Ident => {
                let name = t.to_string();
                if tf.is_punct(k + 1, "=") {
                    if let Some(v) = int_value(tf.ctext(k + 2)) {
                        next = v;
                    }
                    k += 2;
                }
                out.push((name, next));
                next += 1;
                // Skip to the comma or closing brace.
                while k < n && !tf.is_punct(k, ",") && !tf.is_punct(k, "}") {
                    k += 1;
                }
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Collects `N => Opcode::Name` arms from `fn from_u8`.
fn parse_from_u8_arms(tf: &TokenFile) -> BTreeMap<u64, String> {
    let mut out = BTreeMap::new();
    let Some((lo, hi)) = fn_body_range(tf, "from_u8") else {
        return out;
    };
    let mut ci = lo;
    while ci + 3 < hi {
        if tf.ctok(ci).kind == TokKind::Int
            && tf.is_punct(ci + 1, "=>")
            && tf.is_ident(ci + 2, "Opcode")
            && tf.is_punct(ci + 3, "::")
        {
            if let Some(v) = int_value(tf.ctext(ci)) {
                out.insert(v, tf.ctext(ci + 4).to_string());
            }
        }
        ci += 1;
    }
    out
}

/// Collects `Opcode::Name => "wire"` arms from `fn name`.
pub fn parse_name_arms(tf: &TokenFile) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some((lo, hi)) = fn_body_range(tf, "name") else {
        return out;
    };
    let mut ci = lo;
    while ci + 3 < hi {
        if tf.is_ident(ci, "Opcode")
            && tf.is_punct(ci + 1, "::")
            && tf.is_punct(ci + 3, "=>")
            && tf.ctok(ci + 4).kind == TokKind::Str
        {
            out.push((
                tf.ctext(ci + 2).to_string(),
                str_contents(tf.ctext(ci + 4)).to_string(),
            ));
        }
        ci += 1;
    }
    out
}

/// Collects the variant names listed in `const ALL: [Opcode; N] = […];`.
fn parse_all_list(tf: &TokenFile) -> Option<Vec<String>> {
    let n = tf.code.len();
    let start = (0..n).find(|&ci| tf.is_ident(ci, "const") && tf.is_ident(ci + 1, "ALL"))?;
    // Find the `=` then the `[` opening the list (the type also has a
    // `[`, so look after `=`).
    let mut k = start + 2;
    while k < n && !tf.is_punct(k, "=") {
        k += 1;
    }
    while k < n && !tf.is_punct(k, "[") {
        k += 1;
    }
    let mut out = Vec::new();
    while k < n && !tf.is_punct(k, "]") {
        if tf.is_ident(k, "Opcode") && tf.is_punct(k + 1, "::") {
            out.push(tf.ctext(k + 2).to_string());
            k += 3;
            continue;
        }
        k += 1;
    }
    Some(out)
}

/// The code-token index range of the body of the first `fn <name>`.
pub fn fn_body_range(tf: &TokenFile, name: &str) -> Option<(usize, usize)> {
    let n = tf.code.len();
    let at = (0..n).find(|&ci| tf.is_ident(ci, "fn") && tf.is_ident(ci + 1, name))?;
    let mut k = at + 2;
    while k < n && !tf.is_punct(k, "{") {
        // A `where` clause or return type may contain `{`? No — the
        // first `{` after the signature opens the body in this codebase.
        k += 1;
    }
    let lo = k + 1;
    let mut depth = 1i32;
    k += 1;
    while k < n && depth > 0 {
        match tf.ctext(k) {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    Some((lo, k))
}
