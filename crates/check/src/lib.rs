//! stair-check: a dependency-free static analysis pass that
//! machine-checks the invariants the stack depends on.
//!
//! Six PRs of prose rules — the lock-poison policy, the single-source
//! wire constants, the no-panic zones, the README tables, the metric
//! registry — become lints here, run on every build. The tool is a
//! hand-rolled lexer ([`lexer`]) feeding token-level analyzers
//! ([`analyzers`]); findings carry stable fingerprints ([`findings`])
//! so grandfathered ones can live in a `check.allow` baseline
//! ([`baseline`]) that is itself checked for staleness.
//!
//! Driver: `cargo run -p stair-check -- [--json] [--deny <lint>]
//! [--allow <lint>] [--baseline <path>] <workspace-root>`.

pub mod analyzers;
pub mod baseline;
pub mod findings;
pub mod lexer;
pub mod workspace;

use std::path::PathBuf;

use baseline::Baseline;
use findings::{disambiguate, Finding, Lint, Waiver};
use workspace::Workspace;

/// How a run is configured (the CLI flags, parsed).
pub struct Config {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Lints enabled *in addition to* the on-by-default set.
    pub deny: Vec<String>,
    /// Lints disabled even if on by default.
    pub allow: Vec<String>,
    /// Baseline file; defaults to `<root>/check.allow`.
    pub baseline: Option<PathBuf>,
}

impl Config {
    /// A default config for `root`.
    pub fn new(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            deny: Vec::new(),
            allow: Vec::new(),
            baseline: None,
        }
    }
}

/// The outcome of a run.
pub struct Report {
    /// Findings that fail the build (not baselined).
    pub findings: Vec<Finding>,
    /// Findings suppressed by `check.allow`.
    pub baselined: Vec<Finding>,
    /// Every waiver comment in the workspace (the audit trail).
    pub waivers: Vec<Waiver>,
    /// How many source files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Process exit code: 0 clean, 1 findings.
    pub fn exit_code(&self) -> i32 {
        if self.findings.is_empty() {
            0
        } else {
            1
        }
    }

    /// The machine-readable report (schema documented in
    /// EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"tool\": \"stair-check\",\n  \"schema_version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"findings\": [");
        push_findings(&mut s, &self.findings);
        s.push_str("],\n  \"baselined\": [");
        push_findings(&mut s, &self.baselined);
        s.push_str("],\n  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"key\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&w.key),
                json_str(&w.file),
                w.line,
                json_str(&w.reason)
            ));
        }
        if !self.waivers.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str(&format!(
            "],\n  \"summary\": {{\"active\": {}, \"baselined\": {}, \"waivers\": {}}}\n}}\n",
            self.findings.len(),
            self.baselined.len(),
            self.waivers.len()
        ));
        s
    }

    /// The human-readable report.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    fingerprint: {}\n",
                f.file, f.line, f.col, f.lint, f.message, f.fingerprint
            ));
        }
        s.push_str(&format!(
            "stair-check: {} file(s) scanned, {} finding(s), {} baselined, {} waiver(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.baselined.len(),
            self.waivers.len()
        ));
        s
    }
}

fn push_findings(s: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&format!(
            "    {{\"lint\": {}, \"severity\": \"error\", \"file\": {}, \"line\": {}, \
             \"col\": {}, \"message\": {}, \"fingerprint\": {}}}",
            json_str(f.lint.id()),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.message),
            json_str(&f.fingerprint)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the full pass: walk, analyze, filter, baseline.
///
/// # Errors
///
/// Returns a rendered message when the workspace or baseline cannot be
/// loaded (distinct from "findings exist", which is a clean `Report`).
pub fn run(cfg: &Config) -> Result<Report, String> {
    let ws = Workspace::load(&cfg.root)?;
    let mut all = Vec::new();
    analyzers::run_all(&ws, &mut all);

    let enabled = |l: Lint| -> bool {
        if cfg.allow.iter().any(|s| s == l.id()) {
            return false;
        }
        l.on_by_default() || cfg.deny.iter().any(|s| s == l.id())
    };
    all.retain(|f| enabled(f.lint));
    all.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
    });
    disambiguate(&mut all);

    let bl_path = cfg
        .baseline
        .clone()
        .unwrap_or_else(|| cfg.root.join("check.allow"));
    let bl = Baseline::load(&bl_path, "check.allow")?;
    let (mut active, baselined) = bl.apply(all);
    if !enabled(Lint::StaleBaseline) {
        active.retain(|f| f.lint != Lint::StaleBaseline);
    }
    active.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
    });

    let mut waivers: Vec<Waiver> = ws.files.iter().flat_map(|f| f.waivers.clone()).collect();
    waivers.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    Ok(Report {
        findings: active,
        baselined,
        waivers,
        files_scanned: ws.files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn empty_report_is_clean_and_valid_json() {
        let r = Report {
            findings: vec![],
            baselined: vec![],
            waivers: vec![],
            files_scanned: 3,
        };
        assert_eq!(r.exit_code(), 0);
        let j = r.to_json();
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"summary\""));
    }
}
