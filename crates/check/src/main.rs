//! The stair-check driver binary.
//!
//! Usage: `stair-check [--json] [--deny <lint>] [--allow <lint>]
//! [--baseline <path>] [--list] [<workspace-root>]`
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::process::ExitCode;

use stair_check::findings::ALL_LINTS;
use stair_check::{run, Config};

const USAGE: &str = "\
stair-check: static analysis for the stair workspace

USAGE:
    stair-check [OPTIONS] [<workspace-root>]   (default root: .)

OPTIONS:
    --json               machine-readable output (schema in EXPERIMENTS.md)
    --deny <lint>        also enable an off-by-default lint (e.g. index-in-lib)
    --allow <lint>       disable a lint for this run
    --baseline <path>    baseline file (default: <root>/check.allow)
    --list               list lints and exit
    -h, --help           this text
";

fn main() -> ExitCode {
    let mut cfg = Config::new(".");
    let mut json = false;
    let mut root_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny" | "--allow" | "--baseline" => {
                let Some(v) = args.next() else {
                    eprintln!("error: {a} needs a value\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                match a.as_str() {
                    "--deny" => cfg.deny.push(v),
                    "--allow" => cfg.allow.push(v),
                    _ => cfg.baseline = Some(v.into()),
                }
            }
            "--list" => {
                for l in ALL_LINTS {
                    let default = if l.on_by_default() { "on " } else { "off" };
                    let waive = l
                        .waiver_key()
                        .map(|k| format!("// check: {k} <reason>"))
                        .unwrap_or_else(|| "not waivable".into());
                    println!(
                        "{:<20} [{default}] {:<72} waiver: {waive}",
                        l.id(),
                        l.describe()
                    );
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => {
                eprintln!("error: unknown flag {a}\n\n{USAGE}");
                return ExitCode::from(2);
            }
            _ if !root_set => {
                cfg.root = a.into();
                root_set = true;
            }
            _ => {
                eprintln!("error: more than one root given\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    for lint in cfg.deny.iter().chain(cfg.allow.iter()) {
        if stair_check::findings::Lint::from_id(lint).is_none() {
            eprintln!("error: unknown lint `{lint}` (try --list)");
            return ExitCode::from(2);
        }
    }
    match run(&cfg) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render_human());
            }
            ExitCode::from(report.exit_code() as u8)
        }
        Err(msg) => {
            eprintln!("stair-check: error: {msg}");
            ExitCode::from(2)
        }
    }
}
