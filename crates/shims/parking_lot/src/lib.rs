//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` returns the guard directly). A poisoned std lock means some
//! thread panicked while holding it; matching `parking_lot` semantics, we
//! simply continue with the inner data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
