//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::thread::scope` / `Scope::spawn` /
//! `ScopedJoinHandle::join`, which since Rust 1.63 are expressible directly
//! on `std::thread::scope`. This shim adapts the std API to crossbeam's
//! shape (closures receive a `&Scope` argument; `scope` and `join` return
//! `Result`s). One semantic difference: if a spawned thread panics and its
//! handle is never joined, std re-raises the panic when the scope exits
//! instead of returning `Err` — every caller in this workspace joins all
//! handles and `expect`s the results, so the difference is unobservable
//! here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads adapted from `std::thread::scope`.
pub mod thread {
    use std::any::Any;

    /// Result of joining a (possibly panicked) thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle to a scope within which threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owns the right to join a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// again so workers can spawn sub-workers, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope; all threads spawned within are joined before it
    /// returns. Returns `Ok` with the closure's value (panics propagate as
    /// panics, see module docs).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = vec![0u32; 8];
        let result = super::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slot) in data.iter_mut().enumerate() {
                handles.push(scope.spawn(move |_| {
                    *slot = i as u32 * 2;
                    i
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<usize>()
        })
        .expect("scope");
        assert_eq!(result, 28);
        assert_eq!(data, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let total = super::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let sub = inner.spawn(|_| 21);
                sub.join().expect("sub") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(total, 42);
    }
}
