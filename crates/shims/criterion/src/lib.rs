//! Offline stand-in for `criterion`.
//!
//! Supports the bench-definition surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter` — with a plain wall-clock measurement loop instead of
//! criterion's statistical machinery. Each benchmark prints one line:
//!
//! ```text
//! encoding_methods/Upstairs/e=[4]   time: 1.234 ms/iter   thrpt: 1620.1 MiB/s
//! ```
//!
//! Measurement: one warm-up call, then timed iterations until either
//! `measurement_time` elapses or `sample_size` iterations complete,
//! whichever comes first; the mean is reported. Set
//! `CRITERION_SHIM_FAST=1` to cap at 3 iterations for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: lets the harness report MiB/s or elem/s.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, also primes caches/allocations
        let cap = if std::env::var_os("CRITERION_SHIM_FAST").is_some() {
            3
        } else {
            self.sample_size.max(1)
        };
        let budget = self.measurement_time;
        let started = Instant::now();
        for _ in 0..cap {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

/// One named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim's warm-up is one call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the wall-clock spent per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, Duration::from_secs(2), None, |b| f(b));
        self
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut samples = Vec::new();
    f(&mut Bencher {
        samples: &mut samples,
        sample_size,
        measurement_time,
    });
    if samples.is_empty() {
        println!("{label:<52} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mean_s = mean.as_secs_f64();
    let time = if mean_s >= 1.0 {
        format!("{mean_s:.3} s/iter")
    } else if mean_s >= 1e-3 {
        format!("{:.3} ms/iter", mean_s * 1e3)
    } else {
        format!("{:.3} us/iter", mean_s * 1e6)
    };
    match throughput {
        Some(Throughput::Bytes(bytes)) if mean_s > 0.0 => {
            let mibs = bytes as f64 / mean_s / (1024.0 * 1024.0);
            println!("{label:<52} time: {time:<16} thrpt: {mibs:.1} MiB/s");
        }
        Some(Throughput::Elements(elems)) if mean_s > 0.0 => {
            let eps = elems as f64 / mean_s;
            println!("{label:<52} time: {time:<16} thrpt: {eps:.0} elem/s");
        }
        _ => println!("{label:<52} time: {time}"),
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_compiles_and_runs() {
        std::env::set_var("CRITERION_SHIM_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Bytes(1024));
        let mut acc = 0u64;
        group.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter(|| {
                acc = acc.wrapping_add((0..100u64).sum::<u64>());
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", "x"), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(acc > 0);
    }
}
