//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this shim
//! provides the (small) subset of the `rand` 0.8 API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`], and
//! [`rngs::SmallRng`]. The generator is xoshiro256++ seeded via SplitMix64
//! — the same algorithm family real `rand` uses for `SmallRng` on 64-bit
//! targets, so statistical quality is comparable. Streams are *not*
//! bit-compatible with the real crate; nothing in this workspace depends on
//! specific streams, only on determinism per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the uniform ("standard") distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open and inclusive integer ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    // Full-width inclusive range: every word is valid.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++: fast, small-state, high-quality; the shim's analogue
    /// of `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, per Vigna's reference seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        let trials = 100_000;
        for _ in 0..trials {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / trials as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u8..=255);
            let _ = y;
        }
    }
}
