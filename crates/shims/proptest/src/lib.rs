//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, `any::<T>()`, integer
//! range strategies, tuple strategies, [`collection::vec`] /
//! [`collection::btree_set`], [`ProptestConfig::with_cases`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros.
//!
//! Differences from the real crate, acceptable for this workspace:
//!
//! * **no shrinking** — a failing case reports its inputs (tests carry
//!   them in panic messages via `assert!` formatting) but is not minimized;
//! * **deterministic seeding** — each test derives its RNG seed from the
//!   test name, so failures reproduce exactly; set `PROPTEST_SEED` to
//!   explore a different stream;
//! * `prop_assume!` skips the current case rather than drawing a
//!   replacement, so a test runs *up to* `cases` cases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub use rand::Rng as TestRngCore;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = SmallRng;

/// Runner configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the workspace's heavier
        // codec properties fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic RNG for a named test, honouring
/// `PROPTEST_SEED` when set.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut seed: u64 = 0xcbf29ce484222325; // FNV offset basis
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    if let Ok(extra) = std::env::var("PROPTEST_SEED") {
        if let Ok(x) = extra.trim().parse::<u64>() {
            seed ^= x;
        }
    }
    SmallRng::seed_from_u64(seed)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen::<$t>(rng)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, bool);

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Lengths acceptable to [`vec()`]: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with the given size.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with exactly `size` distinct
    /// elements (caller must ensure the element domain is large enough).
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Generates sets of distinct elements from `element`.
    pub fn btree_set<S, L>(element: S, size: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target {
                set.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 10_000 * (target + 1),
                    "btree_set strategy cannot reach {target} distinct elements; \
                     element domain too small?"
                );
            }
            set
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case unless the precondition holds.
///
/// Must appear directly inside a [`proptest!`] body (it expands to
/// `continue` targeting the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone)]
    struct Pair {
        lo: usize,
        hi: usize,
    }

    fn arb_pair() -> impl Strategy<Value = Pair> {
        (0usize..100, 100usize..200).prop_map(|(lo, hi)| Pair { lo, hi })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in 0u8..=255) {
            prop_assert!((3..10).contains(&a));
            let _ = b;
        }

        #[test]
        fn mapped_strategies_compose(p in arb_pair(), seed in any::<u64>()) {
            prop_assume!(seed.is_multiple_of(2));
            prop_assert!(p.lo < p.hi, "lo {} hi {}", p.lo, p.hi);
        }

        #[test]
        fn collections_hit_requested_sizes(
            v in crate::collection::vec(any::<u8>(), 1..20),
            s in crate::collection::btree_set(0usize..50, 7),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert_eq!(s.len(), 7);
        }
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        use crate::Strategy;
        let s = crate::collection::vec(crate::any::<u64>(), 8);
        let a = s.generate(&mut crate::test_rng("x"));
        let b = s.generate(&mut crate::test_rng("x"));
        let c = s.generate(&mut crate::test_rng("y"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
