//! Property tests for the STAIR construction across randomized
//! configurations, payloads, and erasure patterns.
//!
//! These encode the paper's central claims:
//! * §4.2: any erasure pattern within the `(m, e)` coverage is decodable;
//! * §5.1.3: upstairs, downstairs, and standard encoding produce identical
//!   parity values;
//! * §5.2 Property 5.1: parity symbols depend only on data symbols up and
//!   to the left, with tread/riser exclusions;
//! * §5.3: executed `Mult_XOR` counts equal Eq. (5)/(6) exactly.

use proptest::prelude::*;
use stair::{CellKind, Config, EncodingMethod, GlobalPlacement, StairCodec, Stripe};

/// A random valid configuration plus a random within-coverage erasure
/// pattern, generated together.
#[derive(Debug, Clone)]
struct Case {
    config: Config,
    erased: Vec<(usize, usize)>,
}

fn arb_case(placement: GlobalPlacement) -> impl Strategy<Value = Case> {
    (3usize..10, 1usize..8, any::<u64>()).prop_map(move |(n, r, seed)| {
        let mut rng = Lcg(seed | 1);
        let m = 1 + rng.below(usize::min(2, n - 2).max(1));
        let max_mp = n - m;
        let m_prime = 1 + rng.below(usize::min(max_mp, 3));
        // Non-decreasing e with e_max ≤ r.
        let mut e: Vec<usize> = (0..m_prime).map(|_| 1 + rng.below(r)).collect();
        e.sort_unstable();
        // Keep at least one data symbol for inside placement: shrink e until
        // s < r·(n−m). n ≥ 3 and m ≤ n−2 guarantee r·(n−m) ≥ 2, so e = [1]
        // always terminates the loop.
        if placement == GlobalPlacement::Inside {
            while e.iter().sum::<usize>() >= r * (n - m) {
                if e.iter().all(|&x| x == 1) {
                    e.pop();
                } else {
                    e.fill(1);
                }
            }
        }
        let m_prime = e.len();
        let config = Config::with_placement(n, r, m, &e, placement).unwrap();

        // Random within-coverage pattern: pick m chunks to fail fully (or
        // partially), then up to m' other chunks with ≤ e_i failures.
        let mut chunks: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut chunks);
        let mut erased = Vec::new();
        for &c in chunks.iter().take(m) {
            let lost = 1 + rng.below(r);
            let mut rows: Vec<usize> = (0..r).collect();
            rng.shuffle(&mut rows);
            erased.extend(rows.into_iter().take(lost).map(|row| (row, c)));
        }
        for (i, &c) in chunks.iter().skip(m).take(m_prime).enumerate() {
            // e is non-decreasing; assign larger budgets to earlier picks.
            let budget = config.e()[m_prime - 1 - i];
            let lost = rng.below(budget + 1);
            let mut rows: Vec<usize> = (0..r).collect();
            rng.shuffle(&mut rows);
            erased.extend(rows.into_iter().take(lost).map(|row| (row, c)));
        }
        Case { config, erased }
    })
}

/// Deterministic small RNG so cases shrink reproducibly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n.max(1)
    }
    fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i + 1);
            v.swap(i, j);
        }
    }
}

fn encoded_stripe(config: &Config, seed: u8) -> (StairCodec, Stripe) {
    let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
    let mut stripe = Stripe::new(config.clone(), 8).unwrap();
    stripe.fill_pattern(seed);
    codec.encode(&mut stripe).unwrap();
    (codec, stripe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline fault-tolerance claim: every pattern within coverage
    /// decodes back to the pristine stripe (inside placement).
    #[test]
    fn within_coverage_patterns_decode_inside(
        case in arb_case(GlobalPlacement::Inside),
        seed in any::<u8>(),
    ) {
        prop_assume!(case.config.covers(&case.erased).unwrap());
        let (codec, stripe) = encoded_stripe(&case.config, seed);
        let pristine = stripe.clone();
        let mut damaged = stripe;
        damaged.erase(&case.erased).unwrap();
        codec.decode(&mut damaged, &case.erased).unwrap();
        prop_assert_eq!(damaged, pristine);
    }

    /// Same with outside global parities (§3/§4 baseline construction).
    #[test]
    fn within_coverage_patterns_decode_outside(
        case in arb_case(GlobalPlacement::Outside),
        seed in any::<u8>(),
    ) {
        prop_assume!(case.config.covers(&case.erased).unwrap());
        let (codec, stripe) = encoded_stripe(&case.config, seed);
        let pristine = stripe.clone();
        let mut damaged = stripe;
        damaged.erase(&case.erased).unwrap();
        codec.decode(&mut damaged, &case.erased).unwrap();
        prop_assert_eq!(damaged, pristine);
    }

    /// §5.1.3: both new encoding methods and standard encoding always
    /// produce the same values for all parity symbols.
    #[test]
    fn encoding_methods_agree(case in arb_case(GlobalPlacement::Inside), seed in any::<u8>()) {
        let codec: StairCodec = StairCodec::new(case.config.clone()).unwrap();
        let mut stripes = Vec::new();
        for method in [
            EncodingMethod::Upstairs,
            EncodingMethod::Downstairs,
            EncodingMethod::Standard,
        ] {
            let mut stripe = Stripe::new(case.config.clone(), 8).unwrap();
            stripe.fill_pattern(seed);
            codec.encode_with(method, &mut stripe).unwrap();
            stripes.push(stripe);
        }
        prop_assert_eq!(&stripes[0], &stripes[1]);
        prop_assert_eq!(&stripes[0], &stripes[2]);
    }

    /// §5.3: the executed Mult_XOR count of each scheduled method equals
    /// the analytic Eq. (5)/(6) prediction exactly.
    #[test]
    fn executed_mult_xors_match_formulas(case in arb_case(GlobalPlacement::Inside)) {
        let codec: StairCodec = StairCodec::new(case.config.clone()).unwrap();
        let counts = codec.mult_xor_counts();
        let up = codec.encode_schedule(EncodingMethod::Upstairs).unwrap();
        let down = codec.encode_schedule(EncodingMethod::Downstairs).unwrap();
        prop_assert_eq!(up.mult_xors(), counts.upstairs);
        prop_assert_eq!(down.mult_xors(), counts.downstairs);
    }

    /// §5.2 Property 5.1: a parity symbol at (i0, j0) never depends on data
    /// symbols below it or to its right; within a tread, parity symbols do
    /// not depend on data in *other* columns spanned by the same tread.
    #[test]
    fn parity_relations_satisfy_property_5_1(case in arb_case(GlobalPlacement::Inside)) {
        let codec: StairCodec = StairCodec::new(case.config.clone()).unwrap();
        let relations = codec.relations();
        let n = case.config.n();
        let m = case.config.m();
        let m_prime = case.config.m_prime();
        let layout = codec.layout();
        for (p, &(pi, pj)) in relations.parity_cells().iter().enumerate() {
            let _ = p;
            for &(di, dj) in relations.data_cells() {
                let coeff = relations.coefficient((pi, pj), (di, dj)).unwrap();
                if coeff == 0 {
                    continue;
                }
                prop_assert!(
                    di <= pi && dj <= pj,
                    "parity ({pi},{pj}) depends on data ({di},{dj}) below/right of it"
                );
                // Tread exclusion: an inside-global parity is unrelated to
                // data in other columns of the same tread (same h-range).
                if let CellKind::InsideGlobal { l, .. } = layout.kind((pi, pj)) {
                    let base = n - m - m_prime;
                    if dj >= base && dj != pj {
                        // Data column dj hosts globals of some l' < l; the
                        // tread spans columns with equal e. Exclusion only
                        // applies within the same tread (equal e values).
                        let l2 = dj - base;
                        if case.config.e()[l2] == case.config.e()[l] {
                            prop_assert!(
                                di < case.config.r() - case.config.e()[l2],
                                "ĝ at ({pi},{pj}) depends on same-tread column {dj} row {di}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Decoding uses only surviving sectors: corrupting *erased* sectors
    /// before decode must not change the result.
    #[test]
    fn decode_ignores_erased_contents(
        case in arb_case(GlobalPlacement::Inside),
        seed in any::<u8>(),
    ) {
        prop_assume!(case.config.covers(&case.erased).unwrap());
        prop_assume!(!case.erased.is_empty());
        let (codec, pristine) = encoded_stripe(&case.config, seed);
        let mut a = pristine.clone();
        a.erase(&case.erased).unwrap();
        let mut b = a.clone();
        // Fill b's erased cells with garbage instead of zeros.
        for &(row, col) in &case.erased {
            b.cell_mut(row, col).fill(0xDB);
        }
        codec.decode(&mut a, &case.erased).unwrap();
        codec.decode(&mut b, &case.erased).unwrap();
        prop_assert_eq!(&a, &pristine);
        prop_assert_eq!(&b, &pristine);
    }
}

/// Exhaustive worst-case check on the paper's running example: every way of
/// choosing 2 failed chunks and assigning (1,1,2) sector failures among 3
/// other chunks (with failures at random rows) must decode.
#[test]
fn exhaustive_worst_case_assignments_decode() {
    let config = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
    let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
    let mut stripe = Stripe::new(config.clone(), 4).unwrap();
    stripe.fill_pattern(99);
    codec.encode(&mut stripe).unwrap();
    let pristine = stripe.clone();

    let n = 8;
    let mut cases = 0usize;
    for f1 in 0..n {
        for f2 in f1 + 1..n {
            // Pick the chunk with 2 sector failures and two chunks with 1.
            let rest: Vec<usize> = (0..n).filter(|&c| c != f1 && c != f2).collect();
            // A few deterministic assignments rather than all 6·5·4.
            for pick in 0..4 {
                let c2 = rest[pick % rest.len()];
                let c1a = rest[(pick + 1) % rest.len()];
                let c1b = rest[(pick + 3) % rest.len()];
                if c2 == c1a || c2 == c1b || c1a == c1b {
                    continue;
                }
                let mut erased: Vec<(usize, usize)> = Vec::new();
                erased.extend((0..4).map(|i| (i, f1)));
                erased.extend((0..4).map(|i| (i, f2)));
                erased.push(((pick) % 4, c2));
                erased.push(((pick + 2) % 4, c2));
                erased.push(((pick + 1) % 4, c1a));
                erased.push(((pick + 3) % 4, c1b));
                assert!(config.covers(&erased).unwrap(), "{erased:?}");
                let mut damaged = pristine.clone();
                damaged.erase(&erased).unwrap();
                codec.decode(&mut damaged, &erased).unwrap();
                assert_eq!(damaged, pristine, "pattern {erased:?}");
                cases += 1;
            }
        }
    }
    assert!(cases > 50, "exercised {cases} worst-case patterns");
}
