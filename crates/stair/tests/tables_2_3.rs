//! Golden tests: the generated schedules must reproduce the paper's worked
//! examples — Table 2 (upstairs decoding) and Table 3 (downstairs encoding)
//! for the running configuration n = 8, r = 4, m = 2, e = (1, 1, 2) —
//! step for step, symbol for symbol.

use stair::{Config, EncodingMethod, GlobalPlacement, StairCodec};

/// Table 2 of the paper: upstairs decoding of the Fig. 4 worst case
/// (outside globals; chunks 6 and 7 failed; sector failures at the bottom
/// of chunks 3, 4, and 5).
#[test]
fn table_2_upstairs_decoding_schedule() {
    let config = Config::with_placement(8, 4, 2, &[1, 1, 2], GlobalPlacement::Outside).unwrap();
    let codec: StairCodec = StairCodec::new(config).unwrap();
    let erased: Vec<(usize, usize)> = (0..4)
        .flat_map(|i| [(i, 6), (i, 7)])
        .chain([(3, 3), (3, 4), (2, 5), (3, 5)])
        .collect();
    let plan = codec.plan_decode(&erased).unwrap();
    let rendered = plan.schedule().render(codec.layout());
    let expected = "  1  d0,0, d1,0, d2,0, d3,0 => d*0,0, d*1,0   [Ccol]
  2  d0,1, d1,1, d2,1, d3,1 => d*0,1, d*1,1   [Ccol]
  3  d0,2, d1,2, d2,2, d3,2 => d*0,2, d*1,2   [Ccol]
  4  d*0,0, d*0,1, d*0,2, g0,0, g0,1, g0,2 => d*0,3, d*0,4, d*0,5   [Crow]
  5  d0,3, d1,3, d2,3, d*0,3 => d3,3, d*1,3   [Ccol]
  6  d0,4, d1,4, d2,4, d*0,4 => d3,4, d*1,4   [Ccol]
  7  d*1,0, d*1,1, d*1,2, d*1,3, d*1,4, g1,2 => d*1,5   [Crow]
  8  d0,5, d1,5, d*0,5, d*1,5 => d2,5, d3,5   [Ccol]
  9  d0,0, d0,1, d0,2, d0,3, d0,4, d0,5 => p0,0, p0,1   [Crow]
 10  d1,0, d1,1, d1,2, d1,3, d1,4, d1,5 => p1,0, p1,1   [Crow]
 11  d2,0, d2,1, d2,2, d2,3, d2,4, d2,5 => p2,0, p2,1   [Crow]
 12  d3,0, d3,1, d3,2, d3,3, d3,4, d3,5 => p3,0, p3,1   [Crow]
";
    assert_eq!(rendered, expected, "got:\n{rendered}");
    // The paper's Table 2 lists 12 steps; the decode cost follows.
    assert_eq!(plan.schedule().steps().len(), 12);
}

/// Table 3 of the paper: downstairs encoding with inside global parities.
#[test]
fn table_3_downstairs_encoding_schedule() {
    let config = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
    let codec: StairCodec = StairCodec::new(config).unwrap();
    let schedule = codec.encode_schedule(EncodingMethod::Downstairs).unwrap();
    let rendered = schedule.render(codec.layout());
    let expected =
        "  1  d0,0, d0,1, d0,2, d0,3, d0,4, d0,5 => p0,0, p0,1, p'0,0, p'0,1, p'0,2   [Crow]
  2  d1,0, d1,1, d1,2, d1,3, d1,4, d1,5 => p1,0, p1,1, p'1,0, p'1,1, p'1,2   [Crow]
  3  p'0,2, p'1,2, g0,2, g1,2 => p'2,2, p'3,2   [Ccol]
  4  d2,0, d2,1, d2,2, d2,3, d2,4, p'2,2 => g^0,2, p2,0, p2,1, p'2,0, p'2,1   [Crow]
  5  p'0,1, p'1,1, p'2,1, g0,1 => p'3,1   [Ccol]
  6  p'0,0, p'1,0, p'2,0, g0,0 => p'3,0   [Ccol]
  7  d3,0, d3,1, d3,2, p'3,0, p'3,1, p'3,2 => g^0,0, g^0,1, g^1,2, p3,0, p3,1   [Crow]
";
    assert_eq!(rendered, expected, "got:\n{rendered}");
    // Table 3 lists 7 steps; the total matches Eq. (6): 136 Mult_XORs.
    assert_eq!(schedule.steps().len(), 7);
    assert_eq!(schedule.mult_xors(), 136);
}

/// The upstairs encoding schedule must cost exactly Eq. (5)'s 120
/// Mult_XORs for the running example.
#[test]
fn upstairs_encoding_cost_matches_eq_5() {
    let config = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
    let codec: StairCodec = StairCodec::new(config).unwrap();
    let schedule = codec.encode_schedule(EncodingMethod::Upstairs).unwrap();
    assert_eq!(schedule.mult_xors(), 120);
}
