//! Regression: the process-global `stair-gf` operation counters — the
//! ones the observability layer reports as `gf.mult_xors` /
//! `gf.region_bytes` — tick exactly as the paper's schedule costs
//! predict when a known geometry encodes and decodes.

use stair::{Config, EncodingMethod, StairCodec, Stripe};
use stair_gf::counters;

/// One test function on purpose: the counters are process-global, so
/// measurements must not interleave with concurrent tests in this
/// binary.
#[test]
fn encode_and_decode_tick_the_global_counters_as_planned() {
    let codec: StairCodec = StairCodec::new(Config::new(8, 4, 2, &[1, 1, 2]).unwrap()).unwrap();
    let symbol = 16usize;
    let counts = codec.mult_xor_counts();

    let measure = |f: &mut dyn FnMut()| {
        let (m0, b0) = (counters::mult_xors(), counters::region_bytes());
        f();
        (counters::mult_xors() - m0, counters::region_bytes() - b0)
    };

    // Encoding: the measured Mult_XOR count equals the planned schedule
    // cost for each method (which the codec's own tests tie to the
    // analytic Eq. 5/6 formulas), and every operation moved one
    // symbol-sized region.
    for (method, expected) in [
        (EncodingMethod::Upstairs, counts.upstairs),
        (EncodingMethod::Downstairs, counts.downstairs),
        (EncodingMethod::Standard, counts.standard),
    ] {
        let mut stripe = Stripe::new(codec.config().clone(), symbol).unwrap();
        stripe.fill_pattern(3);
        let (mults, bytes) = measure(&mut || codec.encode_with(method, &mut stripe).unwrap());
        assert_eq!(mults as usize, expected, "{method:?} Mult_XORs");
        assert_eq!(bytes as usize, expected * symbol, "{method:?} bytes");
    }

    // Decoding the worst-case pattern: the executed plan costs exactly
    // what it planned.
    let mut stripe = Stripe::new(codec.config().clone(), symbol).unwrap();
    stripe.fill_pattern(9);
    codec.encode(&mut stripe).unwrap();
    let pristine = stripe.clone();
    let erased: Vec<(usize, usize)> = (0..4)
        .flat_map(|i| [(i, 6), (i, 7)])
        .chain([(3, 3), (3, 4), (2, 5), (3, 5)])
        .collect();
    stripe.erase(&erased).unwrap();
    let plan = codec.plan_decode(&erased).unwrap();
    let (mults, bytes) = measure(&mut || codec.decode(&mut stripe, &erased).unwrap());
    assert_eq!(stripe, pristine);
    assert_eq!(mults as usize, plan.mult_xors(), "decode Mult_XORs");
    assert_eq!(bytes as usize, plan.mult_xors() * symbol, "decode bytes");
}
