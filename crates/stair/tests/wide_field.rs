//! The codec is generic over the Galois field: GF(2^16) lifts the
//! GF(2^8) limits `n + m' ≤ 256` and `r + e_max ≤ 256`, allowing very tall
//! chunks (large r) — the regime where STAIR's space saving approaches m'
//! (Fig. 10).

use stair::{Config, EncodingMethod, StairCodec, Stripe};
use stair_gf::Gf16;

#[test]
fn gf16_codec_round_trips() {
    let config = Config::new(8, 6, 2, &[1, 2]).unwrap();
    let codec: StairCodec<Gf16> = StairCodec::new(config.clone()).unwrap();
    // Symbol size must hold whole u16 elements.
    let mut stripe = Stripe::new(config, 16).unwrap();
    stripe.fill_pattern(3);
    codec.encode(&mut stripe).unwrap();
    let pristine = stripe.clone();
    let erased: Vec<(usize, usize)> = (0..6)
        .flat_map(|i| [(i, 6), (i, 7)])
        .chain([(5, 4), (4, 5), (5, 5)])
        .collect();
    stripe.erase(&erased).unwrap();
    codec.decode(&mut stripe, &erased).unwrap();
    assert_eq!(stripe, pristine);
}

#[test]
fn gf16_and_gf8_choose_same_methods() {
    // Method selection is driven by the Mult_XOR model, which is
    // field-independent.
    let config = Config::new(8, 16, 2, &[4]).unwrap();
    let c8: StairCodec = StairCodec::new(config.clone()).unwrap();
    let c16: StairCodec<Gf16> = StairCodec::new(config).unwrap();
    assert_eq!(c8.best_method(), c16.best_method());
    assert_eq!(
        c8.mult_xor_counts().upstairs,
        c16.mult_xor_counts().upstairs
    );
}

#[test]
fn gf16_encoding_methods_agree() {
    let config = Config::new(6, 4, 1, &[1, 1]).unwrap();
    let codec: StairCodec<Gf16> = StairCodec::new(config.clone()).unwrap();
    let mut stripes = Vec::new();
    for method in [
        EncodingMethod::Upstairs,
        EncodingMethod::Downstairs,
        EncodingMethod::Standard,
    ] {
        let mut stripe = Stripe::new(config.clone(), 8).unwrap();
        stripe.fill_pattern(11);
        codec.encode_with(method, &mut stripe).unwrap();
        stripes.push(stripe);
    }
    assert_eq!(stripes[0], stripes[1]);
    assert_eq!(stripes[0], stripes[2]);
}

/// GF(2^8) caps r + e_max at 256; GF(2^16) goes beyond.
#[test]
fn gf16_supports_tall_chunks() {
    let config = Config::with_placement(4, 255, 1, &[2], stair::GlobalPlacement::Inside);
    // r + e_max = 257 > 256: the Config itself validates against GF(2^8).
    assert!(config.is_err());
    // A slightly smaller configuration works for both fields.
    let config = Config::new(4, 254, 1, &[2]).unwrap();
    let codec: StairCodec<Gf16> = StairCodec::new(config.clone()).unwrap();
    let mut stripe = Stripe::new(config, 2).unwrap();
    stripe.fill_pattern(1);
    codec.encode(&mut stripe).unwrap();
    let pristine = stripe.clone();
    let erased = vec![(253, 0), (252, 1), (253, 1)];
    stripe.erase(&erased).unwrap();
    codec.decode(&mut stripe, &erased).unwrap();
    assert_eq!(stripe, pristine);
}
