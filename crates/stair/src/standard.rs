//! Standard (dense) encoding and the uneven parity relations of §5.2.
//!
//! After relocating the global parities inside the stripe, each parity
//! symbol is some fixed linear combination of the data symbols. This module
//! derives that dense relation by executing an encoding schedule
//! *symbolically* (unit vectors in place of sectors), yielding:
//!
//! * the **standard encoding** method of §5.3 (each parity computed directly
//!   from its contributing data symbols, as in classical Reed–Solomon);
//! * the **update penalty** metric of §6.3 (how many parity sectors must be
//!   rewritten when one data sector changes);
//! * a machine-checkable form of **Property 5.1** (parity symbol at
//!   `(i₀, j₀)` depends only on data symbols `(i, j)` with `i ≤ i₀`,
//!   `j ≤ j₀`, with tread/riser exclusions).

use stair_gf::Field;

use crate::layout::{Cell, Layout};
use crate::schedule::{Canvas, Schedule};
use crate::Error;

/// The dense data→parity coefficient map of one configuration.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct ParityRelations<F: Field> {
    data_cells: Vec<Cell>,
    parity_cells: Vec<Cell>,
    /// `coeffs[p][d]`: coefficient of data cell `d` in parity cell `p`.
    coeffs: Vec<Vec<F::Elem>>,
}

impl<F: Field> ParityRelations<F> {
    /// Derives the relations by symbolically executing `schedule`, which
    /// must compute every parity cell from the data cells and pinned-zero
    /// (or outside) globals.
    pub(crate) fn derive(layout: &Layout, schedule: &Schedule<F>, parity_cells: Vec<Cell>) -> Self {
        let data_cells = layout.data_cells();
        let basis = data_cells.len();
        let index_of = |cell: Cell| data_cells.iter().position(|&c| c == cell);
        let values = schedule.execute_symbolic(layout, basis, |cell| {
            if let Some(i) = index_of(cell) {
                let mut v = vec![F::zero(); basis];
                v[i] = F::one();
                return Some(v);
            }
            // Outside/pinned-zero globals contribute nothing to the
            // data-relative relation.
            if matches!(layout.kind(cell), crate::CellKind::OutsideGlobal { .. }) {
                return Some(vec![F::zero(); basis]);
            }
            None
        });
        let coeffs = parity_cells
            .iter()
            .map(|c| {
                values
                    .get(c)
                    .unwrap_or_else(|| panic!("parity {c:?} not computed"))
                    .clone()
            })
            .collect();
        ParityRelations {
            data_cells,
            parity_cells,
            coeffs,
        }
    }

    /// The data cells, in payload (row-major) order.
    pub fn data_cells(&self) -> &[Cell] {
        &self.data_cells
    }

    /// The parity cells this relation produces.
    pub fn parity_cells(&self) -> &[Cell] {
        &self.parity_cells
    }

    /// The coefficient of `data` in `parity`, or `None` if either cell is
    /// not part of this relation.
    pub fn coefficient(&self, parity: Cell, data: Cell) -> Option<F::Elem> {
        let p = self.parity_cells.iter().position(|&c| c == parity)?;
        let d = self.data_cells.iter().position(|&c| c == data)?;
        Some(self.coeffs[p][d])
    }

    /// How many data symbols contribute to the `p`-th parity cell.
    pub fn contributors(&self, p: usize) -> usize {
        self.coeffs[p].iter().filter(|&&c| c != F::zero()).count()
    }

    /// Total `Mult_XOR` cost of standard encoding: the sum over parities of
    /// their contributing data symbols (§5.3).
    pub fn standard_mult_xors(&self) -> usize {
        (0..self.parity_cells.len())
            .map(|p| self.contributors(p))
            .sum()
    }

    /// The update-penalty statistics of §6.3.
    pub fn update_penalty(&self) -> UpdatePenalty {
        let n_data = self.data_cells.len();
        let per_data: Vec<usize> = (0..n_data)
            .map(|d| self.coeffs.iter().filter(|row| row[d] != F::zero()).count())
            .collect();
        let sum: usize = per_data.iter().sum();
        UpdatePenalty {
            average: sum as f64 / n_data as f64,
            min: per_data.iter().copied().min().unwrap_or(0),
            max: per_data.iter().copied().max().unwrap_or(0),
            per_data,
        }
    }

    /// Standard encoding over byte regions: every parity cell is computed
    /// directly as its dense combination of data cells.
    pub(crate) fn encode(&self, canvas: &mut Canvas<'_>) -> Result<(), Error> {
        let mut scratch = vec![0u8; canvas.symbol()];
        for (p, &pcell) in self.parity_cells.iter().enumerate() {
            scratch.fill(0);
            for (d, &dcell) in self.data_cells.iter().enumerate() {
                let c = self.coeffs[p][d];
                if c != F::zero() {
                    F::mult_xor_region(&mut scratch, canvas.get(dcell), c);
                }
            }
            canvas.set(pcell, &scratch);
        }
        Ok(())
    }
}

/// Update-penalty statistics: the number of parity sectors that must be
/// updated when a single data sector is modified (§6.3).
#[derive(Clone, Debug, PartialEq)]
pub struct UpdatePenalty {
    /// Mean over all data symbols — the quantity plotted in Figs. 14–15.
    pub average: f64,
    /// Cheapest data symbol to update.
    pub min: usize,
    /// Most expensive data symbol to update.
    pub max: usize,
    /// Penalty of each data symbol, in payload order.
    pub per_data: Vec<usize>,
}
