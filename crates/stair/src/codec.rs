//! The user-facing STAIR codec: construction, encoding (upstairs /
//! downstairs / standard / baseline two-phase), and upstairs decoding.

use stair_gf::{Field, Gf8};
use stair_rs::MdsCode;

use crate::layout::{Cell, CellKind, Layout};
use crate::peel::{PeelOrder, Peeler};
use crate::schedule::{Canvas, Schedule};
use crate::standard::ParityRelations;
use crate::stripe::Stripe;
use crate::{Config, Error, GlobalPlacement, MultXorCounts};

/// The encoding methods of the paper.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum EncodingMethod {
    /// Recovery-based bottom-up encoding (§5.1.1). Inside placement only.
    Upstairs,
    /// Top-down, right-to-left encoding (§5.1.2). Inside placement only.
    Downstairs,
    /// Dense per-parity combination of data symbols (§5.3), as in classical
    /// Reed–Solomon. Works for both placements.
    Standard,
    /// The baseline two-phase encoding of §3 (row phase producing row and
    /// intermediate parities, then column phase producing global parities).
    /// Outside placement only.
    TwoPhase,
}

/// A reusable decoding plan for one erasure pattern (schedule plus its
/// cost), produced by [`StairCodec::plan_decode`].
#[derive(Clone, Debug)]
pub struct DecodePlan<F: Field = Gf8> {
    erased: Vec<Cell>,
    schedule: Schedule<F>,
}

impl<F: Field> DecodePlan<F> {
    /// The schedule's planned `Mult_XOR` count.
    pub fn mult_xors(&self) -> usize {
        self.schedule.mult_xors()
    }

    /// The underlying schedule (e.g. for rendering as in Table 2).
    pub fn schedule(&self) -> &Schedule<F> {
        &self.schedule
    }

    /// The cells this plan recovers: the full erasure pattern for
    /// [`StairCodec::plan_decode`] plans, or the `wanted` subset for
    /// [`StairCodec::plan_recover`] plans.
    pub fn recovers(&self) -> &[(usize, usize)] {
        &self.erased
    }
}

/// A STAIR encoder/decoder for one configuration.
///
/// Construction precomputes the `C_row`/`C_col` codes, both encoding
/// schedules, the dense parity relations, and the per-method `Mult_XOR`
/// counts; the cheapest method is then used by [`StairCodec::encode`]
/// (§5.3: "we always pre-compute the number of Mult_XORs for each of the
/// encoding methods, and then choose the one with the fewest").
///
/// # Example
///
/// ```
/// use stair::{Config, EncodingMethod, StairCodec, Stripe};
///
/// let config = Config::new(8, 4, 2, &[1, 1, 2])?;
/// let codec: StairCodec = StairCodec::new(config.clone())?;
/// // For this configuration upstairs encoding is the cheapest.
/// assert_eq!(codec.best_method(), EncodingMethod::Upstairs);
/// # Ok::<(), stair::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct StairCodec<F: Field = Gf8> {
    config: Config,
    layout: Layout,
    crow: MdsCode<F>,
    ccol: MdsCode<F>,
    enc_upstairs: Option<Schedule<F>>,
    enc_downstairs: Option<Schedule<F>>,
    enc_two_phase: Option<Schedule<F>>,
    relations: ParityRelations<F>,
    counts: MultXorCounts,
    best: EncodingMethod,
}

impl<F: Field> StairCodec<F> {
    /// Builds the codec for a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration needs a wider
    /// field than `F` (`n + m' > F::ORDER` or `r + e_max > F::ORDER`), and
    /// propagates construction failures of the constituent codes.
    pub fn new(config: Config) -> Result<Self, Error> {
        let n = config.n();
        let r = config.r();
        let m = config.m();
        let m_prime = config.m_prime();
        let e_max = config.e_max();
        if n + m_prime > F::ORDER || r + e_max > F::ORDER {
            return Err(Error::InvalidConfig(format!(
                "code lengths (n+m'={}, r+e_max={}) exceed field order {}",
                n + m_prime,
                r + e_max,
                F::ORDER
            )));
        }
        let layout = Layout::new(&config);
        let crow = MdsCode::new(n + m_prime, n - m)?;
        let ccol = MdsCode::new(r + e_max, r)?;

        let parity_targets: Vec<Cell> = match config.placement() {
            GlobalPlacement::Inside => layout.parity_cells(),
            GlobalPlacement::Outside => {
                let mut t = layout.parity_cells();
                t.extend(layout.outside_global_cells());
                t
            }
        };

        let (enc_upstairs, enc_downstairs, enc_two_phase) = match config.placement() {
            GlobalPlacement::Inside => {
                let avail = encode_availability(&layout);
                // The m row-parity chunks play the role of the "failed
                // chunks" during upstairs encoding and are recovered
                // row-by-row last (§5.1.1), never by column steps.
                let parity_cols: Vec<usize> = (n - m..n).collect();
                let up = Peeler::new(&layout, &crow, &ccol, avail.clone())
                    .with_excluded_cols(&parity_cols)
                    .build(&parity_targets, PeelOrder::Upstairs)?;
                let down = Peeler::new(&layout, &crow, &ccol, avail)
                    .build(&parity_targets, PeelOrder::Downstairs)?;
                (Some(up), Some(down), None)
            }
            GlobalPlacement::Outside => {
                let two = two_phase_schedule(&layout, &crow, &ccol)?;
                (None, None, Some(two))
            }
        };

        let relation_schedule = enc_upstairs
            .as_ref()
            .or(enc_two_phase.as_ref())
            .expect("one encode schedule always exists");
        let relations = ParityRelations::derive(&layout, relation_schedule, parity_targets.clone());

        let mut counts = MultXorCounts::analytic(&config);
        counts.standard = relations.standard_mult_xors();
        let best = match config.placement() {
            GlobalPlacement::Inside => counts.best(),
            GlobalPlacement::Outside => EncodingMethod::TwoPhase,
        };

        Ok(StairCodec {
            config,
            layout,
            crow,
            ccol,
            enc_upstairs,
            enc_downstairs,
            enc_two_phase,
            relations,
            counts,
            best,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The coordinate layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Per-method `Mult_XOR` counts (upstairs/downstairs analytic, standard
    /// from the dense relations).
    pub fn mult_xor_counts(&self) -> MultXorCounts {
        self.counts
    }

    /// The encoding method [`StairCodec::encode`] will use.
    pub fn best_method(&self) -> EncodingMethod {
        self.best
    }

    /// The dense data→parity relations (standard encoding matrix, update
    /// penalties, Property 5.1).
    pub fn relations(&self) -> &ParityRelations<F> {
        &self.relations
    }

    /// The encoding schedule for a method, if available for this placement.
    pub fn encode_schedule(&self, method: EncodingMethod) -> Option<&Schedule<F>> {
        match method {
            EncodingMethod::Upstairs => self.enc_upstairs.as_ref(),
            EncodingMethod::Downstairs => self.enc_downstairs.as_ref(),
            EncodingMethod::TwoPhase => self.enc_two_phase.as_ref(),
            EncodingMethod::Standard => None,
        }
    }

    /// Encodes a stripe in place with the cheapest method.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the stripe was allocated for a
    /// different configuration.
    pub fn encode(&self, stripe: &mut Stripe) -> Result<(), Error> {
        self.encode_with(self.best, stripe)
    }

    /// Encodes a stripe in place with an explicit method.
    ///
    /// # Errors
    ///
    /// * [`Error::ShapeMismatch`] if the stripe belongs to another config;
    /// * [`Error::InvalidConfig`] if the method is unavailable for this
    ///   placement (e.g. upstairs with outside globals).
    pub fn encode_with(&self, method: EncodingMethod, stripe: &mut Stripe) -> Result<(), Error> {
        self.check_stripe(stripe)?;
        let mut canvas = Canvas::new(&self.layout, stripe);
        self.encode_on(method, &mut canvas)?;
        if self.config.placement() == GlobalPlacement::Outside {
            canvas.export_outside_globals(&self.layout);
        }
        Ok(())
    }

    /// Runs one encoding method against an already-built canvas (shared by
    /// the inherent API and the [`stair_code::ErasureCode`] impl).
    pub(crate) fn encode_on(
        &self,
        method: EncodingMethod,
        canvas: &mut Canvas<'_>,
    ) -> Result<(), Error> {
        match method {
            EncodingMethod::Standard => self.relations.encode(canvas),
            _ => {
                let schedule = self.encode_schedule(method).ok_or_else(|| {
                    Error::InvalidConfig(format!(
                        "{method:?} encoding is unavailable for {:?} placement",
                        self.config.placement()
                    ))
                })?;
                schedule.execute(canvas);
                Ok(())
            }
        }
    }

    /// Builds a reusable decoding plan for an erasure pattern.
    ///
    /// The plan implements the practical decoding strategy of §4.3: rows
    /// repairable locally (≤ m erased symbols) never touch global parities,
    /// and only the virtual symbols actually needed are computed.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPattern`] for malformed patterns;
    /// * [`Error::Unrecoverable`] if peeling cannot repair the pattern
    ///   (never happens within the `(m, e)` coverage).
    pub fn plan_decode(&self, erased: &[(usize, usize)]) -> Result<DecodePlan<F>, Error> {
        self.plan_recover(erased, erased)
    }

    /// Builds a plan that recovers only the `wanted` subset of the erased
    /// sectors — the degraded-read path: serving one lost sector does not
    /// require repairing the whole stripe.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPattern`] if `wanted` is not a subset of `erased`
    ///   or either set is malformed;
    /// * [`Error::Unrecoverable`] if peeling cannot reach the wanted cells.
    pub fn plan_recover(
        &self,
        erased: &[(usize, usize)],
        wanted: &[(usize, usize)],
    ) -> Result<DecodePlan<F>, Error> {
        let counts = self.config.erasure_counts(erased)?;
        for w in wanted {
            if !erased.contains(w) {
                return Err(Error::InvalidPattern(format!(
                    "wanted cell {w:?} is not in the erased set"
                )));
            }
        }
        let ccols = self.layout.canonical_cols();
        let mut avail = decode_availability(&self.layout);
        for &(row, col) in erased {
            avail[row * ccols + col] = false;
        }
        let targets: Vec<Cell> = wanted.to_vec();

        // §4.3: designate the m chunks with the most lost symbols as the
        // "failed chunks" recovered by row parities last; everything else
        // may use column recovery. Retry unrestricted if the restricted
        // peel stalls (can only happen outside the guaranteed coverage).
        let mut order: Vec<usize> = (0..self.config.n()).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(counts[c]));
        let excluded: Vec<usize> = order
            .into_iter()
            .take(self.config.m())
            .filter(|&c| counts[c] > 0)
            .collect();
        let restricted = Peeler::new(&self.layout, &self.crow, &self.ccol, avail.clone())
            .with_excluded_cols(&excluded)
            .build(&targets, PeelOrder::Upstairs);
        let schedule = match restricted {
            Ok(s) => s,
            Err(Error::Unrecoverable { .. }) => {
                Peeler::new(&self.layout, &self.crow, &self.ccol, avail)
                    .build(&targets, PeelOrder::Upstairs)?
            }
            Err(e) => return Err(e),
        };
        Ok(DecodePlan {
            erased: targets,
            schedule,
        })
    }

    /// Repairs a stripe in place according to a plan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the stripe belongs to another
    /// configuration.
    pub fn apply_plan(&self, plan: &DecodePlan<F>, stripe: &mut Stripe) -> Result<(), Error> {
        self.check_stripe(stripe)?;
        let mut canvas = Canvas::new(&self.layout, stripe);
        plan.schedule.execute(&mut canvas);
        Ok(())
    }

    /// Repairs the listed erased sectors in place (plan + apply).
    ///
    /// # Errors
    ///
    /// See [`StairCodec::plan_decode`] and [`StairCodec::apply_plan`].
    pub fn decode(&self, stripe: &mut Stripe, erased: &[(usize, usize)]) -> Result<(), Error> {
        let plan = self.plan_decode(erased)?;
        self.apply_plan(&plan, stripe)
    }

    /// Degraded read: returns the contents of sector `(row, col)` while the
    /// stripe carries the given erasures, reconstructing (and repairing in
    /// place) only what that one sector needs.
    ///
    /// # Errors
    ///
    /// See [`StairCodec::plan_recover`]; reads of healthy sectors never
    /// fail.
    pub fn read_sector_degraded(
        &self,
        stripe: &mut Stripe,
        erased: &[(usize, usize)],
        row: usize,
        col: usize,
    ) -> Result<Vec<u8>, Error> {
        self.check_stripe(stripe)?;
        if row >= self.config.r() || col >= self.config.n() {
            return Err(Error::InvalidPattern(format!("({row},{col}) out of range")));
        }
        if erased.contains(&(row, col)) {
            let plan = self.plan_recover(erased, &[(row, col)])?;
            self.apply_plan(&plan, stripe)?;
        }
        Ok(stripe.cell(row, col).to_vec())
    }

    fn check_stripe(&self, stripe: &Stripe) -> Result<(), Error> {
        if stripe.config() != &self.config {
            return Err(Error::ShapeMismatch(
                "stripe was allocated for a different configuration".into(),
            ));
        }
        Ok(())
    }
}

/// Initial availability for encoding: data cells and pinned/outside global
/// cells are available; every parity and virtual cell is unknown.
fn encode_availability(layout: &Layout) -> Vec<bool> {
    grid_availability(layout, |kind| {
        matches!(kind, CellKind::Data | CellKind::OutsideGlobal { .. })
    })
}

/// Initial availability for decoding: all stored cells plus global cells
/// (outside globals are assumed always available, §3; pinned zeros under
/// inside placement).
fn decode_availability(layout: &Layout) -> Vec<bool> {
    grid_availability(layout, |kind| {
        matches!(
            kind,
            CellKind::Data
                | CellKind::RowParity
                | CellKind::InsideGlobal { .. }
                | CellKind::OutsideGlobal { .. }
        )
    })
}

fn grid_availability(layout: &Layout, f: impl Fn(CellKind) -> bool) -> Vec<bool> {
    let mut avail = vec![false; layout.canonical_rows() * layout.canonical_cols()];
    for row in 0..layout.canonical_rows() {
        for col in 0..layout.canonical_cols() {
            if f(layout.kind((row, col))) {
                avail[row * layout.canonical_cols() + col] = true;
            }
        }
    }
    avail
}

/// The literal two-phase baseline encoding of §3 (outside placement):
/// Phase 1 encodes every row from its data symbols; Phase 2 encodes each
/// intermediate chunk down to its real global parities.
fn two_phase_schedule<F: Field>(
    layout: &Layout,
    crow: &MdsCode<F>,
    ccol: &MdsCode<F>,
) -> Result<Schedule<F>, Error> {
    let (n, r, m) = (layout.n(), layout.r(), layout.m());
    let m_prime = layout.m_prime();
    let mut steps = Vec::new();
    let data_idx: Vec<usize> = (0..n - m).collect();
    let parity_idx: Vec<usize> = (n - m..n + m_prime).collect();
    let row_coeff = crow.recovery_coefficients(&data_idx, &parity_idx)?;
    for i in 0..r {
        steps.push(crate::schedule::Step {
            code: crate::schedule::StepCode::Row(i),
            inputs: data_idx.iter().map(|&j| (i, j)).collect(),
            outputs: parity_idx.iter().map(|&j| (i, j)).collect(),
            coeff: row_coeff.clone(),
        });
    }
    let col_in: Vec<usize> = (0..r).collect();
    for l in 0..m_prime {
        let el = layout_e(layout, l);
        let wanted: Vec<usize> = (r..r + el).collect();
        let coeff = ccol.recovery_coefficients(&col_in, &wanted)?;
        steps.push(crate::schedule::Step {
            code: crate::schedule::StepCode::Col(n + l),
            inputs: col_in.iter().map(|&i| (i, n + l)).collect(),
            outputs: wanted.iter().map(|&i| (i, n + l)).collect(),
            coeff,
        });
    }
    Ok(Schedule { steps })
}

fn layout_e(layout: &Layout, l: usize) -> usize {
    layout
        .outside_global_cells()
        .iter()
        .filter(|&&(_, col)| col == layout.n() + l)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_codec() -> StairCodec {
        StairCodec::new(Config::new(8, 4, 2, &[1, 1, 2]).unwrap()).unwrap()
    }

    fn encode_round_trip(codec: &StairCodec, method: EncodingMethod) -> Stripe {
        let mut stripe = Stripe::new(codec.config().clone(), 8).unwrap();
        stripe.fill_pattern(42);
        codec.encode_with(method, &mut stripe).unwrap();
        stripe
    }

    #[test]
    fn all_encoding_methods_agree() {
        let codec = paper_codec();
        let up = encode_round_trip(&codec, EncodingMethod::Upstairs);
        let down = encode_round_trip(&codec, EncodingMethod::Downstairs);
        let std_ = encode_round_trip(&codec, EncodingMethod::Standard);
        assert_eq!(
            up, down,
            "upstairs and downstairs must produce identical parities"
        );
        assert_eq!(up, std_, "standard must produce identical parities");
    }

    #[test]
    fn worst_case_pattern_decodes() {
        let codec = paper_codec();
        let mut stripe = encode_round_trip(&codec, EncodingMethod::Upstairs);
        let pristine = stripe.clone();
        // m = 2 failed chunks (6, 7) + sector failures (1,1,2) in chunks
        // 3, 4, 5 at the chunk bottoms — Fig. 4's worst case.
        let erased: Vec<(usize, usize)> = (0..4)
            .flat_map(|i| [(i, 6), (i, 7)])
            .chain([(3, 3), (3, 4), (2, 5), (3, 5)])
            .collect();
        stripe.erase(&erased).unwrap();
        codec.decode(&mut stripe, &erased).unwrap();
        assert_eq!(stripe, pristine);
    }

    #[test]
    fn decode_beyond_coverage_fails_cleanly() {
        let codec = paper_codec();
        let mut stripe = encode_round_trip(&codec, EncodingMethod::Upstairs);
        // 3 fully-failed chunks > m + anything e can absorb with r = 4.
        let erased: Vec<(usize, usize)> = (0..4)
            .flat_map(|i| [(i, 5), (i, 6), (i, 7)])
            .chain([(0, 0)])
            .collect();
        assert!(!codec.config().covers(&erased).unwrap());
        let err = codec.decode(&mut stripe, &erased).unwrap_err();
        assert!(matches!(err, Error::Unrecoverable { .. }));
    }

    #[test]
    fn two_phase_outside_round_trip() {
        let config = Config::with_placement(8, 4, 2, &[1, 1, 2], GlobalPlacement::Outside).unwrap();
        let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
        assert_eq!(codec.best_method(), EncodingMethod::TwoPhase);
        let mut stripe = Stripe::new(config, 8).unwrap();
        stripe.fill_pattern(7);
        codec.encode(&mut stripe).unwrap();
        assert!(
            stripe
                .outside_globals()
                .iter()
                .any(|g| g.iter().any(|&b| b != 0)),
            "globals must be populated"
        );
        let pristine = stripe.clone();
        let erased: Vec<(usize, usize)> = (0..4)
            .flat_map(|i| [(i, 6), (i, 7)])
            .chain([(3, 3), (3, 4), (2, 5), (3, 5)])
            .collect();
        stripe.erase(&erased).unwrap();
        codec.decode(&mut stripe, &erased).unwrap();
        assert_eq!(stripe, pristine);
    }

    #[test]
    fn upstairs_unavailable_for_outside_placement() {
        let config = Config::with_placement(8, 4, 2, &[1, 1, 2], GlobalPlacement::Outside).unwrap();
        let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
        let mut stripe = Stripe::new(config, 8).unwrap();
        assert!(matches!(
            codec.encode_with(EncodingMethod::Upstairs, &mut stripe),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn schedule_costs_match_analytic_formulas() {
        let codec = paper_codec();
        let counts = codec.mult_xor_counts();
        assert_eq!(
            codec
                .encode_schedule(EncodingMethod::Upstairs)
                .unwrap()
                .mult_xors(),
            counts.upstairs
        );
        assert_eq!(
            codec
                .encode_schedule(EncodingMethod::Downstairs)
                .unwrap()
                .mult_xors(),
            counts.downstairs
        );
    }

    #[test]
    fn degraded_read_recovers_single_sector_cheaply() {
        let codec = paper_codec();
        let mut stripe = encode_round_trip(&codec, EncodingMethod::Upstairs);
        let pristine = stripe.clone();
        // Two devices fail; read one sector from the first.
        let erased: Vec<(usize, usize)> = (0..4).flat_map(|i| [(i, 6), (i, 7)]).collect();
        stripe.erase(&erased).unwrap();
        let got = codec
            .read_sector_degraded(&mut stripe, &erased, 2, 6)
            .unwrap();
        assert_eq!(got.as_slice(), pristine.cell(2, 6));
        // A single-sector plan must be cheaper than the full repair plan.
        let single = codec.plan_recover(&erased, &[(2, 6)]).unwrap();
        let full = codec.plan_decode(&erased).unwrap();
        assert!(single.mult_xors() < full.mult_xors());
        // Healthy sectors read straight through.
        let healthy = codec
            .read_sector_degraded(&mut stripe, &erased, 0, 0)
            .unwrap();
        assert_eq!(healthy.as_slice(), pristine.cell(0, 0));
        // Wanted-not-erased is rejected.
        assert!(matches!(
            codec.plan_recover(&erased, &[(0, 0)]),
            Err(Error::InvalidPattern(_))
        ));
    }

    #[test]
    fn plan_reuse_across_stripes() {
        let codec = paper_codec();
        let erased = vec![(0, 0), (1, 1), (0, 6)];
        let plan = codec.plan_decode(&erased).unwrap();
        for seed in 0..3 {
            let mut stripe = Stripe::new(codec.config().clone(), 8).unwrap();
            stripe.fill_pattern(seed);
            codec.encode(&mut stripe).unwrap();
            let pristine = stripe.clone();
            stripe.erase(&erased).unwrap();
            codec.apply_plan(&plan, &mut stripe).unwrap();
            assert_eq!(stripe, pristine);
        }
    }
}
