//! The codec-generic face of STAIR: [`stair_code::ErasureCode`] for
//! [`StairCodec`], plus the [`CodeError`] conversion.
//!
//! The impl operates directly on flat [`StripeBuf`] grids — the same
//! memory `stair-store` reads sectors into — by building the scheduling
//! [`Canvas`] over the buffer, so no per-operation stripe copies are made.
//! Only [`GlobalPlacement::Inside`] configurations are supported through
//! this interface: a bare `r × n` grid has nowhere to store outside
//! globals.

use stair_code::{CellIdx, CodeError, ErasureCode, ErasureSet, Geometry, Plan, StripeBuf};
use stair_gf::Field;

use crate::schedule::Canvas;
use crate::{DecodePlan, Error, GlobalPlacement, StairCodec};

impl From<Error> for CodeError {
    fn from(e: Error) -> CodeError {
        match e {
            Error::InvalidConfig(m) => CodeError::InvalidConfig(m),
            Error::InvalidPattern(m) => CodeError::InvalidPattern(m),
            Error::Unrecoverable { remaining } => CodeError::Unrecoverable(format!(
                "peeling stalled with {remaining} cells unrecovered"
            )),
            Error::ShapeMismatch(m) => CodeError::ShapeMismatch(m),
            other => CodeError::Internal(other.to_string()),
        }
    }
}

impl<F: Field> StairCodec<F> {
    fn check_buf(&self, buf: &StripeBuf) -> Result<(), CodeError> {
        if self.config().placement() != GlobalPlacement::Inside {
            return Err(CodeError::Unsupported(
                "outside-placement STAIR stripes store globals outside the r×n grid; \
                 use the inherent Stripe API"
                    .into(),
            ));
        }
        buf.check_shape(self.config().r(), self.config().n(), F::ELEM_BYTES)
    }
}

impl<F: Field> ErasureCode for StairCodec<F> {
    fn geometry(&self) -> Geometry {
        let layout = self.layout();
        Geometry {
            n: layout.n(),
            r: layout.r(),
            m: layout.m(),
            s: self.config().s(),
            burst: self.config().e_max(),
            data_cells: layout.data_cells(),
            parity_cells: layout.parity_cells(),
        }
    }

    fn encode(&self, stripe: &mut StripeBuf) -> Result<(), CodeError> {
        self.check_buf(stripe)?;
        let mut canvas = Canvas::over(self.layout(), stripe);
        self.encode_on(self.best_method(), &mut canvas)?;
        Ok(())
    }

    fn plan(&self, erased: &ErasureSet) -> Result<Plan, CodeError> {
        let dp = self.plan_decode(erased.cells())?;
        let cost = dp.mult_xors();
        Ok(Plan::new(erased.cells().to_vec(), dp).with_mult_xors(cost))
    }

    fn plan_recover(&self, erased: &ErasureSet, wanted: &[CellIdx]) -> Result<Plan, CodeError> {
        let dp = StairCodec::plan_recover(self, erased.cells(), wanted)?;
        let cost = dp.mult_xors();
        Ok(Plan::new(wanted.to_vec(), dp).with_mult_xors(cost))
    }

    fn apply(&self, plan: &Plan, stripe: &mut StripeBuf) -> Result<(), CodeError> {
        self.check_buf(stripe)?;
        let dp = plan.detail::<DecodePlan<F>>().ok_or_else(|| {
            CodeError::InvalidPattern("plan was built by a different codec".into())
        })?;
        let mut canvas = Canvas::over(self.layout(), stripe);
        dp.schedule().execute(&mut canvas);
        Ok(())
    }

    fn update(
        &self,
        stripe: &mut StripeBuf,
        cell: CellIdx,
        new_contents: &[u8],
    ) -> Result<Vec<CellIdx>, CodeError> {
        self.check_buf(stripe)?;
        Ok(self.update_grid(stripe, cell.0, cell.1, new_contents)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, Stripe};

    fn codec() -> StairCodec {
        StairCodec::new(Config::new(8, 4, 2, &[1, 1, 2]).unwrap()).unwrap()
    }

    fn encoded_buf(codec: &StairCodec, seed: u8) -> StripeBuf {
        let geom = codec.geometry();
        let mut buf = StripeBuf::new(geom.r, geom.n, 16).unwrap();
        let payload: Vec<u8> = (0..geom.data_per_stripe() * 16)
            .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
            .collect();
        buf.write_cells(&geom.data_cells, &payload).unwrap();
        ErasureCode::encode(codec, &mut buf).unwrap();
        buf
    }

    #[test]
    fn trait_encode_matches_inherent_encode() {
        let codec = codec();
        let buf = encoded_buf(&codec, 3);
        let geom = codec.geometry();
        let mut stripe = Stripe::new(codec.config().clone(), 16).unwrap();
        stripe
            .write_data(&buf.read_cells(&geom.data_cells))
            .unwrap();
        codec.encode(&mut stripe).unwrap();
        assert_eq!(stripe.grid(), &buf);
    }

    #[test]
    fn plan_apply_round_trip_on_buf() {
        let codec = codec();
        let mut buf = encoded_buf(&codec, 9);
        let pristine = buf.clone();
        let erased = ErasureSet::new((0..4).flat_map(|i| [(i, 6), (i, 7)]).chain([
            (3, 3),
            (3, 4),
            (2, 5),
            (3, 5),
        ]));
        buf.erase(erased.cells());
        let plan = ErasureCode::plan(&codec, &erased).unwrap();
        assert!(plan.mult_xors().unwrap() > 0);
        codec.apply(&plan, &mut buf).unwrap();
        assert_eq!(buf, pristine);
    }

    #[test]
    fn partial_recovery_is_cheaper_than_full() {
        let codec = codec();
        let erased = ErasureSet::devices(&[6, 7], 4);
        let full = ErasureCode::plan(&codec, &erased).unwrap();
        let partial = ErasureCode::plan_recover(&codec, &erased, &[(2, 6)]).unwrap();
        assert_eq!(partial.recovers(), &[(2, 6)]);
        assert!(partial.mult_xors().unwrap() < full.mult_xors().unwrap());
    }

    #[test]
    fn trait_update_patches_parities() {
        let codec = codec();
        let mut buf = encoded_buf(&codec, 5);
        let touched = codec.update(&mut buf, (1, 2), &[0xEE; 16]).unwrap();
        assert!(!touched.is_empty());
        // Re-encoding from the updated payload must agree.
        let geom = codec.geometry();
        let payload = buf.read_cells(&geom.data_cells);
        let mut reference = StripeBuf::new(geom.r, geom.n, 16).unwrap();
        reference.write_cells(&geom.data_cells, &payload).unwrap();
        ErasureCode::encode(&codec, &mut reference).unwrap();
        assert_eq!(buf, reference);
    }

    #[test]
    fn foreign_buffers_and_plans_rejected() {
        let codec = codec();
        let mut wrong = StripeBuf::new(3, 8, 16).unwrap();
        assert!(matches!(
            ErasureCode::encode(&codec, &mut wrong),
            Err(CodeError::ShapeMismatch(_))
        ));
        let mut buf = encoded_buf(&codec, 1);
        let alien = Plan::new(vec![(0, 0)], String::from("not a stair plan"));
        assert!(matches!(
            codec.apply(&alien, &mut buf),
            Err(CodeError::InvalidPattern(_))
        ));
    }

    #[test]
    fn outside_placement_unsupported_via_trait() {
        let config = Config::with_placement(8, 4, 2, &[1, 1, 2], GlobalPlacement::Outside).unwrap();
        let codec: StairCodec = StairCodec::new(config).unwrap();
        let mut buf = StripeBuf::new(4, 8, 16).unwrap();
        assert!(matches!(
            ErasureCode::encode(&codec, &mut buf),
            Err(CodeError::Unsupported(_))
        ));
    }
}
