//! Error type for STAIR code construction, encoding, and decoding.

use core::fmt;

/// Errors returned by this crate.
#[derive(Clone, Debug, Eq, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid `(n, r, m, e)` configuration.
    InvalidConfig(String),
    /// The erasure pattern contains an out-of-range or duplicate coordinate.
    InvalidPattern(String),
    /// The erasure pattern is not recoverable (peeling got stuck). Patterns
    /// within the `(m, e)` coverage never produce this error.
    Unrecoverable {
        /// Number of cells that remained unrecovered when decoding stalled.
        remaining: usize,
    },
    /// A stripe/buffer shape did not match the configuration.
    ShapeMismatch(String),
    /// An underlying MDS-code failure (never expected for valid configs;
    /// surfaced instead of panicking).
    Mds(stair_rs::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid STAIR configuration: {msg}"),
            Error::InvalidPattern(msg) => write!(f, "invalid erasure pattern: {msg}"),
            Error::Unrecoverable { remaining } => {
                write!(
                    f,
                    "erasure pattern is unrecoverable ({remaining} cells left)"
                )
            }
            Error::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            Error::Mds(e) => write!(f, "MDS code error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Mds(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stair_rs::Error> for Error {
    fn from(e: stair_rs::Error) -> Self {
        Error::Mds(e)
    }
}
