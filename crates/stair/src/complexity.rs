//! Analytical `Mult_XOR` cost model for the three encoding methods
//! (§5.3 of the paper, Eq. 5 and Eq. 6), used both to regenerate Fig. 9 and
//! to pick the cheapest method at codec-construction time.

use crate::Config;

/// Per-stripe `Mult_XOR` counts of the three encoding methods.
///
/// # Example
///
/// ```
/// use stair::{Config, MultXorCounts};
///
/// // n = 8, m = 2, e = (1,1,2), r = 4 — the paper's running example.
/// let cfg = Config::new(8, 4, 2, &[1, 1, 2])?;
/// let counts = MultXorCounts::analytic(&cfg);
/// assert_eq!(counts.upstairs, 120);
/// assert_eq!(counts.downstairs, 136);
/// # Ok::<(), stair::Error>(())
/// ```
#[derive(Clone, Copy, Debug, Default, Eq, Hash, PartialEq)]
pub struct MultXorCounts {
    /// Eq. (5): `(n−m)·(m·r + s) + r·(n−m)·e_max`.
    pub upstairs: usize,
    /// Eq. (6): `(n−m)·(m+m')·r + r·s`.
    pub downstairs: usize,
    /// Standard encoding: the total number of data symbols contributing to
    /// each parity symbol (set by [`crate::StairCodec`] from the derived
    /// parity relations; zero when produced by [`MultXorCounts::analytic`]).
    pub standard: usize,
}

impl MultXorCounts {
    /// Computes the closed-form upstairs/downstairs counts of Eq. (5)/(6).
    /// The standard count requires the dense parity relations and is filled
    /// in by the codec.
    pub fn analytic(config: &Config) -> Self {
        let (n, r, m) = (config.n(), config.r(), config.m());
        let (m_prime, s, e_max) = (config.m_prime(), config.s(), config.e_max());
        MultXorCounts {
            upstairs: (n - m) * (m * r + s) + r * ((n - m) * e_max),
            downstairs: (n - m) * ((m + m_prime) * r) + r * s,
            standard: 0,
        }
    }

    /// The cheapest method among the three (ties broken in the order
    /// upstairs, downstairs, standard — reuse-based methods also touch
    /// less memory).
    pub fn best(&self) -> crate::EncodingMethod {
        let mut best = crate::EncodingMethod::Upstairs;
        let mut cost = self.upstairs;
        if self.downstairs < cost {
            best = crate::EncodingMethod::Downstairs;
            cost = self.downstairs;
        }
        if self.standard != 0 && self.standard < cost {
            best = crate::EncodingMethod::Standard;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §5.3 case study: n = 8, m = 2, s = 4. For a given s, upstairs cost
    /// grows with e_max and downstairs cost grows with m' — so (4) favours
    /// downstairs and (1,1,1,1) favours upstairs.
    #[test]
    fn crossover_between_methods_matches_section_5_3() {
        let r = 16;
        let e4 = Config::new(8, r, 2, &[4]).unwrap(); // m' = 1, e_max = 4
        let e1111 = Config::new(8, r, 2, &[1, 1, 1, 1]).unwrap(); // m' = 4, e_max = 1
        let c4 = MultXorCounts::analytic(&e4);
        let c1111 = MultXorCounts::analytic(&e1111);
        assert!(
            c4.downstairs < c4.upstairs,
            "small m' should favour downstairs: {c4:?}"
        );
        assert!(
            c1111.upstairs < c1111.downstairs,
            "large m' should favour upstairs: {c1111:?}"
        );
    }

    #[test]
    fn formulas_match_hand_computation() {
        // n=8, r=4, m=2, e=(1,1,2): s=4, m'=3, e_max=2.
        let cfg = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
        let c = MultXorCounts::analytic(&cfg);
        assert_eq!(c.upstairs, 6 * (2 * 4 + 4) + 4 * (6 * 2));
        assert_eq!(c.downstairs, 6 * ((2 + 3) * 4) + 4 * 4);
    }

    #[test]
    fn upstairs_grows_with_e_max_for_fixed_s() {
        // Fixed s = 4, r = 32, n = 8, m = 2 (Fig. 9's right panel).
        let configs = [
            vec![1, 1, 1, 1],
            vec![1, 1, 2],
            vec![2, 2],
            vec![1, 3],
            vec![4],
        ];
        let ups: Vec<usize> = configs
            .iter()
            .map(|e| MultXorCounts::analytic(&Config::new(8, 32, 2, e).unwrap()).upstairs)
            .collect();
        // e_max: 1, 2, 2, 3, 4 — upstairs cost must be non-decreasing.
        assert!(ups.windows(2).all(|w| w[0] <= w[1]), "{ups:?}");
    }
}
