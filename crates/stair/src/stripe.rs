//! The stored stripe: `r × n` sector buffers plus, for outside placement,
//! the `s` external global-parity buffers.

use stair_code::StripeBuf;

use crate::layout::{Cell, CellKind, Layout};
use crate::{Config, Error, GlobalPlacement};

/// One stripe's worth of sectors.
///
/// Cell `(i, j)` is sector `i` of device `j`'s chunk. Data, row-parity, and
/// (for inside placement) global-parity sectors all live in this grid, at
/// the positions described by [`Layout`]. The grid itself is a flat
/// [`StripeBuf`] — one contiguous allocation shared with the codec-generic
/// [`stair_code::ErasureCode`] world, so stripes move between the two APIs
/// without copying.
///
/// # Example
///
/// ```
/// use stair::{Config, Stripe};
///
/// let config = Config::new(8, 4, 2, &[1, 1, 2])?;
/// let mut stripe = Stripe::new(config, 512)?;
/// assert_eq!(stripe.data_capacity(), (4 * 6 - 4) * 512);
/// let payload = vec![7u8; stripe.data_capacity()];
/// stripe.write_data(&payload)?;
/// assert_eq!(stripe.read_data()?, payload);
/// # Ok::<(), stair::Error>(())
/// ```
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Stripe {
    config: Config,
    layout: Layout,
    /// The `r × n` sector grid, flat and contiguous.
    grid: StripeBuf,
    /// Outside placement only: the `s` global-parity buffers, in the
    /// `(l, h)` order of [`Layout::outside_global_cells`].
    outside_globals: Vec<Vec<u8>>,
}

impl Stripe {
    /// Allocates a zeroed stripe with the given sector (symbol) size.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `symbol_size` is zero.
    pub fn new(config: Config, symbol_size: usize) -> Result<Self, Error> {
        if symbol_size == 0 {
            return Err(Error::ShapeMismatch("symbol size must be positive".into()));
        }
        let layout = Layout::new(&config);
        let grid = StripeBuf::new(config.r(), config.n(), symbol_size)
            .map_err(|e| Error::ShapeMismatch(e.to_string()))?;
        let globals = match config.placement() {
            GlobalPlacement::Outside => vec![vec![0u8; symbol_size]; config.s()],
            GlobalPlacement::Inside => Vec::new(),
        };
        Ok(Stripe {
            config,
            layout,
            grid,
            outside_globals: globals,
        })
    }

    /// The configuration this stripe was allocated for.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Bytes per sector.
    pub fn symbol_size(&self) -> usize {
        self.grid.symbol()
    }

    /// Total user-data bytes the stripe holds.
    pub fn data_capacity(&self) -> usize {
        self.config.data_symbols() * self.grid.symbol()
    }

    /// Borrows sector `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn cell(&self, row: usize, col: usize) -> &[u8] {
        assert!(
            row < self.config.r() && col < self.config.n(),
            "cell out of range"
        );
        self.grid.cell((row, col))
    }

    /// Mutably borrows sector `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn cell_mut(&mut self, row: usize, col: usize) -> &mut [u8] {
        assert!(
            row < self.config.r() && col < self.config.n(),
            "cell out of range"
        );
        self.grid.cell_mut((row, col))
    }

    /// The flat `r × n` sector grid.
    pub fn grid(&self) -> &StripeBuf {
        &self.grid
    }

    /// The outside global-parity buffers (empty for inside placement), in
    /// `(l, h)` order.
    pub fn outside_globals(&self) -> &[Vec<u8>] {
        &self.outside_globals
    }

    /// Splits the stripe into its grid and outside-global buffers for
    /// simultaneous mutation (the [`crate::schedule`] canvas needs both).
    pub(crate) fn parts_mut(&mut self) -> (&mut StripeBuf, &mut [Vec<u8>]) {
        (&mut self.grid, &mut self.outside_globals)
    }

    /// Writes a user payload across the data sectors in row-major order
    /// (skipping parity positions).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] unless
    /// `payload.len() == self.data_capacity()`.
    pub fn write_data(&mut self, payload: &[u8]) -> Result<(), Error> {
        if payload.len() != self.data_capacity() {
            return Err(Error::ShapeMismatch(format!(
                "payload is {} bytes, stripe holds {}",
                payload.len(),
                self.data_capacity()
            )));
        }
        let symbol = self.grid.symbol();
        for (chunk, (row, col)) in payload.chunks_exact(symbol).zip(self.layout.data_cells()) {
            self.cell_mut(row, col).copy_from_slice(chunk);
        }
        Ok(())
    }

    /// Reads the user payload back out of the data sectors.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility
    /// with checksummed stripes.
    pub fn read_data(&self) -> Result<Vec<u8>, Error> {
        let mut out = Vec::with_capacity(self.data_capacity());
        for (row, col) in self.layout.data_cells() {
            out.extend_from_slice(self.cell(row, col));
        }
        Ok(out)
    }

    /// Simulates sector loss: zero-fills each listed sector. (Decoding does
    /// not read erased cells, but zeroing makes accidental reads fail tests
    /// loudly.)
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPattern`] for out-of-range or duplicate
    /// coordinates.
    pub fn erase(&mut self, erased: &[(usize, usize)]) -> Result<(), Error> {
        self.config.erasure_counts(erased)?; // validates
        for &(row, col) in erased {
            self.cell_mut(row, col).fill(0);
        }
        Ok(())
    }

    /// Fills every data sector from the RNG-free deterministic pattern
    /// `cell(i,j)[b] = (i·131 + j·197 + b·13 + seed) mod 256`; handy for
    /// tests and benchmarks that need distinct, reproducible content.
    pub fn fill_pattern(&mut self, seed: u8) {
        for (row, col) in self.layout.data_cells() {
            let base = (row.wrapping_mul(131)).wrapping_add(col.wrapping_mul(197)) as u8;
            let symbol = self.cell_mut(row, col);
            for (b, byte) in symbol.iter_mut().enumerate() {
                *byte = base
                    .wrapping_add((b as u8).wrapping_mul(13))
                    .wrapping_add(seed);
            }
        }
    }

    /// Classifies a stored cell (delegates to [`Layout::kind`]).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn kind(&self, row: usize, col: usize) -> CellKind {
        self.layout.kind((row, col))
    }

    /// The stored cells of an entire chunk (device) `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= n`.
    pub fn chunk_cells(&self, col: usize) -> Vec<Cell> {
        assert!(col < self.config.n(), "chunk {col} out of range");
        (0..self.config.r()).map(|row| (row, col)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe() -> Stripe {
        Stripe::new(Config::new(8, 4, 2, &[1, 1, 2]).unwrap(), 16).unwrap()
    }

    #[test]
    fn payload_round_trip_skips_parity_positions() {
        let mut s = stripe();
        let payload: Vec<u8> = (0..s.data_capacity()).map(|i| (i % 251) as u8).collect();
        s.write_data(&payload).unwrap();
        assert_eq!(s.read_data().unwrap(), payload);
        // Inside-global position (3,3) must not hold payload bytes.
        assert_eq!(s.kind(3, 3), CellKind::InsideGlobal { h: 0, l: 0 });
        assert!(s.cell(3, 3).iter().all(|&b| b == 0));
    }

    #[test]
    fn wrong_payload_size_rejected() {
        let mut s = stripe();
        assert!(matches!(
            s.write_data(&[0u8; 3]),
            Err(Error::ShapeMismatch(_))
        ));
    }

    #[test]
    fn erase_zeroes_cells_and_validates() {
        let mut s = stripe();
        s.fill_pattern(1);
        assert!(s.cell(0, 0).iter().any(|&b| b != 0));
        s.erase(&[(0, 0)]).unwrap();
        assert!(s.cell(0, 0).iter().all(|&b| b == 0));
        assert!(matches!(s.erase(&[(9, 0)]), Err(Error::InvalidPattern(_))));
    }

    #[test]
    fn outside_placement_allocates_global_buffers() {
        let cfg = Config::with_placement(8, 4, 2, &[1, 1, 2], GlobalPlacement::Outside).unwrap();
        let s = Stripe::new(cfg, 16).unwrap();
        assert_eq!(s.outside_globals().len(), 4);
        assert_eq!(s.data_capacity(), 4 * 6 * 16);
    }

    #[test]
    fn zero_symbol_size_rejected() {
        let cfg = Config::new(8, 4, 2, &[1]).unwrap();
        assert!(matches!(Stripe::new(cfg, 0), Err(Error::ShapeMismatch(_))));
    }
}
