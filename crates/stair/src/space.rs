//! Storage-space accounting (§6.1, Fig. 10; storage efficiency Eq. 8).

use crate::Config;

/// Devices saved per system by a STAIR code over a traditional erasure code
/// with the same failure coverage: `m' − s/r` (§6.1).
///
/// A traditional MDS code needs `m + m'` whole parity chunks to cover the
/// same failures; STAIR needs `m` chunks plus `s` sectors.
///
/// # Example
///
/// ```
/// use stair::devices_saved;
///
/// // s = 4, m' = 4, r = 32 saves nearly four devices.
/// assert!((devices_saved(4, 4, 32) - 3.875).abs() < 1e-12);
/// ```
pub fn devices_saved(s: usize, m_prime: usize, r: usize) -> f64 {
    assert!(
        m_prime >= 1 && r >= 1 && s >= m_prime,
        "need s ≥ m' ≥ 1 and r ≥ 1"
    );
    m_prime as f64 - s as f64 / r as f64
}

/// Storage efficiency `E = (r·(n−m) − s) / (r·n)` (Eq. 8). Setting `s = 0`
/// gives the Reed–Solomon efficiency; SD codes with the same `s` have the
/// same efficiency.
pub fn storage_efficiency(n: usize, r: usize, m: usize, s: usize) -> f64 {
    assert!(n > m, "need n > m");
    assert!(r * (n - m) >= s, "s cannot exceed the non-failed capacity");
    (r * (n - m) - s) as f64 / (r * n) as f64
}

/// Side-by-side redundancy accounting for one failure scenario `(m, e)`
/// across the schemes the paper compares (§2, §6.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceComparison {
    /// Redundant sectors per stripe for STAIR: `m·r + s`.
    pub stair_sectors: usize,
    /// Redundant sectors per stripe for a traditional erasure code
    /// (whole-chunk redundancy): `(m + m')·r`.
    pub traditional_sectors: usize,
    /// Redundant sectors per stripe for the IDR scheme protecting against
    /// `e_max`-sector bursts: `m·r + (n−m)·e_max` (§2).
    pub idr_sectors: usize,
    /// Redundant sectors per stripe for an SD code with the same `s`:
    /// `m·r + s` (identical to STAIR; SD is just restricted to `s ≤ 3`).
    pub sd_sectors: usize,
}

impl SpaceComparison {
    /// Computes the comparison for a configuration.
    pub fn for_config(config: &Config) -> Self {
        let (n, r, m) = (config.n(), config.r(), config.m());
        let (m_prime, s, e_max) = (config.m_prime(), config.s(), config.e_max());
        SpaceComparison {
            stair_sectors: m * r + s,
            traditional_sectors: (m + m_prime) * r,
            idr_sectors: m * r + (n - m) * e_max,
            sd_sectors: m * r + s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_approaches_m_prime_as_r_grows() {
        // Fig. 10: as r increases the saving approaches m'.
        let small = devices_saved(4, 4, 8);
        let large = devices_saved(4, 4, 1024);
        assert!(small < large && large < 4.0);
        assert!((4.0 - large) < 0.01);
    }

    #[test]
    fn saving_is_maximal_when_m_prime_equals_s() {
        // For fixed s and r, saving grows with m'.
        let r = 16;
        assert!(devices_saved(4, 1, r) < devices_saved(4, 2, r));
        assert!(devices_saved(4, 3, r) < devices_saved(4, 4, r));
    }

    #[test]
    fn efficiency_matches_equation_8() {
        // n=8, r=16, m=1, s=3 → (16·7 − 3)/128.
        assert!((storage_efficiency(8, 16, 1, 3) - 109.0 / 128.0).abs() < 1e-12);
        // s = 0 is Reed-Solomon: (n−m)/n.
        assert!((storage_efficiency(8, 16, 1, 0) - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn paper_intro_example_beta_4() {
        // §2: n=8, m=2, burst β=4 → IDR needs 24 redundant sectors beyond
        // the parity chunks; STAIR with e=(1,4) needs only five.
        let cfg = Config::new(8, 16, 2, &[1, 4]).unwrap();
        let cmp = SpaceComparison::for_config(&cfg);
        assert_eq!(cmp.idr_sectors - 2 * 16, 24);
        assert_eq!(cmp.stair_sectors - 2 * 16, 5);
        assert_eq!(cmp.sd_sectors, cmp.stair_sectors);
    }

    #[test]
    #[should_panic(expected = "s ≥ m'")]
    fn devices_saved_validates() {
        let _ = devices_saved(2, 3, 8);
    }
}
