//! The peeling scheduler: builds upstairs/downstairs schedules by
//! iteratively finding rows/columns of the canonical stripe with enough
//! available cells to recover the rest.
//!
//! This single engine generalizes all three schedule shapes of the paper:
//!
//! * **upstairs decoding** (§4.2): columns left→right, then augmented rows,
//!   with whole stored-row `C_row` recovery as the last resort — exactly the
//!   order of the worked example in Fig. 4 / Table 2;
//! * **upstairs encoding** (§5.1.1): the same order, with the parity cells
//!   declared "erased" and the outside globals pinned to zero;
//! * **downstairs encoding** (§5.1.2): stored rows top→bottom, then
//!   intermediate columns right→left — the order of Fig. 6 / Table 3.
//!
//! The raw schedule recovers *every* recoverable cell it encounters; a
//! final backwards [`Schedule::prune`] pass keeps only what the requested
//! targets need, which reproduces the paper's "recover only the symbols
//! that will later be used" optimization.

use stair_gf::Field;
use stair_rs::MdsCode;

use crate::layout::{Cell, Layout};
use crate::schedule::{Schedule, Step, StepCode};
use crate::Error;

/// Pass ordering for the peeler.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub(crate) enum PeelOrder {
    /// Columns left→right, augmented rows top→bottom; whole stored rows only
    /// when nothing else makes progress (upstairs, §4.2).
    Upstairs,
    /// Stored rows top→bottom, then intermediate columns right→left
    /// (downstairs, §5.1.2). Never uses augmented rows of the first `n`
    /// columns.
    Downstairs,
}

pub(crate) struct Peeler<'a, F: Field> {
    layout: &'a Layout,
    crow: &'a MdsCode<F>,
    ccol: &'a MdsCode<F>,
    available: Vec<bool>,
    /// Columns excluded from `C_col` recovery. The paper always recovers the
    /// `m` "failed" chunks row-by-row *last* (§4.2.2 step 3); modelling that
    /// exclusion keeps schedule costs exactly on the Eq. (5) formula.
    no_col: Vec<bool>,
    steps: Vec<Step<F>>,
}

impl<'a, F: Field> Peeler<'a, F> {
    pub(crate) fn new(
        layout: &'a Layout,
        crow: &'a MdsCode<F>,
        ccol: &'a MdsCode<F>,
        available: Vec<bool>,
    ) -> Self {
        debug_assert_eq!(
            available.len(),
            layout.canonical_rows() * layout.canonical_cols()
        );
        let no_col = vec![false; layout.canonical_cols()];
        Peeler {
            layout,
            crow,
            ccol,
            available,
            no_col,
            steps: Vec::new(),
        }
    }

    /// Marks columns that must be recovered by `C_row` steps only (the
    /// designated "failed chunks").
    pub(crate) fn with_excluded_cols(mut self, cols: &[usize]) -> Self {
        for &c in cols {
            self.no_col[c] = true;
        }
        self
    }

    fn idx(&self, cell: Cell) -> usize {
        cell.0 * self.layout.canonical_cols() + cell.1
    }

    /// Builds the full schedule, then prunes it to the targets.
    pub(crate) fn build(
        mut self,
        targets: &[Cell],
        order: PeelOrder,
    ) -> Result<Schedule<F>, Error> {
        #[cfg(debug_assertions)]
        let initial = self.available.clone();
        match order {
            PeelOrder::Upstairs => self.run_upstairs()?,
            PeelOrder::Downstairs => self.run_downstairs()?,
        }
        let remaining = targets
            .iter()
            .filter(|&&t| !self.available[self.idx(t)])
            .count();
        if remaining > 0 {
            return Err(Error::Unrecoverable { remaining });
        }
        let mut schedule = Schedule { steps: self.steps };
        schedule.prune(self.layout, targets);
        #[cfg(debug_assertions)]
        schedule
            .check_dataflow(self.layout, |c| {
                initial[c.0 * self.layout.canonical_cols() + c.1]
            })
            .expect("pruned schedule must remain topologically valid");
        Ok(schedule)
    }

    fn run_upstairs(&mut self) -> Result<(), Error> {
        let r = self.layout.r();
        let crows = self.layout.canonical_rows();
        let ccols = self.layout.canonical_cols();
        loop {
            let mut progress = false;
            for j in 0..ccols {
                progress |= self.try_col(j)?;
            }
            for i in r..crows {
                progress |= self.try_row(i)?;
            }
            if !progress {
                let mut last_resort = false;
                for i in 0..r {
                    last_resort |= self.try_row(i)?;
                }
                if !last_resort {
                    return Ok(());
                }
            }
        }
    }

    fn run_downstairs(&mut self) -> Result<(), Error> {
        let r = self.layout.r();
        let n = self.layout.n();
        let ccols = self.layout.canonical_cols();
        loop {
            let mut progress = false;
            for i in 0..r {
                progress |= self.try_row_stored_span(i)?;
            }
            for j in (n..ccols).rev() {
                progress |= self.try_col(j)?;
            }
            if !progress {
                return Ok(());
            }
        }
    }

    /// `C_row` recovery on canonical row `i`: needs `n − m` available cells.
    fn try_row(&mut self, i: usize) -> Result<bool, Error> {
        let ccols = self.layout.canonical_cols();
        let k = self.crow.data_len();
        let avail: Vec<usize> = (0..ccols)
            .filter(|&j| self.available[self.idx((i, j))])
            .collect();
        let unknown: Vec<usize> = (0..ccols)
            .filter(|&j| !self.available[self.idx((i, j))])
            .collect();
        if avail.len() < k || unknown.is_empty() {
            return Ok(false);
        }
        let inputs = &avail[..k];
        let coeff = self.crow.recovery_coefficients(inputs, &unknown)?;
        self.push_step(
            StepCode::Row(i),
            inputs.iter().map(|&j| (i, j)).collect(),
            unknown.iter().map(|&j| (i, j)).collect(),
            coeff,
        );
        Ok(true)
    }

    /// Downstairs row step: identical to [`Self::try_row`], but only cells
    /// in stored rows are ever produced by the downstairs order, so this is
    /// just `try_row` restricted to `i < r` call sites.
    fn try_row_stored_span(&mut self, i: usize) -> Result<bool, Error> {
        self.try_row(i)
    }

    /// `C_col` recovery on canonical column `j`: needs `r` available cells.
    fn try_col(&mut self, j: usize) -> Result<bool, Error> {
        if self.no_col[j] {
            return Ok(false);
        }
        let crows = self.layout.canonical_rows();
        let k = self.ccol.data_len();
        let avail: Vec<usize> = (0..crows)
            .filter(|&i| self.available[self.idx((i, j))])
            .collect();
        let unknown: Vec<usize> = (0..crows)
            .filter(|&i| !self.available[self.idx((i, j))])
            .collect();
        if avail.len() < k || unknown.is_empty() {
            return Ok(false);
        }
        let inputs = &avail[..k];
        let coeff = self.ccol.recovery_coefficients(inputs, &unknown)?;
        self.push_step(
            StepCode::Col(j),
            inputs.iter().map(|&i| (i, j)).collect(),
            unknown.iter().map(|&i| (i, j)).collect(),
            coeff,
        );
        Ok(true)
    }

    fn push_step(
        &mut self,
        code: StepCode,
        inputs: Vec<Cell>,
        outputs: Vec<Cell>,
        coeff: stair_gfmatrix::Matrix<F>,
    ) {
        for &o in &outputs {
            let oi = self.idx(o);
            debug_assert!(!self.available[oi]);
            self.available[oi] = true;
        }
        self.steps.push(Step {
            code,
            inputs,
            outputs,
            coeff,
        });
    }
}
