//! Coordinate mapping for the canonical stripe (Fig. 3 of the paper).
//!
//! The canonical stripe is the `(r + e_max) × (n + m')` product-code array:
//!
//! ```text
//!            col: 0 .. n−m−1 | n−m .. n−1   | n .. n+m'−1
//! row 0..r−1      data chunks| row parity   | intermediate parity
//! row r..r+e_max  virtual d* | virtual p*   | global parities g (stair)
//! ```
//!
//! With [`crate::GlobalPlacement::Inside`], `s` cells at the bottoms of the
//! `m'` rightmost *data* chunks hold the inside global parities `ĝ` instead
//! of data (Fig. 5), and the outside `g` cells are pinned to zero.

use crate::{Config, GlobalPlacement};

/// A cell of the canonical stripe, addressed as `(row, col)`.
///
/// Rows `0..r` and columns `0..n` are *stored* cells; everything else is
/// virtual (recomputed on demand, never stored).
pub type Cell = (usize, usize);

/// Classification of a canonical-stripe cell.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum CellKind {
    /// A stored data sector `d_{i,j}`.
    Data,
    /// A stored row-parity sector `p_{i,k}` (device-level parity).
    RowParity,
    /// A stored inside global parity `ĝ_{h,l}` (inside placement only).
    InsideGlobal {
        /// Index within the `l`-th global-parity column, `0 ≤ h < e_l`.
        h: usize,
        /// Which of the `m'` global-parity columns, `0 ≤ l < m'`.
        l: usize,
    },
    /// A virtual intermediate parity `p'_{i,l}` (never stored).
    Intermediate,
    /// An outside global parity `g_{h,l}` in the augmented rows. Stored
    /// only with outside placement; pinned to zero with inside placement.
    OutsideGlobal {
        /// Row within the augmented block, `0 ≤ h < e_l`.
        h: usize,
        /// Which intermediate chunk it belongs to, `0 ≤ l < m'`.
        l: usize,
    },
    /// A virtual parity `d*_{h,j}` / `p*_{h,k}` in the augmented rows
    /// (never stored), or a dummy global-parity position (`el < e_max`).
    Virtual,
}

/// Index mapping between the paper's coordinates and linear buffer indices.
///
/// # Example
///
/// ```
/// use stair::{Config, Layout};
///
/// let cfg = Config::new(8, 4, 2, &[1, 1, 2])?;
/// let layout = Layout::new(&cfg);
/// // ĝ_{0,0} replaces the bottom sector of data chunk 3 (Fig. 5).
/// assert_eq!(layout.inside_global_cell(0, 0), (3, 3));
/// # Ok::<(), stair::Error>(())
/// ```
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Layout {
    n: usize,
    r: usize,
    m: usize,
    e: Vec<usize>,
    placement: GlobalPlacement,
}

impl Layout {
    /// Builds the layout for a validated configuration.
    pub fn new(config: &Config) -> Self {
        Layout {
            n: config.n(),
            r: config.r(),
            m: config.m(),
            e: config.e().to_vec(),
            placement: config.placement(),
        }
    }

    /// Total rows of the canonical stripe, `r + e_max`.
    pub fn canonical_rows(&self) -> usize {
        self.r + self.e_max()
    }

    /// Total columns of the canonical stripe, `n + m'`.
    pub fn canonical_cols(&self) -> usize {
        self.n + self.e.len()
    }

    /// Number of devices `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sectors per chunk `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Tolerated device failures `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Largest element of `e`.
    pub fn e_max(&self) -> usize {
        *self.e.last().expect("e is non-empty")
    }

    /// Number of partially-failed chunks covered, `m' = e.len()`.
    pub fn m_prime(&self) -> usize {
        self.e.len()
    }

    /// Classifies a canonical cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside the canonical stripe.
    pub fn kind(&self, cell: Cell) -> CellKind {
        let (row, col) = cell;
        assert!(
            row < self.canonical_rows() && col < self.canonical_cols(),
            "cell ({row},{col}) outside the canonical stripe"
        );
        let m_prime = self.m_prime();
        if row < self.r {
            if col < self.n - self.m {
                if self.placement == GlobalPlacement::Inside {
                    if let Some((h, l)) = self.as_inside_global(cell) {
                        return CellKind::InsideGlobal { h, l };
                    }
                }
                CellKind::Data
            } else if col < self.n {
                CellKind::RowParity
            } else {
                CellKind::Intermediate
            }
        } else {
            let h = row - self.r;
            if col >= self.n {
                let l = col - self.n;
                debug_assert!(l < m_prime);
                if h < self.e[l] {
                    CellKind::OutsideGlobal { h, l }
                } else {
                    CellKind::Virtual // dummy global position
                }
            } else {
                CellKind::Virtual // d* or p*
            }
        }
    }

    /// If `cell` is an inside-global position, returns `(h, l)`.
    ///
    /// Inside globals occupy the bottom `e_l` sectors of data chunk
    /// `n − m − m' + l` (stair layout, Fig. 5).
    pub fn as_inside_global(&self, cell: Cell) -> Option<(usize, usize)> {
        let (row, col) = cell;
        let base = self.n - self.m - self.m_prime();
        if self.placement != GlobalPlacement::Inside || col < base || col >= self.n - self.m {
            return None;
        }
        let l = col - base;
        let el = self.e[l];
        if row >= self.r - el {
            Some((row - (self.r - el), l))
        } else {
            None
        }
    }

    /// The stored cell holding inside global parity `ĝ_{h,l}`.
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ m'` or `h ≥ e_l`, or with outside placement.
    pub fn inside_global_cell(&self, h: usize, l: usize) -> Cell {
        assert_eq!(
            self.placement,
            GlobalPlacement::Inside,
            "inside placement required"
        );
        assert!(
            l < self.m_prime() && h < self.e[l],
            "ĝ index ({h},{l}) out of range"
        );
        let col = self.n - self.m - self.m_prime() + l;
        (self.r - self.e[l] + h, col)
    }

    /// The canonical cell holding outside global parity `g_{h,l}`.
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ m'` or `h ≥ e_l`.
    pub fn outside_global_cell(&self, h: usize, l: usize) -> Cell {
        assert!(
            l < self.m_prime() && h < self.e[l],
            "g index ({h},{l}) out of range"
        );
        (self.r + h, self.n + l)
    }

    /// Iterates the stored data cells in row-major order — the order in
    /// which [`crate::Stripe::write_data`] lays out user payload.
    pub fn data_cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for row in 0..self.r {
            for col in 0..self.n - self.m {
                if self.kind((row, col)) == CellKind::Data {
                    cells.push((row, col));
                }
            }
        }
        cells
    }

    /// Iterates every stored parity cell: row parities, plus inside globals
    /// under inside placement.
    pub fn parity_cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for row in 0..self.r {
            for col in 0..self.n {
                match self.kind((row, col)) {
                    CellKind::RowParity | CellKind::InsideGlobal { .. } => cells.push((row, col)),
                    _ => {}
                }
            }
        }
        cells
    }

    /// All outside-global canonical cells `g_{h,l}` in `(l, h)` order.
    pub fn outside_global_cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (l, &el) in self.e.iter().enumerate() {
            for h in 0..el {
                cells.push((self.r + h, self.n + l));
            }
        }
        cells
    }

    /// True for cells that are stored on devices (`row < r`, `col < n`).
    pub fn is_stored(&self, cell: Cell) -> bool {
        cell.0 < self.r && cell.1 < self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_layout() -> Layout {
        Layout::new(&Config::new(8, 4, 2, &[1, 1, 2]).unwrap())
    }

    #[test]
    fn canonical_dimensions() {
        let l = paper_layout();
        assert_eq!(l.canonical_rows(), 6);
        assert_eq!(l.canonical_cols(), 11);
    }

    #[test]
    fn inside_global_positions_match_figure_5() {
        let l = paper_layout();
        // Fig. 5: ĝ_{0,0} at d_{3,3}, ĝ_{0,1} at d_{3,4}, ĝ_{0,2} at d_{2,5},
        // ĝ_{1,2} at d_{3,5}.
        assert_eq!(l.inside_global_cell(0, 0), (3, 3));
        assert_eq!(l.inside_global_cell(0, 1), (3, 4));
        assert_eq!(l.inside_global_cell(0, 2), (2, 5));
        assert_eq!(l.inside_global_cell(1, 2), (3, 5));
        assert_eq!(l.kind((3, 3)), CellKind::InsideGlobal { h: 0, l: 0 });
        assert_eq!(l.kind((2, 5)), CellKind::InsideGlobal { h: 0, l: 2 });
        assert_eq!(l.kind((1, 5)), CellKind::Data);
    }

    #[test]
    fn kinds_by_region() {
        let l = paper_layout();
        assert_eq!(l.kind((0, 0)), CellKind::Data);
        assert_eq!(l.kind((0, 6)), CellKind::RowParity);
        assert_eq!(l.kind((0, 7)), CellKind::RowParity);
        assert_eq!(l.kind((0, 8)), CellKind::Intermediate);
        assert_eq!(l.kind((4, 8)), CellKind::OutsideGlobal { h: 0, l: 0 });
        // e_0 = 1, so (5, 8) is a dummy global position.
        assert_eq!(l.kind((5, 8)), CellKind::Virtual);
        assert_eq!(l.kind((5, 10)), CellKind::OutsideGlobal { h: 1, l: 2 });
        assert_eq!(l.kind((4, 0)), CellKind::Virtual); // d*
        assert_eq!(l.kind((4, 6)), CellKind::Virtual); // p*
    }

    #[test]
    fn data_and_parity_cell_counts() {
        let l = paper_layout();
        assert_eq!(l.data_cells().len(), 4 * 6 - 4);
        // 2 parity chunks × 4 rows + 4 inside globals.
        assert_eq!(l.parity_cells().len(), 8 + 4);
        assert_eq!(l.outside_global_cells().len(), 4);
    }

    #[test]
    fn outside_placement_has_no_inside_globals() {
        let cfg = Config::with_placement(8, 4, 2, &[1, 1, 2], GlobalPlacement::Outside).unwrap();
        let l = Layout::new(&cfg);
        assert_eq!(l.kind((3, 3)), CellKind::Data);
        assert_eq!(l.data_cells().len(), 24);
        assert_eq!(l.parity_cells().len(), 8);
        assert_eq!(l.as_inside_global((3, 3)), None);
    }

    #[test]
    #[should_panic(expected = "outside the canonical stripe")]
    fn kind_out_of_bounds_panics() {
        let l = paper_layout();
        let _ = l.kind((6, 0));
    }
}
