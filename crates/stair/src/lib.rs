//! STAIR codes: a general family of erasure codes for tolerating device and
//! sector failures in practical storage systems.
//!
//! This crate is a from-scratch reproduction of the code construction of
//! *Li & Lee, "STAIR Codes", FAST '14* (extended arXiv:1406.5282v2 version).
//!
//! # The model
//!
//! A stripe is an `r × n` array of sectors ("symbols"): `n` devices
//! contribute one chunk of `r` sectors each. A STAIR code with parameters
//! `(n, r, m, e)` tolerates, per stripe:
//!
//! * `m` entire chunk failures (device failures), plus
//! * sector failures in up to `m' = e.len()` of the remaining chunks, where
//!   the chunk with the `i`-th most sector failures has at most `e[m'-1-i]`
//!   of them (`e` is non-decreasing; `s = Σ e_i` is the total).
//!
//! The construction composes two systematic MDS codes — `C_row`, an
//! `(n+m', n−m)`-code across rows, and `C_col`, an `(r+e_max, r)`-code down
//! chunks — into a product-code structure ("canonical stripe") whose
//! homomorphic property yields both the fault-tolerance proof and the
//! efficient *upstairs*/*downstairs* encoding methods with parity reuse
//! (§4–§5 of the paper).
//!
//! # Quick start
//!
//! ```
//! use stair::{Config, StairCodec, Stripe};
//!
//! // A RAID-6-like array of n = 8 devices with r = 4 sectors per chunk,
//! // tolerating m = 2 device failures plus sector failures covered by
//! // e = (1, 1, 2) — the paper's running example.
//! let config = Config::new(8, 4, 2, &[1, 1, 2])?;
//! let codec: StairCodec = StairCodec::new(config.clone())?;
//!
//! // Fill a stripe with application data (512-byte sectors).
//! let mut stripe = Stripe::new(config.clone(), 512)?;
//! let payload = vec![0xA5u8; stripe.data_capacity()];
//! stripe.write_data(&payload)?;
//! codec.encode(&mut stripe)?;
//!
//! // Lose two whole devices and a sector burst elsewhere...
//! let erased = vec![
//!     (0, 6), (1, 6), (2, 6), (3, 6),     // device 6 gone
//!     (0, 7), (1, 7), (2, 7), (3, 7),     // device 7 gone
//!     (2, 2), (3, 2),                     // two-sector burst in device 2
//! ];
//! stripe.erase(&erased)?;
//! codec.decode(&mut stripe, &erased)?;
//! assert_eq!(stripe.read_data()?, payload);
//! # Ok::<(), stair::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code_impl;
mod codec;
mod complexity;
mod config;
mod error;
mod layout;
mod peel;
mod schedule;
mod space;
mod standard;
mod stripe;
mod update;

pub use codec::{DecodePlan, EncodingMethod, StairCodec};
pub use complexity::MultXorCounts;
pub use config::{Config, GlobalPlacement};
pub use error::Error;
pub use layout::{Cell, CellKind, Layout};
pub use schedule::{Schedule, Step, StepCode};
pub use space::{devices_saved, storage_efficiency, SpaceComparison};
pub use standard::{ParityRelations, UpdatePenalty};
pub use stripe::Stripe;
