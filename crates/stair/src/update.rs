//! Incremental updates: rewrite one data sector and patch only the parity
//! sectors that depend on it.
//!
//! This is the operational counterpart of the §6.3 update-penalty metric:
//! updating data symbol `d` costs exactly `penalty(d)` parity read-modify-
//! writes, where the penalty is the number of non-zero coefficients in
//! `d`'s column of the dense parity relation (§5.2). Erasure codes are
//! linear, so a change `Δ = old ⊕ new` in a data sector changes each
//! dependent parity by `c·Δ`.

use stair_code::StripeBuf;
use stair_gf::Field;

use crate::layout::{Cell, CellKind};
use crate::stripe::Stripe;
use crate::{Error, StairCodec};

impl<F: Field> StairCodec<F> {
    /// Overwrites data sector `(row, col)` with `new_contents` and patches
    /// every dependent parity sector in place. Returns how many parity
    /// sectors were updated (the realized update penalty).
    ///
    /// The stripe must already be consistently encoded; after the call it
    /// is again consistently encoded.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPattern`] if `(row, col)` is not a data sector
    ///   (row parities and inside global parities cannot be updated
    ///   directly);
    /// * [`Error::ShapeMismatch`] if the stripe belongs to another
    ///   configuration or `new_contents` has the wrong length.
    pub fn update_data(
        &self,
        stripe: &mut Stripe,
        row: usize,
        col: usize,
        new_contents: &[u8],
    ) -> Result<usize, Error> {
        if stripe.config() != self.config() {
            return Err(Error::ShapeMismatch(
                "stripe was allocated for a different configuration".into(),
            ));
        }
        let (grid, _) = stripe.parts_mut();
        Ok(self.update_grid(grid, row, col, new_contents)?.len())
    }

    /// The grid-level core of [`StairCodec::update_data`], shared with the
    /// [`stair_code::ErasureCode`] impl: patches dependent parities and
    /// returns the cells touched.
    pub(crate) fn update_grid(
        &self,
        grid: &mut StripeBuf,
        row: usize,
        col: usize,
        new_contents: &[u8],
    ) -> Result<Vec<Cell>, Error> {
        if new_contents.len() != grid.symbol() {
            return Err(Error::ShapeMismatch(format!(
                "sector update is {} bytes, sectors are {}",
                new_contents.len(),
                grid.symbol()
            )));
        }
        if row >= self.config().r() || col >= self.config().n() {
            return Err(Error::InvalidPattern(format!("({row},{col}) out of range")));
        }
        if self.layout().kind((row, col)) != CellKind::Data {
            return Err(Error::InvalidPattern(format!(
                "({row},{col}) is a parity sector; updates must target data"
            )));
        }

        // Δ = old ⊕ new.
        let mut delta = new_contents.to_vec();
        for (d, &o) in delta.iter_mut().zip(grid.cell((row, col))) {
            *d ^= o;
        }
        grid.set_cell((row, col), new_contents);

        let relations = self.relations();
        let mut touched = Vec::new();
        for &(pi, pj) in relations.parity_cells() {
            let coeff = relations
                .coefficient((pi, pj), (row, col))
                .expect("data cell is part of the relation");
            if coeff == F::zero() {
                continue;
            }
            F::mult_xor_region(grid.cell_mut((pi, pj)), &delta, coeff);
            touched.push((pi, pj));
        }
        Ok(touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn setup() -> (StairCodec, Stripe) {
        let config = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
        let codec: StairCodec = StairCodec::new(config.clone()).unwrap();
        let mut stripe = Stripe::new(config, 16).unwrap();
        stripe.fill_pattern(7);
        codec.encode(&mut stripe).unwrap();
        (codec, stripe)
    }

    #[test]
    fn incremental_update_equals_full_reencode() {
        let (codec, mut stripe) = setup();
        let new = vec![0xEE; 16];
        codec.update_data(&mut stripe, 1, 2, &new).unwrap();
        // Full re-encode from the updated payload must agree.
        let mut reference = Stripe::new(codec.config().clone(), 16).unwrap();
        reference.write_data(&stripe.read_data().unwrap()).unwrap();
        codec.encode(&mut reference).unwrap();
        assert_eq!(stripe, reference);
    }

    #[test]
    fn touched_count_matches_update_penalty() {
        let (codec, mut stripe) = setup();
        let relations = codec.relations();
        let penalty = relations.update_penalty();
        for (d, &(row, col)) in relations.data_cells().to_vec().iter().enumerate() {
            let new = vec![(d + 1) as u8; 16];
            let touched = codec.update_data(&mut stripe, row, col, &new).unwrap();
            assert_eq!(touched, penalty.per_data[d], "data cell ({row},{col})");
        }
    }

    #[test]
    fn updated_stripe_still_decodes() {
        let (codec, mut stripe) = setup();
        codec.update_data(&mut stripe, 0, 0, &[0x99; 16]).unwrap();
        codec.update_data(&mut stripe, 3, 1, &[0x77; 16]).unwrap();
        let pristine = stripe.clone();
        let erased: Vec<(usize, usize)> = (0..4)
            .flat_map(|i| [(i, 6), (i, 7)])
            .chain([(3, 3), (3, 4), (2, 5), (3, 5)])
            .collect();
        stripe.erase(&erased).unwrap();
        codec.decode(&mut stripe, &erased).unwrap();
        assert_eq!(stripe, pristine);
    }

    #[test]
    fn parity_targets_rejected() {
        let (codec, mut stripe) = setup();
        // (0, 6) is a row parity; (3, 3) is an inside global.
        assert!(matches!(
            codec.update_data(&mut stripe, 0, 6, &[0; 16]),
            Err(Error::InvalidPattern(_))
        ));
        assert!(matches!(
            codec.update_data(&mut stripe, 3, 3, &[0; 16]),
            Err(Error::InvalidPattern(_))
        ));
        assert!(matches!(
            codec.update_data(&mut stripe, 0, 0, &[0; 5]),
            Err(Error::ShapeMismatch(_))
        ));
    }
}
