//! STAIR code configuration `(n, r, m, e)` and the sector-failure coverage
//! test (§2 of the paper).

use crate::Error;

/// Where the `s` global parity symbols live.
///
/// The paper first develops the construction with global parities held
/// *outside* the stripe (§3–§4), then extends it to relocate them *inside*
/// the stripe (§5), replacing `s` data sectors at the bottom of the `m'`
/// rightmost data chunks. Inside placement is what a deployed system uses
/// (no extra device needed) and is the default.
#[derive(Clone, Copy, Debug, Default, Eq, Hash, PartialEq)]
pub enum GlobalPlacement {
    /// Global parities stored in dedicated buffers outside the `r × n`
    /// stripe, assumed always available (the paper's baseline of §3).
    Outside,
    /// Global parities stored inside the stripe in the stair layout of
    /// Fig. 5 (the paper's extended construction of §5).
    #[default]
    Inside,
}

/// The full parameter set of a STAIR code.
///
/// * `n` — devices (chunks) per stripe;
/// * `r` — sectors (symbols) per chunk;
/// * `m` — tolerated whole-chunk failures;
/// * `e` — sector-failure coverage vector, non-decreasing, defining
///   `m' = e.len()` and `s = Σ e_i`.
///
/// # Example
///
/// ```
/// use stair::Config;
///
/// let cfg = Config::new(8, 4, 2, &[1, 1, 2])?;
/// assert_eq!(cfg.m_prime(), 3);
/// assert_eq!(cfg.s(), 4);
/// assert_eq!(cfg.e_max(), 2);
/// # Ok::<(), stair::Error>(())
/// ```
#[derive(Clone, Debug, Eq, Hash, PartialEq)]
pub struct Config {
    n: usize,
    r: usize,
    m: usize,
    e: Vec<usize>,
    placement: GlobalPlacement,
}

impl Config {
    /// Builds and validates a configuration with the default
    /// [`GlobalPlacement::Inside`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any of the paper's structural
    /// requirements is violated:
    ///
    /// * `m ≥ n` (must leave at least one surviving chunk);
    /// * `e` empty, not non-decreasing, containing zero, or `e_max > r`;
    /// * `m' > n − m` (more partially-failed chunks than survivors);
    /// * no data symbols left (`r·(n−m) ≤ s` for inside placement);
    /// * code lengths exceeding GF(2^8): `n + m' > 256` or `r + e_max > 256`.
    pub fn new(n: usize, r: usize, m: usize, e: &[usize]) -> Result<Self, Error> {
        Self::with_placement(n, r, m, e, GlobalPlacement::Inside)
    }

    /// Builds and validates a configuration with an explicit global-parity
    /// placement.
    ///
    /// # Errors
    ///
    /// Same as [`Config::new`].
    pub fn with_placement(
        n: usize,
        r: usize,
        m: usize,
        e: &[usize],
        placement: GlobalPlacement,
    ) -> Result<Self, Error> {
        if n < 2 {
            return Err(Error::InvalidConfig(format!("n = {n} must be at least 2")));
        }
        if r == 0 {
            return Err(Error::InvalidConfig("r must be positive".into()));
        }
        if m == 0 {
            return Err(Error::InvalidConfig(
                "m must be positive (use a plain intra-device code for m = 0)".into(),
            ));
        }
        if m >= n {
            return Err(Error::InvalidConfig(format!(
                "m = {m} must be less than n = {n}"
            )));
        }
        if e.is_empty() {
            return Err(Error::InvalidConfig(
                "e must be non-empty (use a plain MDS code for s = 0)".into(),
            ));
        }
        if e.contains(&0) {
            return Err(Error::InvalidConfig("all e_i must be positive".into()));
        }
        if e.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::InvalidConfig(format!(
                "e = {e:?} must be non-decreasing"
            )));
        }
        let m_prime = e.len();
        if m_prime > n - m {
            return Err(Error::InvalidConfig(format!(
                "m' = {m_prime} exceeds the n − m = {} surviving chunks",
                n - m
            )));
        }
        let e_max = *e.last().expect("e is non-empty");
        if e_max > r {
            return Err(Error::InvalidConfig(format!(
                "e_max = {e_max} exceeds the chunk size r = {r}"
            )));
        }
        let s: usize = e.iter().sum();
        if placement == GlobalPlacement::Inside && r * (n - m) <= s {
            return Err(Error::InvalidConfig(format!(
                "no data symbols left: r·(n−m) = {} ≤ s = {s}",
                r * (n - m)
            )));
        }
        if n + m_prime > 256 {
            return Err(Error::InvalidConfig(format!(
                "C_row length n + m' = {} exceeds GF(2^8)",
                n + m_prime
            )));
        }
        if r + e_max > 256 {
            return Err(Error::InvalidConfig(format!(
                "C_col length r + e_max = {} exceeds GF(2^8)",
                r + e_max
            )));
        }
        Ok(Config {
            n,
            r,
            m,
            e: e.to_vec(),
            placement,
        })
    }

    /// Number of devices (chunks) per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of sectors (symbols) per chunk.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of tolerated whole-chunk failures.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The sector-failure coverage vector `e`.
    pub fn e(&self) -> &[usize] {
        &self.e
    }

    /// `m'`: how many chunks may simultaneously contain sector failures.
    pub fn m_prime(&self) -> usize {
        self.e.len()
    }

    /// `s = Σ e_i`: total tolerated sector failures per stripe.
    pub fn s(&self) -> usize {
        self.e.iter().sum()
    }

    /// The largest element of `e` (the paper's `e_{m'−1}`).
    pub fn e_max(&self) -> usize {
        *self.e.last().expect("e is non-empty")
    }

    /// Where global parities are stored.
    pub fn placement(&self) -> GlobalPlacement {
        self.placement
    }

    /// Number of data symbols per stripe: `r·(n−m) − s` for inside
    /// placement, `r·(n−m)` for outside placement.
    pub fn data_symbols(&self) -> usize {
        match self.placement {
            GlobalPlacement::Inside => self.r * (self.n - self.m) - self.s(),
            GlobalPlacement::Outside => self.r * (self.n - self.m),
        }
    }

    /// Decides whether an erasure pattern (per-chunk erased-sector counts)
    /// falls within the failure coverage defined by `m` and `e` (§2).
    ///
    /// The rule: after discarding the `m` chunks with the most erasures
    /// (the "device failures"), the remaining non-zero counts, sorted
    /// descending, must fit component-wise under `e` reversed, and there may
    /// be at most `m'` of them.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != n`.
    pub fn covers_counts(&self, counts: &[usize]) -> bool {
        assert_eq!(counts.len(), self.n, "one count per chunk required");
        if counts.iter().any(|&c| c > self.r) {
            return false;
        }
        let mut sorted: Vec<usize> = counts.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Discard the m chunks with the most failures (tolerated as device
        // failures, whatever their count).
        let rest = &sorted[self.m..];
        let m_prime = self.m_prime();
        for (i, &c) in rest.iter().enumerate() {
            if c == 0 {
                break;
            }
            if i >= m_prime || c > self.e[m_prime - 1 - i] {
                return false;
            }
        }
        true
    }

    /// Like [`Config::covers_counts`], taking explicit `(row, col)` erased
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPattern`] for out-of-range or duplicate
    /// coordinates.
    pub fn covers(&self, erased: &[(usize, usize)]) -> Result<bool, Error> {
        let counts = self.erasure_counts(erased)?;
        Ok(self.covers_counts(&counts))
    }

    /// Counts erased sectors per chunk, validating coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPattern`] for out-of-range or duplicate
    /// coordinates.
    pub fn erasure_counts(&self, erased: &[(usize, usize)]) -> Result<Vec<usize>, Error> {
        let mut seen = vec![false; self.r * self.n];
        let mut counts = vec![0usize; self.n];
        for &(row, col) in erased {
            if row >= self.r || col >= self.n {
                return Err(Error::InvalidPattern(format!(
                    "coordinate ({row},{col}) out of range for r={} n={}",
                    self.r, self.n
                )));
            }
            let idx = row * self.n + col;
            if seen[idx] {
                return Err(Error::InvalidPattern(format!(
                    "duplicate coordinate ({row},{col})"
                )));
            }
            seen[idx] = true;
            counts[col] += 1;
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_config() {
        let cfg = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
        assert_eq!(cfg.n(), 8);
        assert_eq!(cfg.r(), 4);
        assert_eq!(cfg.m(), 2);
        assert_eq!(cfg.m_prime(), 3);
        assert_eq!(cfg.s(), 4);
        assert_eq!(cfg.e_max(), 2);
        assert_eq!(cfg.data_symbols(), 4 * 6 - 4);
        assert_eq!(cfg.placement(), GlobalPlacement::Inside);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Config::new(1, 4, 0, &[1]).is_err()); // n too small
        assert!(Config::new(8, 0, 2, &[1]).is_err()); // r zero
        assert!(Config::new(8, 4, 0, &[1]).is_err()); // m zero
        assert!(Config::new(8, 4, 8, &[1]).is_err()); // m >= n
        assert!(Config::new(8, 4, 2, &[]).is_err()); // e empty
        assert!(Config::new(8, 4, 2, &[0, 1]).is_err()); // zero entry
        assert!(Config::new(8, 4, 2, &[2, 1]).is_err()); // decreasing
        assert!(Config::new(8, 4, 2, &[1; 7]).is_err()); // m' > n-m
        assert!(Config::new(8, 4, 2, &[1, 5]).is_err()); // e_max > r
        assert!(Config::new(2, 1, 1, &[1]).is_err()); // no data left
        assert!(Config::new(255, 4, 2, &[1, 1]).is_err()); // n+m' > 256
    }

    #[test]
    fn special_cases_from_section_2() {
        // e = (1): a PMDS/SD code with s = 1.
        assert!(Config::new(8, 16, 2, &[1]).is_ok());
        // e = (r): same function as a systematic (n, n−m−1)-code.
        assert!(Config::new(8, 16, 2, &[16]).is_ok());
        // e = (ε,...,ε) with m' = n−m: the IDR scheme.
        assert!(Config::new(8, 16, 2, &[2; 6]).is_ok());
    }

    #[test]
    fn coverage_accepts_patterns_within_m_and_e() {
        let cfg = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
        // Worst case: 2 full chunks + (1,1,2) sector failures.
        assert!(cfg.covers_counts(&[4, 4, 2, 1, 1, 0, 0, 0]));
        // Fewer failures is always fine.
        assert!(cfg.covers_counts(&[0; 8]));
        assert!(cfg.covers_counts(&[4, 0, 0, 1, 0, 0, 0, 0]));
        // The m discarded chunks need not be fully failed.
        assert!(cfg.covers_counts(&[3, 3, 2, 1, 1, 0, 0, 0]));
    }

    #[test]
    fn coverage_rejects_patterns_beyond_m_and_e() {
        let cfg = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
        // Three chunks beyond the m = 2 worst, but (2,2,1) ⋠ (2,1,1).
        assert!(!cfg.covers_counts(&[4, 4, 2, 2, 1, 0, 0, 0]));
        // Four partially-failed chunks exceed m' = 3.
        assert!(!cfg.covers_counts(&[4, 4, 1, 1, 1, 1, 0, 0]));
        // A burst of 3 exceeds e_max = 2.
        assert!(!cfg.covers_counts(&[4, 4, 3, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn covers_validates_coordinates() {
        let cfg = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
        assert!(matches!(
            cfg.covers(&[(4, 0)]),
            Err(Error::InvalidPattern(_))
        ));
        assert!(matches!(
            cfg.covers(&[(0, 8)]),
            Err(Error::InvalidPattern(_))
        ));
        assert!(matches!(
            cfg.covers(&[(0, 0), (0, 0)]),
            Err(Error::InvalidPattern(_))
        ));
        assert!(cfg.covers(&[(0, 0), (1, 0)]).unwrap());
    }
}
