//! Coding schedules: precomputed sequences of `C_row`/`C_col` steps.
//!
//! Every STAIR operation — upstairs decoding (§4), upstairs encoding,
//! downstairs encoding (§5.1) — is expressed as a [`Schedule`]: an ordered
//! list of [`Step`]s, each of which recovers some cells of the canonical
//! stripe as a linear combination of already-available cells of one row
//! (via `C_row`) or one column (via `C_col`).
//!
//! Schedules are built once per configuration (or per erasure pattern),
//! carry their Galois-field coefficient matrices, and are then *executed*
//! against sector-sized byte regions using the `Mult_XOR` kernel. The
//! planned `Mult_XOR` count of a schedule (`Σ |inputs|·|outputs|`) is the
//! quantity the paper's Eq. (5)/(6) predict.

use core::fmt::Write as _;

use stair_code::StripeBuf;
use stair_gf::Field;
use stair_gfmatrix::Matrix;

use crate::layout::{Cell, CellKind, Layout};
use crate::stripe::Stripe;
use crate::{Error, GlobalPlacement};

/// Which constituent code a step applies, and to which row/column.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum StepCode {
    /// A `C_row` step on canonical row `i` (an original row if `i < r`, an
    /// augmented row otherwise).
    Row(usize),
    /// A `C_col` step on canonical column `j`.
    Col(usize),
}

/// One step of a schedule: `outputs = inputs · coeff` over byte regions.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Step<F: Field> {
    /// Which code is applied, and where.
    pub code: StepCode,
    /// Cells read by this step (exactly κ of the applied code).
    pub inputs: Vec<Cell>,
    /// Cells produced by this step.
    pub outputs: Vec<Cell>,
    pub(crate) coeff: Matrix<F>,
}

impl<F: Field> Step<F> {
    /// `Mult_XOR` operations this step performs: `|inputs| · |outputs|`.
    pub fn mult_xors(&self) -> usize {
        self.inputs.len() * self.outputs.len()
    }
}

/// An ordered list of steps which, executed in order, computes every
/// output cell from initially-available cells.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Schedule<F: Field> {
    pub(crate) steps: Vec<Step<F>>,
}

impl<F: Field> Schedule<F> {
    /// The steps, in execution order.
    pub fn steps(&self) -> &[Step<F>] {
        &self.steps
    }

    /// Total planned `Mult_XOR` operations (the paper's cost metric, §5.3).
    pub fn mult_xors(&self) -> usize {
        self.steps.iter().map(Step::mult_xors).sum()
    }

    /// Removes every output (and every step) not needed to produce the
    /// `targets`, walking the schedule backwards. This implements the
    /// paper's "we only need to recover the symbols that will later be
    /// used" optimization (§4.2.1).
    pub(crate) fn prune(&mut self, layout: &Layout, targets: &[Cell]) {
        let ccols = layout.canonical_cols();
        let idx = |c: Cell| c.0 * ccols + c.1;
        let mut needed = vec![false; layout.canonical_rows() * ccols];
        for &t in targets {
            needed[idx(t)] = true;
        }
        let mut kept_steps = Vec::with_capacity(self.steps.len());
        for mut step in std::mem::take(&mut self.steps).into_iter().rev() {
            let keep: Vec<usize> = (0..step.outputs.len())
                .filter(|&j| needed[idx(step.outputs[j])])
                .collect();
            if keep.is_empty() {
                continue;
            }
            if keep.len() != step.outputs.len() {
                step.outputs = keep.iter().map(|&j| step.outputs[j]).collect();
                step.coeff = step.coeff.select_cols(&keep);
            }
            for &i in &step.inputs {
                needed[idx(i)] = true;
            }
            kept_steps.push(step);
        }
        kept_steps.reverse();
        self.steps = kept_steps;
    }

    /// Executes the schedule over the byte regions of a [`Canvas`].
    ///
    /// Each output is accumulated into a scratch sector and then copied
    /// into place: a step's outputs are by construction disjoint from its
    /// inputs (an output was unavailable when its inputs were read), so
    /// writing one output never corrupts another's inputs.
    pub(crate) fn execute(&self, canvas: &mut Canvas<'_>) {
        let mut scratch = vec![0u8; canvas.symbol()];
        for step in &self.steps {
            for (j, &oc) in step.outputs.iter().enumerate() {
                scratch.fill(0);
                for (i, &ic) in step.inputs.iter().enumerate() {
                    F::mult_xor_region(&mut scratch, canvas.get(ic), step.coeff.get(i, j));
                }
                canvas.set(oc, &scratch);
            }
        }
    }

    /// Renders the schedule in the style of the paper's Tables 2–3, e.g.
    ///
    /// ```text
    /// 1  d0,0, d1,0, d2,0, d3,0 => d*0,0, d*1,0   [Ccol]
    /// ```
    pub fn render(&self, layout: &Layout) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            let ins: Vec<String> = step.inputs.iter().map(|&c| cell_name(layout, c)).collect();
            let outs: Vec<String> = step.outputs.iter().map(|&c| cell_name(layout, c)).collect();
            let code = match step.code {
                StepCode::Row(_) => "Crow",
                StepCode::Col(_) => "Ccol",
            };
            let _ = writeln!(
                out,
                "{:>3}  {} => {}   [{}]",
                i + 1,
                ins.join(", "),
                outs.join(", "),
                code
            );
        }
        out
    }
}

/// Formats a canonical cell with the paper's symbol names: `d_{i,j}` data,
/// `p_{i,k}` row parity, `p'_{i,l}` intermediate, `g_{h,l}` outside global,
/// `g^_{h,l}` inside global, `d*`/`p*` virtual, `*` dummy.
pub(crate) fn cell_name(layout: &Layout, cell: Cell) -> String {
    let (row, col) = cell;
    let (r, n, m) = (layout.r(), layout.n(), layout.m());
    let data_cols = n - m;
    match layout.kind(cell) {
        CellKind::Data => format!("d{row},{col}"),
        CellKind::RowParity => format!("p{row},{}", col - data_cols),
        CellKind::InsideGlobal { h, l } => format!("g^{h},{l}"),
        CellKind::Intermediate => format!("p'{row},{}", col - n),
        CellKind::OutsideGlobal { h, l } => format!("g{h},{l}"),
        CellKind::Virtual => {
            if col < data_cols {
                format!("d*{},{col}", row - r)
            } else if col < n {
                format!("p*{},{}", row - r, col - data_cols)
            } else {
                format!("*{},{}", row - r, col - n)
            }
        }
    }
}

/// Which storage area of the canvas a canonical cell lives in.
enum Slot {
    /// A stored cell of the `r × n` grid.
    Grid(Cell),
    /// A virtual cell of the augmented rows (first `n` columns).
    Aug(usize),
    /// A virtual intermediate-parity cell in the stored rows.
    Inter(usize),
    /// A cell of the global-parity corner.
    Glob(usize),
}

/// The byte-region workspace for one stripe: stored cells live in the
/// borrowed flat [`StripeBuf`] grid; virtual cells (augmented rows,
/// intermediate chunks, and the global-parity corner) are freshly
/// allocated.
pub(crate) struct Canvas<'a> {
    ccols: usize,
    r: usize,
    n: usize,
    symbol: usize,
    grid: &'a mut StripeBuf,
    /// Outside-placement global buffers of the borrowed stripe (empty when
    /// the canvas wraps a bare grid or an inside-placement stripe).
    outside: &'a mut [Vec<u8>],
    /// Augmented rows of the first `n` columns: `e_max × n`.
    aug: Vec<Vec<u8>>,
    /// Intermediate parity cells in stored rows: `r × m'`.
    inter: Vec<Vec<u8>>,
    /// The augmented-row part of the intermediate chunks (real and dummy
    /// global positions): `e_max × m'`.
    glob: Vec<Vec<u8>>,
}

impl<'a> Canvas<'a> {
    /// Builds a canvas over a stripe, zero-initializing all virtual cells.
    /// For outside placement, copies the stripe's global buffers into the
    /// global corner (they may be decode inputs).
    pub(crate) fn new(layout: &Layout, stripe: &'a mut Stripe) -> Self {
        let placement = stripe.config().placement();
        let (grid, outside) = stripe.parts_mut();
        let mut canvas = Self::build(layout, grid, outside);
        if placement == GlobalPlacement::Outside {
            let m_prime = layout.m_prime();
            for (g, &(row, col)) in canvas
                .outside
                .iter()
                .zip(layout.outside_global_cells().iter())
            {
                canvas.glob[(row - layout.r()) * m_prime + (col - layout.n())].copy_from_slice(g);
            }
        }
        canvas
    }

    /// Builds a canvas directly over a bare grid — the codec-generic
    /// [`stair_code::ErasureCode`] path. Inside placement only (a bare
    /// grid has nowhere to store outside globals).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the grid matches the layout's stored shape.
    pub(crate) fn over(layout: &Layout, grid: &'a mut StripeBuf) -> Self {
        debug_assert!(
            grid.has_shape(layout.r(), layout.n()),
            "grid shape does not match layout"
        );
        Self::build(layout, grid, &mut [])
    }

    fn build(layout: &Layout, grid: &'a mut StripeBuf, outside: &'a mut [Vec<u8>]) -> Self {
        let symbol = grid.symbol();
        let ccols = layout.canonical_cols();
        let n = layout.n();
        let r = layout.r();
        let m_prime = layout.m_prime();
        let e_max = layout.canonical_rows() - r;
        Canvas {
            ccols,
            r,
            n,
            symbol,
            aug: vec![vec![0u8; symbol]; e_max * n],
            inter: vec![vec![0u8; symbol]; r * m_prime],
            glob: vec![vec![0u8; symbol]; e_max * m_prime],
            grid,
            outside,
        }
    }

    /// Bytes per sector.
    pub(crate) fn symbol(&self) -> usize {
        self.symbol
    }

    /// Copies the global corner back into the stripe's outside-global
    /// buffers (used after outside-placement encoding).
    pub(crate) fn export_outside_globals(&mut self, layout: &Layout) {
        let m_prime = self.ccols - self.n;
        let cells = layout.outside_global_cells();
        for (idx, &(row, col)) in cells.iter().enumerate() {
            let src = &self.glob[(row - self.r) * m_prime + (col - self.n)];
            self.outside[idx].copy_from_slice(src);
        }
    }

    fn slot(&self, cell: Cell) -> Slot {
        let (row, col) = cell;
        let m_prime = self.ccols - self.n;
        if row < self.r {
            if col < self.n {
                Slot::Grid(cell)
            } else {
                Slot::Inter(row * m_prime + (col - self.n))
            }
        } else if col < self.n {
            Slot::Aug((row - self.r) * self.n + col)
        } else {
            Slot::Glob((row - self.r) * m_prime + (col - self.n))
        }
    }

    pub(crate) fn get(&self, cell: Cell) -> &[u8] {
        match self.slot(cell) {
            Slot::Grid(c) => self.grid.cell(c),
            Slot::Aug(i) => &self.aug[i],
            Slot::Inter(i) => &self.inter[i],
            Slot::Glob(i) => &self.glob[i],
        }
    }

    /// Copies `src` into a canonical cell.
    pub(crate) fn set(&mut self, cell: Cell, src: &[u8]) {
        match self.slot(cell) {
            Slot::Grid(c) => self.grid.set_cell(c, src),
            Slot::Aug(i) => self.aug[i].copy_from_slice(src),
            Slot::Inter(i) => self.inter[i].copy_from_slice(src),
            Slot::Glob(i) => self.glob[i].copy_from_slice(src),
        }
    }
}

impl<F: Field> Schedule<F> {
    /// Executes the schedule *symbolically*: every canonical cell holds a
    /// dense coefficient vector over the `basis` cells, and each step
    /// propagates those vectors instead of bytes. Used to derive the
    /// standard-encoding generator (and from it, update penalties and the
    /// uneven parity relations of §5.2).
    ///
    /// `init(cell)` must return `Some(vector)` for every initially-available
    /// cell (unit vectors for data cells, zero vectors for pinned-zero
    /// globals) and `None` for cells this schedule will produce.
    pub(crate) fn execute_symbolic(
        &self,
        layout: &Layout,
        basis_len: usize,
        init: impl Fn(Cell) -> Option<Vec<F::Elem>>,
    ) -> std::collections::HashMap<Cell, Vec<F::Elem>> {
        let mut values: std::collections::HashMap<Cell, Vec<F::Elem>> = Default::default();
        for row in 0..layout.canonical_rows() {
            for col in 0..layout.canonical_cols() {
                if let Some(v) = init((row, col)) {
                    assert_eq!(v.len(), basis_len, "init vector length mismatch");
                    values.insert((row, col), v);
                }
            }
        }
        for step in &self.steps {
            for (j, &out) in step.outputs.iter().enumerate() {
                let mut acc = vec![F::zero(); basis_len];
                for (i, &ic) in step.inputs.iter().enumerate() {
                    let c = step.coeff.get(i, j);
                    if c == F::zero() {
                        continue;
                    }
                    let src = values
                        .get(&ic)
                        .unwrap_or_else(|| panic!("step input {ic:?} not yet available"));
                    for (a, &s) in acc.iter_mut().zip(src) {
                        *a = F::add(*a, F::mul(c, s));
                    }
                }
                values.insert(out, acc);
            }
        }
        values
    }

    /// Validates internal consistency: every step's inputs must be available
    /// before the step runs (initially-available cells or prior outputs).
    /// Exercised by debug builds only (see `Peeler::build`).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn check_dataflow(
        &self,
        layout: &Layout,
        initially_available: impl Fn(Cell) -> bool,
    ) -> Result<(), Error> {
        let ccols = layout.canonical_cols();
        let idx = |c: Cell| c.0 * ccols + c.1;
        let mut avail = vec![false; layout.canonical_rows() * ccols];
        for row in 0..layout.canonical_rows() {
            for col in 0..ccols {
                if initially_available((row, col)) {
                    avail[idx((row, col))] = true;
                }
            }
        }
        for (k, step) in self.steps.iter().enumerate() {
            for &i in &step.inputs {
                if !avail[idx(i)] {
                    return Err(Error::InvalidPattern(format!(
                        "step {k} reads unavailable cell {i:?}"
                    )));
                }
            }
            for &o in &step.outputs {
                avail[idx(o)] = true;
            }
        }
        Ok(())
    }
}
