//! End-to-end test of the `stair` binary: encode a file, destroy two
//! devices and a burst, verify/repair/extract through the CLI surface.

mod common;

use common::run;

#[test]
fn full_cli_session() {
    let work = std::env::temp_dir().join(format!("stair-cli-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();
    let input = work.join("input.bin");
    let payload: Vec<u8> = (0..250_000).map(|i| (i * 13 % 241) as u8).collect();
    std::fs::write(&input, &payload).unwrap();
    let dir = work.join("archive");
    let dir_s = dir.to_str().unwrap();

    let (ok, out) = run(&[
        "encode",
        "--input",
        input.to_str().unwrap(),
        "--out",
        dir_s,
        "--e",
        "1,2",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("encoded 250000 bytes"), "{out}");

    let (ok, out) = run(&["verify", "--dir", dir_s]);
    assert!(ok && out.contains("healthy"), "{out}");

    // Lose two devices and a 2-sector burst.
    assert!(run(&["corrupt", "--dir", dir_s, "--device", "0"]).0);
    assert!(run(&["corrupt", "--dir", dir_s, "--device", "4"]).0);
    assert!(
        run(&[
            "corrupt", "--dir", dir_s, "--device", "6", "--stripe", "1", "--sector", "3", "--len",
            "2"
        ])
        .0
    );

    let (ok, out) = run(&["verify", "--dir", dir_s]);
    assert!(ok && out.contains("damaged"), "{out}");

    let (ok, out) = run(&["repair", "--dir", dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("rebuilt 2 device(s)"), "{out}");
    assert!(out.contains("repaired 2 latent sector(s)"), "{out}");

    let restored = work.join("restored.bin");
    let (ok, out) = run(&[
        "extract",
        "--dir",
        dir_s,
        "--output",
        restored.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert_eq!(std::fs::read(&restored).unwrap(), payload);

    let (ok, out) = run(&["info", "--n", "8", "--r", "16", "--m", "2", "--e", "1,2"]);
    assert!(ok && out.contains("storage efficiency"), "{out}");

    // Unknown command and bad flags fail cleanly.
    assert!(!run(&["frobnicate"]).0);
    assert!(!run(&["encode", "--out", dir_s]).0);

    std::fs::remove_dir_all(&work).unwrap();
}
