//! Helpers shared by the CLI integration tests.
//!
//! Each integration-test target compiles its own copy of this module
//! and uses a different subset of it, so unused-item lints are off.
#![allow(dead_code)]

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// Path of the `stair` binary next to the test executable's directory.
pub fn bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("stair{}", std::env::consts::EXE_SUFFIX));
    path
}

/// Runs the `stair` binary, returning (success, stdout + stderr).
pub fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn stair binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

/// Spawns `stair serve` over `dir` on an ephemeral port (2 shards of
/// `stair:8,4,2,1-1-2`, 128-byte symbols, 8 stripes, plus `extra`
/// flags) and parses the bound address from its first stdout line.
pub fn spawn_server(dir: &str, extra: &[&str]) -> (Child, String) {
    let mut args = vec![
        "serve",
        "--dir",
        dir,
        "--addr",
        "127.0.0.1:0",
        "--shards",
        "2",
        "--code",
        "stair:8,4,2,1-1-2",
        "--symbol",
        "128",
        "--stripes",
        "8",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn server");
    let stdout = child.stdout.as_mut().expect("server stdout");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("read serve banner");
    let addr = first
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split(" with ").next())
        .unwrap_or_else(|| panic!("no address in banner: {first:?}"))
        .trim()
        .to_string();
    (child, addr)
}

/// Extracts the ordered key sequence of a compact JSON document (no
/// escaped quotes — true for everything the `stair` CLI emits).
pub fn key_shape(doc: &str) -> Vec<String> {
    doc.match_indices('"')
        .collect::<Vec<_>>()
        .chunks(2)
        .filter_map(|pair| match pair {
            [(open, _), (close, _)] if doc[*close..].starts_with("\":") => {
                Some(doc[open + 1..*close].to_string())
            }
            _ => None,
        })
        .collect()
}

/// Reduces a unified-status key sequence to top-level keys plus ONE
/// per-shard block, asserting all shard blocks within the document are
/// identical.
fn canonical_status_shape(doc: &str) -> Vec<String> {
    let keys = key_shape(doc);
    let Some(first) = keys.iter().position(|k| k == "codec") else {
        return keys;
    };
    let shard_len = keys[first + 1..]
        .iter()
        .position(|k| k == "codec")
        .map_or(keys.len() - first, |gap| gap + 1);
    let (top, shards) = keys.split_at(first);
    let blocks: Vec<_> = shards.chunks(shard_len).collect();
    assert!(
        blocks.iter().all(|b| *b == blocks[0]),
        "shard blocks differ within one document: {keys:?}"
    );
    let mut out = top.to_vec();
    out.extend_from_slice(blocks[0]);
    out
}

/// Asserts two JSON documents have the identical ordered key sequence
/// — the shape check for backend-independent outputs like `stair dev
/// batch` results.
pub fn assert_same_key_shape(a: &str, b: &str) {
    assert_eq!(
        key_shape(a),
        key_shape(b),
        "JSON key shapes differ:\n{a}\n{b}"
    );
}

/// Asserts two unified device-status JSON documents have the identical
/// key shape, independent of how many shards each backend reports.
pub fn assert_same_status_shape(a: &str, b: &str) {
    assert_eq!(
        canonical_status_shape(a),
        canonical_status_shape(b),
        "status JSON shapes differ:\n{a}\n{b}"
    );
}
