//! End-to-end test of the `stair store` CLI surface: init → write →
//! fail a device + inject a sector burst → degraded read returns the
//! original data → repair → scrub reports clean.

mod common;

use common::run;

#[test]
fn store_cli_session() {
    let work = std::env::temp_dir().join(format!("stair-store-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();
    let dir = work.join("store");
    let dir_s = dir.to_str().unwrap();

    // init with the paper's running-example geometry, small sectors.
    let (ok, out) = run(&[
        "store",
        "init",
        "--dir",
        dir_s,
        "--n",
        "8",
        "--r",
        "4",
        "--m",
        "2",
        "--e",
        "1,1,2",
        "--symbol",
        "128",
        "--stripes",
        "12",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("initialized stair:8,4,2,1-1-2 store"), "{out}");

    // write a payload filling the store.
    let capacity = 12 * 20 * 128; // stripes × blocks/stripe × block size
    let payload: Vec<u8> = (0..capacity).map(|i| (i * 7 % 253) as u8).collect();
    let input = work.join("input.bin");
    std::fs::write(&input, &payload).unwrap();
    let (ok, out) = run(&[
        "store",
        "write",
        "--dir",
        dir_s,
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("full re-encodes"), "{out}");

    // kill two devices (m = 2) and corrupt a 2-sector burst in a third.
    assert!(run(&["store", "fail", "--dir", dir_s, "--device", "2"]).0);
    assert!(run(&["store", "fail", "--dir", dir_s, "--device", "5"]).0);
    assert!(
        run(&[
            "store", "fail", "--dir", dir_s, "--device", "7", "--stripe", "3", "--sector", "1",
            "--len", "2",
        ])
        .0
    );

    // degraded read returns the original bytes.
    let extracted = work.join("degraded.bin");
    let (ok, out) = run(&[
        "store",
        "read",
        "--dir",
        dir_s,
        "--output",
        extracted.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("degraded"), "{out}");
    assert_eq!(std::fs::read(&extracted).unwrap(), payload);

    // scrub detects the burst; repair reconstructs everything.
    let (ok, out) = run(&["store", "scrub", "--dir", dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("2 mismatches"), "{out}");
    let (ok, out) = run(&["store", "repair", "--dir", dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("repair complete"), "{out}");

    // post-repair: scrub clean, reads clean and identical.
    let (ok, out) = run(&["store", "scrub", "--dir", dir_s]);
    assert!(ok && out.contains("device clean"), "{out}");
    let final_out = work.join("final.bin");
    let (ok, out) = run(&[
        "store",
        "read",
        "--dir",
        dir_s,
        "--output",
        final_out.to_str().unwrap(),
    ]);
    assert!(ok && out.contains("(clean)"), "{out}");
    assert_eq!(std::fs::read(&final_out).unwrap(), payload);

    // small overwrite goes down the delta path.
    let patch = work.join("patch.bin");
    std::fs::write(&patch, vec![0xEEu8; 100]).unwrap();
    let (ok, out) = run(&[
        "store",
        "write",
        "--dir",
        dir_s,
        "--input",
        patch.to_str().unwrap(),
        "--offset",
        "300",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("delta updates"), "{out}");

    // status reflects a healthy store.
    let (ok, out) = run(&["store", "status", "--dir", dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("failed devices    : []"), "{out}");

    std::fs::remove_dir_all(&work).unwrap();
}

/// `--code sd:...` creates an SD-backed store that survives the same
/// sequence as the STAIR-backed one: fail a device + corrupt sectors →
/// degraded read → repair → clean scrub.
#[test]
fn store_cli_sd_backed_session() {
    let work = std::env::temp_dir().join(format!("stair-store-cli-sd-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();
    let dir = work.join("store");
    let dir_s = dir.to_str().unwrap();

    let (ok, out) = run(&[
        "store",
        "init",
        "--dir",
        dir_s,
        "--code",
        "sd:6,4,1,2",
        "--symbol",
        "128",
        "--stripes",
        "8",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("initialized sd:6,4,1,2 store"), "{out}");

    // Fill the store: 6 devices, m=1, s=2 → 4·5−2 = 18 blocks per stripe.
    let capacity = 8 * 18 * 128;
    let payload: Vec<u8> = (0..capacity).map(|i| (i * 11 % 251) as u8).collect();
    let input = work.join("input.bin");
    std::fs::write(&input, &payload).unwrap();
    let (ok, out) = run(&[
        "store",
        "write",
        "--dir",
        dir_s,
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");

    // m = 1 device down plus a 2-sector burst (s = 2) elsewhere.
    assert!(run(&["store", "fail", "--dir", dir_s, "--device", "5"]).0);
    assert!(
        run(&[
            "store", "fail", "--dir", dir_s, "--device", "1", "--stripe", "2", "--sector", "1",
            "--len", "2",
        ])
        .0
    );

    let extracted = work.join("degraded.bin");
    let (ok, out) = run(&[
        "store",
        "read",
        "--dir",
        dir_s,
        "--output",
        extracted.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert_eq!(std::fs::read(&extracted).unwrap(), payload);

    let (ok, out) = run(&["store", "repair", "--dir", dir_s]);
    assert!(ok && out.contains("repair complete"), "{out}");
    let (ok, out) = run(&["store", "scrub", "--dir", dir_s]);
    assert!(ok && out.contains("device clean"), "{out}");

    let (ok, out) = run(&["store", "status", "--dir", dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("codec sd:6,4,1,2"), "{out}");
    assert!(out.contains("1 device(s) + 2 sector(s)"), "{out}");
    std::fs::remove_dir_all(&work).unwrap();
}

#[test]
fn store_cli_inject_detect_repair() {
    let work = std::env::temp_dir().join(format!("stair-store-cli-inj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();
    let dir = work.join("store");
    let dir_s = dir.to_str().unwrap();

    let (ok, out) = run(&[
        "store",
        "init",
        "--dir",
        dir_s,
        "--n",
        "8",
        "--r",
        "8",
        "--m",
        "2",
        "--e",
        "2,2",
        "--symbol",
        "64",
        "--stripes",
        "8",
    ]);
    assert!(ok, "{out}");

    // Replay the independent sector-failure model against the store.
    let (ok, out) = run(&[
        "store", "inject", "--dir", dir_s, "--p-sec", "0.05", "--seed", "7",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("sampled 64 chunks"), "{out}");

    let (ok, _) = run(&["store", "scrub", "--dir", dir_s]);
    assert!(ok);
    let (ok, out) = run(&["store", "repair", "--dir", dir_s]);
    assert!(ok, "{out}");
    let (ok, out) = run(&["store", "scrub", "--dir", dir_s]);
    assert!(ok && out.contains("device clean"), "{out}");
    std::fs::remove_dir_all(&work).unwrap();
}
