//! End-to-end test of the `stair dev` CLI surface: the same verbs
//! driven by `--dev` specs against a local store and a served shard
//! set, with byte-identical data and identical JSON shapes across
//! backends, plus clean errors for bad specs.

mod common;

use common::{run, spawn_server};

/// Runs the same write → fail → degraded read → scrub → repair → read
/// session through `stair dev`, returning the final status JSON. The
/// returned bytes must equal the input for every backend.
fn session(dev: &str, shard: &str, work: &std::path::Path, input: &std::path::Path) -> String {
    let tag = dev.split(':').next().unwrap();
    let (ok, out) = run(&[
        "dev",
        "write",
        "--dev",
        dev,
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(ok, "{dev} write: {out}");
    assert!(out.contains("stripes touched"), "{out}");

    let (ok, out) = run(&[
        "dev", "fail", "--dev", dev, "--shard", shard, "--device", "3",
    ]);
    assert!(ok, "{dev} fail: {out}");

    let degraded = work.join(format!("degraded-{tag}.bin"));
    let (ok, out) = run(&[
        "dev",
        "read",
        "--dev",
        dev,
        "--output",
        degraded.to_str().unwrap(),
    ]);
    assert!(ok, "{dev} read: {out}");
    assert!(out.contains("(degraded)"), "{out}");
    assert_eq!(
        std::fs::read(&degraded).unwrap(),
        std::fs::read(input).unwrap(),
        "{dev}: degraded read must return the original data"
    );

    let (ok, json) = run(&["dev", "scrub", "--dev", dev, "--threads", "2", "--json"]);
    assert!(ok, "{dev} scrub: {json}");
    assert!(json.contains("\"op\":\"scrub\""), "{json}");
    assert!(json.contains("\"clean\":false"), "{json}");

    let (ok, json) = run(&["dev", "repair", "--dev", dev, "--threads", "2", "--json"]);
    assert!(ok, "{dev} repair: {json}");
    assert!(json.contains("\"op\":\"repair\""), "{json}");
    assert!(json.contains("\"complete\":true"), "{json}");

    let healed = work.join(format!("healed-{tag}.bin"));
    let (ok, out) = run(&[
        "dev",
        "read",
        "--dev",
        dev,
        "--output",
        healed.to_str().unwrap(),
    ]);
    assert!(ok && out.contains("(clean)"), "{dev}: {out}");
    assert_eq!(
        std::fs::read(&healed).unwrap(),
        std::fs::read(input).unwrap(),
        "{dev}: post-repair read must return the original data"
    );

    let (ok, _) = run(&["dev", "flush", "--dev", dev]);
    assert!(ok, "{dev} flush");

    let (ok, json) = run(&["dev", "status", "--dev", dev, "--json"]);
    assert!(ok, "{dev} status: {json}");
    assert!(json.contains("\"healthy\":true"), "{json}");
    json
}

#[test]
fn dev_cli_runs_identical_sessions_on_file_and_tcp_backends() {
    let work = std::env::temp_dir().join(format!("stair-dev-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();

    // Both backends get the same logical capacity: 16 stripes x 20
    // blocks x 128 bytes (one store with 16 stripes; two shards of 8).
    let capacity = 16 * 20 * 128usize;
    let payload: Vec<u8> = (0..capacity).map(|i| (i * 17 % 249) as u8).collect();
    let input = work.join("input.bin");
    std::fs::write(&input, &payload).unwrap();

    let store_dir = work.join("store");
    let (ok, out) = run(&[
        "store",
        "init",
        "--dir",
        store_dir.to_str().unwrap(),
        "--code",
        "stair:8,4,2,1-1-2",
        "--symbol",
        "128",
        "--stripes",
        "16",
    ]);
    assert!(ok, "{out}");
    let file_spec = format!("file:{}", store_dir.display());
    let file_json = session(&file_spec, "0", &work, &input);

    let root = work.join("net-root");
    let (mut server, addr) = spawn_server(root.to_str().unwrap(), &[]);
    let tcp_spec = format!("tcp:{addr}");
    let tcp_json = session(&tcp_spec, "1", &work, &input);

    // Omitting --shard on a multi-shard backend is refused (defaulting
    // to shard 0 would fault a shard the operator never named); a
    // single-store backend accepts the default.
    let (ok, out) = run(&["dev", "fail", "--dev", &tcp_spec, "--device", "0"]);
    assert!(!ok, "{out}");
    assert!(out.contains("--shard is required"), "{out}");

    let (ok, _) = run(&["remote", "shutdown", "--addr", &addr]);
    assert!(ok);
    assert!(server.wait().expect("server wait").success());

    // After shutdown the same root is usable in-process via shards:.
    let shards_spec = format!("shards:{}?n=2", root.display());
    let (ok, json) = run(&["dev", "status", "--dev", shards_spec.as_str(), "--json"]);
    assert!(ok, "{json}");
    assert!(json.contains("\"backend\":\"shards\""), "{json}");

    // The two backends produced identical data (both equal the input,
    // compare them to each other for good measure) and identical JSON
    // status shapes.
    assert_eq!(
        std::fs::read(work.join("healed-file.bin")).unwrap(),
        std::fs::read(work.join("healed-tcp.bin")).unwrap()
    );
    common::assert_same_status_shape(&file_json, &tcp_json);

    std::fs::remove_dir_all(&work).unwrap();
}

/// Replays one op-script through `stair dev batch`, returning the JSON.
fn replay(dev: &str, script: &std::path::Path) -> String {
    let (ok, json) = run(&[
        "dev",
        "batch",
        "--dev",
        dev,
        "--from",
        script.to_str().unwrap(),
    ]);
    assert!(ok, "{dev} batch: {json}");
    json
}

#[test]
fn dev_batch_replays_the_same_op_script_on_file_and_tcp() {
    let work = std::env::temp_dir().join(format!("stair-dev-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();

    // An op-script with scattered writes, then reads of the same spans:
    // comments, blank lines, and an unaligned cross-block write.
    let script = work.join("ops.txt");
    std::fs::write(
        &script,
        "# batch smoke script\n\
         write 0 aabbccdd\n\
         write 256 00112233445566778899\n\
         \n\
         write 130 feedface # trailing comment\n\
         read 0 4\n\
         read 256 10\n\
         read 130 4\n",
    )
    .unwrap();

    let store_dir = work.join("store");
    let (ok, out) = run(&[
        "store",
        "init",
        "--dir",
        store_dir.to_str().unwrap(),
        "--code",
        "stair:8,4,2,1-1-2",
        "--symbol",
        "128",
        "--stripes",
        "16",
    ]);
    assert!(ok, "{out}");
    let file_spec = format!("file:{}", store_dir.display());
    let file_json = replay(&file_spec, &script);

    let root = work.join("net-root");
    let (mut server, addr) = spawn_server(root.to_str().unwrap(), &[]);
    let tcp_spec = format!("tcp:{addr}");
    let tcp_json = replay(&tcp_spec, &script);

    // Reads echo exactly what the writes stored, on both backends.
    for json in [&file_json, &tcp_json] {
        assert!(json.contains("\"op\":\"batch\""), "{json}");
        assert!(json.contains("\"ops\":6"), "{json}");
        assert!(json.contains("\"data\":\"aabbccdd\""), "{json}");
        assert!(json.contains("\"data\":\"00112233445566778899\""), "{json}");
        assert!(json.contains("\"data\":\"feedface\""), "{json}");
    }
    // Identical JSON key shape across backends.
    common::assert_same_key_shape(&file_json, &tcp_json);

    // The resulting device bytes are identical: read both back in full.
    let file_out = work.join("file.bin");
    let tcp_out = work.join("tcp.bin");
    let (ok, _) = run(&[
        "dev",
        "read",
        "--dev",
        &file_spec,
        "--output",
        file_out.to_str().unwrap(),
        "--len",
        "1024",
    ]);
    assert!(ok);
    let (ok, _) = run(&[
        "dev",
        "read",
        "--dev",
        &tcp_spec,
        "--output",
        tcp_out.to_str().unwrap(),
        "--len",
        "1024",
    ]);
    assert!(ok);
    assert_eq!(
        std::fs::read(&file_out).unwrap(),
        std::fs::read(&tcp_out).unwrap()
    );

    let (ok, _) = run(&["remote", "shutdown", "--addr", &addr]);
    assert!(ok);
    assert!(server.wait().expect("server wait").success());

    // Malformed scripts are clean errors with a line number.
    let bad = work.join("bad.txt");
    std::fs::write(&bad, "write 0 abc\n").unwrap(); // odd-length hex
    let (ok, out) = run(&[
        "dev",
        "batch",
        "--dev",
        &file_spec,
        "--from",
        bad.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(out.contains("op-script line 1"), "{out}");
    let (ok, out) = run(&["dev", "batch", "--dev", &file_spec]);
    assert!(!ok);
    assert!(out.contains("--from is required"), "{out}");

    std::fs::remove_dir_all(&work).unwrap();
}

#[test]
fn dev_cli_rejects_bad_specs_cleanly() {
    let (ok, out) = run(&["dev", "status", "--dev", "nfs:/somewhere"]);
    assert!(!ok);
    assert!(
        out.contains("error:") && out.contains("unknown scheme"),
        "{out}"
    );
    assert!(!out.contains("panicked"), "{out}");

    let (ok, out) = run(&["dev", "status", "--dev", "shards:/nope?k=3"]);
    assert!(!ok);
    assert!(out.contains("unknown query parameter"), "{out}");

    let (ok, out) = run(&["dev", "status"]);
    assert!(!ok);
    assert!(out.contains("--dev is required"), "{out}");

    let (ok, out) = run(&["dev", "munge", "--dev", "file:/tmp"]);
    assert!(!ok);
    assert!(out.contains("unknown stair dev command"), "{out}");

    // A spec that parses but points nowhere is a clean open error.
    let (ok, out) = run(&["dev", "status", "--dev", "file:/definitely/not/a/store"]);
    assert!(!ok);
    assert!(out.contains("error:"), "{out}");
    assert!(!out.contains("panicked"), "{out}");
}
