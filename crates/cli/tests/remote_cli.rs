//! End-to-end test of the `stair serve` / `stair remote` CLI surface:
//! a real server child process on a loopback port driven by real client
//! invocations, plus the clean-failure paths (busy port, bad root,
//! unreachable server) that must exit with an error message, never a
//! panic.

mod common;

use common::{run, spawn_server};

#[test]
fn serve_remote_session_round_trips_degraded_data() {
    let work = std::env::temp_dir().join(format!("stair-remote-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();
    let root = work.join("net-root");
    let (mut server, addr) = spawn_server(root.to_str().unwrap(), &[]);

    // capacity = 2 shards × 8 stripes × 20 blocks × 128 bytes.
    let capacity = 2 * 8 * 20 * 128usize;
    let payload: Vec<u8> = (0..capacity).map(|i| (i * 13 % 251) as u8).collect();
    let input = work.join("input.bin");
    std::fs::write(&input, &payload).unwrap();

    let (ok, out) = run(&[
        "remote",
        "write",
        "--addr",
        &addr,
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert!(out.contains(&format!("wrote {capacity} bytes")), "{out}");

    // Clean read round-trips.
    let output = work.join("out.bin");
    let (ok, out) = run(&[
        "remote",
        "read",
        "--addr",
        &addr,
        "--output",
        output.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert_eq!(std::fs::read(&output).unwrap(), payload);

    // Fail a device on shard 1 and corrupt a burst on shard 0; the
    // degraded read must still return the exact payload.
    let (ok, out) = run(&[
        "remote", "fail", "--addr", &addr, "--shard", "1", "--device", "3",
    ]);
    assert!(ok, "{out}");
    let (ok, out) = run(&[
        "remote", "fail", "--addr", &addr, "--shard", "0", "--device", "5", "--stripe", "2",
        "--sector", "1", "--len", "2",
    ]);
    assert!(ok, "{out}");
    let (ok, out) = run(&[
        "remote",
        "read",
        "--addr",
        &addr,
        "--output",
        output.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert_eq!(std::fs::read(&output).unwrap(), payload, "degraded read");

    // Status (human + JSON) reflects the failure.
    let (ok, out) = run(&["remote", "status", "--addr", &addr]);
    assert!(ok, "{out}");
    assert!(out.contains("shard 1: failed [3]"), "{out}");
    let (ok, json) = run(&["remote", "status", "--addr", &addr, "--json"]);
    assert!(ok, "{json}");
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("\"failed_devices\":[3]"), "{json}");
    assert!(json.contains("\"healthy\":false"), "{json}");

    // Scrub flags the burst, repair heals everything, scrub then clean.
    let (ok, out) = run(&["remote", "scrub", "--addr", &addr]);
    assert!(ok, "{out}");
    assert!(out.contains("run `stair remote repair`"), "{out}");
    let (ok, out) = run(&["remote", "repair", "--addr", &addr]);
    assert!(ok, "{out}");
    assert!(out.contains("repair complete"), "{out}");
    let (ok, out) = run(&["remote", "scrub", "--addr", &addr]);
    assert!(ok, "{out}");
    assert!(out.contains("device clean"), "{out}");

    let (ok, json) = run(&["remote", "status", "--addr", &addr, "--json"]);
    assert!(ok, "{json}");
    assert!(json.contains("\"healthy\":true"), "{json}");

    // Flush, then clean shutdown: the child must exit successfully.
    let (ok, out) = run(&["remote", "flush", "--addr", &addr]);
    assert!(ok, "{out}");
    let (ok, out) = run(&["remote", "shutdown", "--addr", &addr]);
    assert!(ok, "{out}");
    let status = server.wait().expect("server wait");
    assert!(status.success(), "server exit: {status:?}");

    // The shards persisted: a second server over the same root serves
    // the same bytes.
    let (mut server, addr) = spawn_server(root.to_str().unwrap(), &[]);
    let (ok, out) = run(&[
        "remote",
        "read",
        "--addr",
        &addr,
        "--output",
        output.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert_eq!(std::fs::read(&output).unwrap(), payload, "after restart");
    let (ok, _) = run(&["remote", "shutdown", "--addr", &addr]);
    assert!(ok);
    assert!(server.wait().expect("wait").success());

    std::fs::remove_dir_all(&work).unwrap();
}

#[test]
fn store_and_remote_status_json_share_one_shape() {
    let work = std::env::temp_dir().join(format!("stair-json-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();

    // A local store…
    let store_dir = work.join("store");
    let (ok, out) = run(&[
        "store",
        "init",
        "--dir",
        store_dir.to_str().unwrap(),
        "--code",
        "stair:8,4,2,1-1-2",
        "--symbol",
        "128",
        "--stripes",
        "8",
    ]);
    assert!(ok, "{out}");
    let (ok, local) = run(&[
        "store",
        "status",
        "--dir",
        store_dir.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "{local}");

    // …and a served shard set of the same shape.
    let root = work.join("net-root");
    let (mut server, addr) = spawn_server(root.to_str().unwrap(), &[]);
    let (ok, remote) = run(&["remote", "status", "--addr", &addr, "--json"]);
    assert!(ok, "{remote}");
    let (ok, _) = run(&["remote", "shutdown", "--addr", &addr]);
    assert!(ok);
    assert!(server.wait().expect("wait").success());

    // Both went through the same serializer: every key of the unified
    // shape appears verbatim in both documents (a local store is simply
    // a device with one shard), and each per-shard key in both.
    for key in [
        "\"backend\":",
        "\"shards\":",
        "\"total_capacity_bytes\":",
        "\"shard_status\":",
        "\"codec\":\"stair:8,4,2,1-1-2\"",
        "\"block_size\":128",
        "\"stripes\":8",
        "\"blocks_per_stripe\":20",
        "\"device_tolerance\":2",
        "\"sector_tolerance\":4",
        "\"failed_devices\":[]",
        "\"rebuilding_devices\":[]",
        "\"known_bad_sectors\":0",
        "\"clean_shutdown\":true",
        "\"replayed_records\":0",
        "\"healthy\":true",
    ] {
        assert!(local.contains(key), "local missing {key}: {local}");
        assert!(remote.contains(key), "remote missing {key}: {remote}");
    }
    assert!(local.contains("\"backend\":\"file\""), "{local}");
    assert!(local.contains("\"shards\":1"), "{local}");
    assert!(remote.contains("\"backend\":\"tcp\""), "{remote}");
    assert!(remote.contains("\"shards\":2"), "{remote}");

    // Identical shapes: the key sequence of the two documents matches.
    common::assert_same_status_shape(&local, &remote);

    std::fs::remove_dir_all(&work).unwrap();
}

#[test]
fn serve_refuses_busy_port_with_clean_error() {
    let work = std::env::temp_dir().join(format!("stair-busy-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();
    // Occupy a port, then ask serve to bind it.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let busy = listener.local_addr().unwrap().to_string();
    let (ok, out) = run(&[
        "serve",
        "--dir",
        work.join("root").to_str().unwrap(),
        "--addr",
        &busy,
        "--shards",
        "1",
        "--symbol",
        "128",
        "--stripes",
        "4",
    ]);
    assert!(!ok, "binding a busy port must fail");
    assert!(
        out.contains("error:") && out.contains("cannot bind"),
        "{out}"
    );
    assert!(!out.contains("panicked"), "{out}");
    std::fs::remove_dir_all(&work).unwrap();
}

#[test]
fn serve_refuses_bad_roots_with_clean_errors() {
    let work = std::env::temp_dir().join(format!("stair-badroot-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();

    // Root is a file, not a directory.
    let file_root = work.join("not-a-dir");
    std::fs::write(&file_root, b"occupied").unwrap();
    let (ok, out) = run(&[
        "serve",
        "--dir",
        file_root.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
    ]);
    assert!(!ok);
    assert!(
        out.contains("error:") && out.contains("not a directory"),
        "{out}"
    );
    assert!(!out.contains("panicked"), "{out}");

    // Root holds shards but the count disagrees.
    let root = work.join("root");
    let (mut server, addr) = spawn_server(root.to_str().unwrap(), &[]);
    let (ok, _) = run(&["remote", "shutdown", "--addr", &addr]);
    assert!(ok);
    assert!(server.wait().expect("wait").success());
    let (ok, out) = run(&[
        "serve",
        "--dir",
        root.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
        "--shards",
        "3",
    ]);
    assert!(!ok);
    assert!(
        out.contains("error:") && out.contains("--shards asked for 3"),
        "{out}"
    );
    assert!(!out.contains("panicked"), "{out}");

    // A shard directory with corrupt metadata.
    std::fs::write(root.join("shard-0000").join("store.meta"), b"garbage").unwrap();
    let (ok, out) = run(&[
        "serve",
        "--dir",
        root.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
        "--shards",
        "2",
    ]);
    assert!(!ok);
    assert!(out.contains("error:"), "{out}");
    assert!(!out.contains("panicked"), "{out}");

    // Missing required flags.
    let (ok, out) = run(&["serve", "--addr", "127.0.0.1:0"]);
    assert!(!ok);
    assert!(out.contains("--dir is required"), "{out}");
    let (ok, out) = run(&["serve", "--dir", work.join("x").to_str().unwrap()]);
    assert!(!ok);
    assert!(out.contains("--addr is required"), "{out}");

    std::fs::remove_dir_all(&work).unwrap();
}

#[test]
fn remote_against_no_server_is_a_clean_error() {
    // Port 9 (discard) on localhost is almost certainly closed; if an
    // OS quirk makes connect hang, the test harness timeout covers us.
    let (ok, out) = run(&["remote", "status", "--addr", "127.0.0.1:9"]);
    assert!(!ok);
    assert!(
        out.contains("error:") && out.contains("cannot connect"),
        "{out}"
    );
    assert!(!out.contains("panicked"), "{out}");

    let (ok, out) = run(&["remote", "bogus", "--addr", "127.0.0.1:9"]);
    assert!(!ok);
    // Connection is attempted first; either failure is fine as long as
    // it is clean.
    assert!(out.contains("error:"), "{out}");
    assert!(!out.contains("panicked"), "{out}");
}
