//! Conformance test for `stair dev metrics`: the metrics JSON has the
//! same shape for `file:`, `shards:`, and `tcp:` backends, per-op-kind
//! counts and latency quantiles are populated after a scripted batch
//! workload, and the `tcp:` path proves counters are collected
//! server-side (the METRICS opcode returns nonzero `srv.*` counters).

mod common;

use common::{key_shape, run, spawn_server};

/// Entry key shapes of the four metrics arrays; `slow_ops` may be
/// empty (the default 10 ms threshold rarely trips on loopback), so
/// its entry shape is asserted only when present.
const COUNTER_KEYS: [&str; 2] = ["name", "value"];
const GAUGE_KEYS: [&str; 2] = ["name", "value"];
const HIST_KEYS: [&str; 7] = [
    "name", "count", "sum_us", "mean_us", "p50_us", "p99_us", "max_us",
];
const SLOW_OP_KEYS: [&str; 6] = ["t_us", "kind", "shard", "bytes", "duration_us", "ok"];

/// Asserts `doc` is a metrics document: the four top-level arrays in
/// order, every entry within an array sharing that array's uniform key
/// shape. Because the shape is pinned against these constants (not
/// against another document), passing for two backends means their
/// shapes are identical even when their metric-name sets differ.
fn assert_metrics_shape(doc: &str) {
    let keys = key_shape(doc);
    let sections: [(&str, &[&str]); 4] = [
        ("counters", &COUNTER_KEYS),
        ("gauges", &GAUGE_KEYS),
        ("histograms", &HIST_KEYS),
        ("slow_ops", &SLOW_OP_KEYS),
    ];
    let mut i = 0;
    for (s, (section, entry)) in sections.iter().enumerate() {
        assert_eq!(
            keys.get(i).map(String::as_str),
            Some(*section),
            "expected `{section}` at key {i}: {doc}"
        );
        i += 1;
        let later: Vec<&str> = sections[s + 1..].iter().map(|(name, _)| *name).collect();
        let end = keys[i..]
            .iter()
            .position(|k| later.contains(&k.as_str()))
            .map_or(keys.len(), |p| i + p);
        for block in keys[i..end].chunks(entry.len()) {
            assert_eq!(block, *entry, "ragged `{section}` entry: {doc}");
        }
        i = end;
    }
}

/// Extracts the numeric value following `"{key}":` within the entry
/// whose `"name":"{name}"` appears in `doc` (compact JSON, no escaped
/// quotes).
fn field_of(doc: &str, name: &str, key: &str) -> u64 {
    let at = doc
        .find(&format!("\"name\":\"{name}\""))
        .unwrap_or_else(|| panic!("no metric `{name}` in {doc}"));
    let tail = &doc[at..];
    let marker = format!("\"{key}\":");
    let v = tail
        .find(&marker)
        .map(|p| &tail[p + marker.len()..])
        .unwrap_or_else(|| panic!("no `{key}` after `{name}` in {doc}"));
    v.split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("non-numeric `{key}` for `{name}` in {doc}"))
}

/// Runs `stair dev metrics --dev SPEC --from SCRIPT --json`.
fn metrics(dev: &str, script: &std::path::Path) -> String {
    let (ok, json) = run(&[
        "dev",
        "metrics",
        "--dev",
        dev,
        "--from",
        script.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "{dev} metrics: {json}");
    json
}

#[test]
fn dev_metrics_reports_one_json_shape_across_all_backends() {
    let work = std::env::temp_dir().join(format!("stair-metrics-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();

    // The scripted batch workload every backend replays before its
    // snapshot is taken.
    let script = work.join("ops.txt");
    std::fs::write(
        &script,
        "# metrics conformance workload\n\
         write 0 aabbccdd\n\
         write 256 00112233445566778899\n\
         write 130 feedface\n\
         read 0 4\n\
         read 256 10\n\
         read 130 4\n",
    )
    .unwrap();

    let store_dir = work.join("store");
    let (ok, out) = run(&[
        "store",
        "init",
        "--dir",
        store_dir.to_str().unwrap(),
        "--code",
        "stair:8,4,2,1-1-2",
        "--symbol",
        "128",
        "--stripes",
        "8",
    ]);
    assert!(ok, "{out}");
    let file_doc = metrics(&format!("file:{}", store_dir.display()), &script);

    let root = work.join("net-root");
    let (mut server, addr) = spawn_server(root.to_str().unwrap(), &[]);
    let tcp_doc = metrics(&format!("tcp:{addr}"), &script);
    let (ok, _) = run(&["remote", "shutdown", "--addr", &addr]);
    assert!(ok);
    assert!(server.wait().expect("server wait").success());

    // The same root, reopened in-process.
    let shards_doc = metrics(&format!("shards:{}?n=2", root.display()), &script);

    for doc in [&file_doc, &tcp_doc, &shards_doc] {
        assert_metrics_shape(doc);

        // The scripted workload went through `submit`, so every
        // backend shows one batch op with populated latency quantiles
        // and the combined byte counts of the script's ops.
        assert_eq!(field_of(doc, "dev.ops.batch", "value"), 1, "{doc}");
        assert_eq!(field_of(doc, "dev.lat_us.batch", "count"), 1, "{doc}");
        let p50 = field_of(doc, "dev.lat_us.batch", "p50_us");
        let p99 = field_of(doc, "dev.lat_us.batch", "p99_us");
        let max = field_of(doc, "dev.lat_us.batch", "max_us");
        assert!(p50 <= p99 && p99 <= max.max(p50), "{doc}");
        assert_eq!(field_of(doc, "dev.bytes.written", "value"), 18, "{doc}");
        assert_eq!(field_of(doc, "dev.bytes.read", "value"), 18, "{doc}");

        // Every backend folds the store layer's counters in.
        assert!(field_of(doc, "store.stripe_locks", "value") > 0, "{doc}");
    }

    // The tcp: document carries server-side counters fetched via the
    // METRICS opcode — proof the collection happened in the server
    // process, not in this client.
    assert!(
        field_of(&tcp_doc, "srv.req.batch", "value") > 0,
        "{tcp_doc}"
    );
    assert!(
        field_of(&tcp_doc, "srv.req.hello", "value") > 0,
        "{tcp_doc}"
    );
    assert_eq!(
        field_of(&tcp_doc, "srv.lat_us.batch", "count"),
        field_of(&tcp_doc, "srv.req.batch", "value"),
        "{tcp_doc}"
    );

    std::fs::remove_dir_all(&work).unwrap();
}
