//! The one JSON serializer for store health — shared by
//! `stair store status --json` (a single store) and
//! `stair remote status --json` (every shard behind a server), so the
//! two surfaces can never drift apart.

use stair_net::json::Json;
use stair_store::StoreStatus;

/// One store/shard as a JSON object.
pub fn store_status_json(status: &StoreStatus) -> Json {
    let devs = |v: &[usize]| Json::arr(v.iter().map(|&d| Json::int(d)));
    Json::obj([
        ("codec", Json::str(status.codec.to_string())),
        ("capacity_bytes", Json::int64(status.capacity)),
        ("block_size", Json::int(status.block_size)),
        ("stripes", Json::int(status.stripes)),
        ("blocks_per_stripe", Json::int(status.blocks_per_stripe)),
        ("failed_devices", devs(&status.failed_devices)),
        ("rebuilding_devices", devs(&status.rebuilding_devices)),
        ("known_bad_sectors", Json::int(status.known_bad_sectors)),
        ("healthy", Json::Bool(is_healthy(status))),
    ])
}

/// A shard list (remote status) as a JSON object with the aggregate.
pub fn shard_statuses_json(statuses: &[StoreStatus]) -> Json {
    Json::obj([
        ("shards", Json::int(statuses.len())),
        (
            "total_capacity_bytes",
            Json::int64(statuses.iter().map(|s| s.capacity).sum()),
        ),
        ("healthy", Json::Bool(statuses.iter().all(is_healthy))),
        (
            "shard_status",
            Json::arr(statuses.iter().map(store_status_json)),
        ),
    ])
}

fn is_healthy(status: &StoreStatus) -> bool {
    status.failed_devices.is_empty()
        && status.rebuilding_devices.is_empty()
        && status.known_bad_sectors == 0
}
