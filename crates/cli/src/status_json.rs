//! The one JSON serializer for device health and maintenance reports —
//! shared by `stair dev … --json` and the `stair store` /
//! `stair remote` aliases, so the three surfaces can never drift
//! apart: `--dev file:…` and `--dev tcp:…` produce byte-identical
//! shapes.

use stair_device::{CacheTierStatus, DeviceStatus, RepairOutcome, ScrubOutcome, ShardHealth};
use stair_net::json::Json;
use stair_net::{WireSpan, WireTrace};
use stair_obs::MetricsSnapshot;

/// A metrics snapshot as a JSON object — the serializer `stair dev
/// metrics` and `stair remote metrics` share with the bench drivers
/// (arrays of uniform objects, so the key shape is identical across
/// backends whose metric-name sets differ).
pub fn metrics_json(snap: &MetricsSnapshot) -> Json {
    stair_net::json::metrics_json(snap)
}

/// One shard's health as a JSON object.
fn shard_json(shard: &ShardHealth) -> Json {
    let devs = |v: &[usize]| Json::arr(v.iter().map(|&d| Json::int(d)));
    Json::obj([
        ("codec", Json::str(shard.codec.clone())),
        ("capacity_bytes", Json::int64(shard.capacity)),
        ("block_size", Json::int(shard.block_size)),
        ("stripes", Json::int(shard.stripes)),
        ("blocks_per_stripe", Json::int(shard.blocks_per_stripe)),
        ("device_tolerance", Json::int(shard.device_tolerance)),
        ("sector_tolerance", Json::int(shard.sector_tolerance)),
        ("failed_devices", devs(&shard.failed_devices)),
        ("rebuilding_devices", devs(&shard.rebuilding_devices)),
        ("known_bad_sectors", Json::int(shard.known_bad_sectors)),
        ("clean_shutdown", Json::Bool(shard.clean_shutdown)),
        ("replayed_records", Json::int64(shard.replayed_records)),
        ("healthy", Json::Bool(shard.healthy())),
    ])
}

/// A cache tier's state as a JSON object (present only for `cache:`
/// devices, so uncached status shapes are unchanged).
fn cache_json(tier: &CacheTierStatus) -> Json {
    Json::obj([
        ("budget_bytes", Json::int64(tier.budget_bytes)),
        ("frames", Json::int(tier.frames)),
        ("resident_blocks", Json::int(tier.resident_blocks)),
        ("generation", Json::int64(tier.generation)),
        ("write_back", Json::Bool(tier.write_back)),
        ("wb_buffered_blocks", Json::int(tier.wb_buffered_blocks)),
        ("hits", Json::int64(tier.hits)),
        ("misses", Json::int64(tier.misses)),
    ])
}

/// A device's unified status as a JSON object — the same shape for
/// every backend (a local store is simply a device with one shard).
pub fn device_status_json(status: &DeviceStatus) -> Json {
    let mut fields = vec![
        ("backend", Json::str(status.backend.clone())),
        ("shards", Json::int(status.shards.len())),
        ("total_capacity_bytes", Json::int64(status.capacity)),
        ("block_size", Json::int(status.block_size)),
        ("healthy", Json::Bool(status.healthy())),
        (
            "shard_status",
            Json::arr(status.shards.iter().map(shard_json)),
        ),
    ];
    if let Some(tier) = &status.cache {
        fields.push(("cache", cache_json(tier)));
    }
    Json::obj(fields)
}

/// A scrub outcome as a JSON object.
pub fn scrub_json(outcome: &ScrubOutcome) -> Json {
    Json::obj([
        ("op", Json::str("scrub")),
        ("stripes_scanned", Json::int64(outcome.stripes_scanned)),
        ("sectors_verified", Json::int64(outcome.sectors_verified)),
        ("mismatches", Json::int64(outcome.mismatches)),
        (
            "unavailable_devices",
            Json::int64(outcome.unavailable_devices),
        ),
        ("records_cleared", Json::int64(outcome.records_cleared)),
        ("clean", Json::Bool(outcome.clean())),
    ])
}

/// A span/trace id as JSON. Ids are random u64s, so they print as hex
/// strings — JSON numbers lose precision past 2^53. Id 0 (a span's
/// `parent_id` when it is its process's root) stays the string "0".
fn id_json(id: u64) -> Json {
    if id == 0 {
        Json::str("0")
    } else {
        Json::str(format!("{id:016x}"))
    }
}

fn span_json(span: &WireSpan) -> Json {
    Json::obj([
        ("span_id", id_json(span.span_id)),
        ("parent_id", id_json(span.parent_id)),
        ("name", Json::str(span.name.clone())),
        ("start_us", Json::int64(span.start_us)),
        ("duration_us", Json::int64(span.duration_us)),
        ("ok", Json::Bool(span.ok)),
        ("bytes", Json::int64(span.bytes)),
    ])
}

fn one_trace_json(trace: &WireTrace, origin: &str) -> Json {
    Json::obj([
        ("trace_id", id_json(trace.trace_id)),
        ("root_span", id_json(trace.root_span)),
        ("origin", Json::str(origin)),
        ("duration_us", Json::int64(trace.duration_us)),
        ("ok", Json::Bool(trace.ok)),
        ("slow", Json::Bool(trace.slow)),
        ("spans", Json::arr(trace.spans.iter().map(span_json))),
    ])
}

/// Flight-recorder pulls as one JSON object — the serializer
/// `stair dev trace` and `stair remote trace` share. `local` traces
/// come from this process's recorder, `server` traces from a TRACE
/// pull; each trace is tagged with its origin, and span timestamps are
/// relative to the *originating* process's recorder epoch (the two
/// clocks are not comparable — join traces by `trace_id` and parent
/// span ids, not by `start_us`).
pub fn traces_json(local: &[WireTrace], server: &[WireTrace]) -> Json {
    Json::obj([
        ("op", Json::str("trace")),
        ("local_traces", Json::int(local.len())),
        ("server_traces", Json::int(server.len())),
        (
            "traces",
            Json::arr(
                local
                    .iter()
                    .map(|t| one_trace_json(t, "local"))
                    .chain(server.iter().map(|t| one_trace_json(t, "server"))),
            ),
        ),
    ])
}

/// A repair outcome as a JSON object.
pub fn repair_json(outcome: &RepairOutcome) -> Json {
    Json::obj([
        ("op", Json::str("repair")),
        ("devices_replaced", Json::int64(outcome.devices_replaced)),
        ("stripes_repaired", Json::int64(outcome.stripes_repaired)),
        ("sectors_rewritten", Json::int64(outcome.sectors_rewritten)),
        (
            "unrecoverable_stripes",
            Json::int64(outcome.unrecoverable_stripes),
        ),
        ("complete", Json::Bool(outcome.complete())),
    ])
}
