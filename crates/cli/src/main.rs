//! `stair` — command-line tool for STAIR-coded file archives and the
//! stair-store engine.
//!
//! ```text
//! stair info    --n 8 --r 16 --m 2 --e 1,2
//! stair encode  --input FILE --out DIR [--n N --r R --m M --e E --symbol S]
//! stair verify  --dir DIR
//! stair repair  --dir DIR
//! stair extract --dir DIR --output FILE
//! stair corrupt --dir DIR (--device J | --device J --stripe I --sector K [--len L])
//! stair store   (init|status|write|read|fail|scrub|repair|inject) ...
//! stair serve   --dir ROOT --addr HOST:PORT [--shards K --code SPEC ...]
//! stair remote  (status|read|write|fail|scrub|repair|flush|metrics|trace|shutdown) --addr A ...
//! stair dev     (status|read|write|batch|fail|scrub|repair|flush|metrics|trace) --dev SPEC ...
//! ```
//!
//! `stair store init --code sd:6,4,1,2` (or `rs:n,r,m` / `stair:n,r,m,e`)
//! picks which erasure code protects the store. `stair serve` hosts a
//! sharded store over the stair-net protocol; `stair remote` is its
//! client. `stair dev` drives *any* backend through the unified
//! `BlockDevice` API — `--dev file:<dir>`, `shards:<root>?n=K`, or
//! `tcp:<addr>?lanes=L` — and is the single data path the `store` and
//! `remote` verbs alias into.

mod device_cmd;
mod flags;
mod remote_cmd;
mod serve_cmd;
mod status_json;
mod store_cmd;

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use stair::{Config, StairCodec};
use stair_cli::{Archive, EncodeOptions};
use stair_reliability::storage_efficiency;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("store") {
        let Some((verb, flags)) = parse(&args[1..]) else {
            eprintln!("{}", store_cmd::STORE_USAGE);
            return ExitCode::FAILURE;
        };
        return match store_cmd::run(&verb, &flags) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("dev") {
        let Some((verb, flags)) = parse(&args[1..]) else {
            eprintln!("{}", device_cmd::DEV_USAGE);
            return ExitCode::FAILURE;
        };
        return match device_cmd::run(&verb, &flags) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("remote") {
        let Some((verb, flags)) = parse(&args[1..]) else {
            eprintln!("{}", remote_cmd::REMOTE_USAGE);
            return ExitCode::FAILURE;
        };
        return match remote_cmd::run(&verb, &flags) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("serve") {
        let Some((_, flags)) = parse(&args) else {
            eprintln!("{}", serve_cmd::SERVE_USAGE);
            return ExitCode::FAILURE;
        };
        return match serve_cmd::run(&flags) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "info" => cmd_info(&flags),
        "encode" => cmd_encode(&flags),
        "verify" => cmd_verify(&flags),
        "repair" => cmd_repair(&flags),
        "extract" => cmd_extract(&flags),
        "corrupt" => cmd_corrupt(&flags),
        _ => {
            eprintln!("unknown command `{cmd}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  stair info    --n N --r R --m M --e E
  stair encode  --input FILE --out DIR [--n N --r R --m M --e E --symbol S]
  stair verify  --dir DIR
  stair repair  --dir DIR
  stair extract --dir DIR --output FILE
  stair corrupt --dir DIR --device J [--stripe I --sector K --len L]
  stair store   (init|status|write|read|fail|scrub|repair|inject) --dir DIR ...
  stair serve   --dir ROOT --addr HOST:PORT [--shards K --code SPEC ...]
  stair remote  (status|read|write|fail|scrub|repair|flush|metrics|trace|shutdown) --addr A ...
  stair dev     (status|read|write|batch|fail|scrub|repair|flush|metrics|trace) --dev SPEC ...";

use flags::{dir_flag, usize_flag, Flags};

/// Parses `<cmd> [--key value | --flag]...`. A `--key` followed by
/// another `--key` (or by nothing) is a valueless flag and maps to the
/// empty string, so presence tests like `--json` work.
fn parse(args: &[String]) -> Option<(String, Flags)> {
    let mut it = args.iter().peekable();
    let cmd = it.next()?.clone();
    let mut flags = HashMap::new();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
            _ => String::new(),
        };
        flags.insert(key.to_string(), value);
    }
    Some((cmd, flags))
}

fn e_flag(flags: &Flags, default: &[usize]) -> Result<Vec<usize>, String> {
    match flags.get("e") {
        None => Ok(default.to_vec()),
        Some(v) => v
            .split(',')
            .map(|x| {
                x.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad e entry `{x}`"))
            })
            .collect(),
    }
}

fn cmd_info(flags: &Flags) -> Result<(), String> {
    let n = usize_flag(flags, "n", 8)?;
    let r = usize_flag(flags, "r", 16)?;
    let m = usize_flag(flags, "m", 2)?;
    let e = e_flag(flags, &[1, 2])?;
    let config = Config::new(n, r, m, &e).map_err(|e| e.to_string())?;
    let codec: StairCodec = StairCodec::new(config.clone()).map_err(|e| e.to_string())?;
    println!("STAIR(n={n}, r={r}, m={m}, e={e:?})");
    println!("  m' = {}, s = {}", config.m_prime(), config.s());
    println!("  data sectors / stripe   : {}", config.data_symbols());
    println!(
        "  parity sectors / stripe : {}",
        n * r - config.data_symbols()
    );
    println!(
        "  storage efficiency      : {:.4}",
        storage_efficiency(n, r, m, config.s())
    );
    let c = codec.mult_xor_counts();
    println!(
        "  Mult_XORs (up/down/std) : {}/{}/{} -> {:?}",
        c.upstairs,
        c.downstairs,
        c.standard,
        codec.best_method()
    );
    println!(
        "  avg update penalty      : {:.2}",
        codec.relations().update_penalty().average
    );
    Ok(())
}

fn cmd_encode(flags: &Flags) -> Result<(), String> {
    let input = flags
        .get("input")
        .map(PathBuf::from)
        .ok_or_else(|| "--input is required".to_string())?;
    let out = flags
        .get("out")
        .map(PathBuf::from)
        .ok_or_else(|| "--out is required".to_string())?;
    let opts = EncodeOptions {
        n: usize_flag(flags, "n", 8)?,
        r: usize_flag(flags, "r", 16)?,
        m: usize_flag(flags, "m", 2)?,
        e: e_flag(flags, &[1, 2])?,
        symbol: usize_flag(flags, "symbol", 512)?,
    };
    Archive::encode_file(&input, &out, &opts).map_err(|e| e.to_string())?;
    let archive = Archive::open(&out).map_err(|e| e.to_string())?;
    println!(
        "encoded {} bytes into {} stripes across {} chunk files at {}",
        archive.manifest().file_len,
        archive.manifest().stripes,
        archive.manifest().n,
        out.display()
    );
    Ok(())
}

fn cmd_verify(flags: &Flags) -> Result<(), String> {
    let archive = Archive::open(&dir_flag(flags)?).map_err(|e| e.to_string())?;
    let damaged = archive.verify().map_err(|e| e.to_string())?;
    if damaged == 0 {
        println!("archive healthy");
        Ok(())
    } else {
        println!("{damaged} damaged sectors detected (run `stair repair`)");
        Ok(())
    }
}

fn cmd_repair(flags: &Flags) -> Result<(), String> {
    let archive = Archive::open(&dir_flag(flags)?).map_err(|e| e.to_string())?;
    let outcome = archive.repair().map_err(|e| e.to_string())?;
    println!(
        "rebuilt {} device(s), repaired {} latent sector(s)",
        outcome.devices_rebuilt.len(),
        outcome.sectors_repaired.len()
    );
    Ok(())
}

fn cmd_extract(flags: &Flags) -> Result<(), String> {
    let archive = Archive::open(&dir_flag(flags)?).map_err(|e| e.to_string())?;
    let output = flags
        .get("output")
        .map(PathBuf::from)
        .ok_or_else(|| "--output is required".to_string())?;
    let payload = archive.extract().map_err(|e| e.to_string())?;
    std::fs::write(&output, &payload).map_err(|e| e.to_string())?;
    println!("extracted {} bytes to {}", payload.len(), output.display());
    Ok(())
}

fn cmd_corrupt(flags: &Flags) -> Result<(), String> {
    let archive = Archive::open(&dir_flag(flags)?).map_err(|e| e.to_string())?;
    let device = usize_flag(flags, "device", usize::MAX)?;
    if device == usize::MAX {
        return Err("--device is required".into());
    }
    if flags.contains_key("stripe") || flags.contains_key("sector") {
        let stripe = usize_flag(flags, "stripe", 0)?;
        let sector = usize_flag(flags, "sector", 0)?;
        let len = usize_flag(flags, "len", 1)?;
        archive
            .corrupt_sectors(device, stripe, sector, len)
            .map_err(|e| e.to_string())?;
        println!("corrupted {len} sector(s) in device {device}, stripe {stripe}");
    } else {
        archive.fail_device(device).map_err(|e| e.to_string())?;
        println!("removed chunk file for device {device}");
    }
    Ok(())
}
