//! `stair serve`: host a sharded stair-net storage service.
//!
//! ```text
//! stair serve --dir ROOT --addr HOST:PORT [--shards K] [--code SPEC]
//!             [--symbol S] [--stripes T] [--workers W] [--batch B]
//! ```
//!
//! An empty root is initialized with `K` fresh shards (`--code`,
//! `--symbol`, `--stripes` pick their shape); a root that already holds
//! shards is reopened, in which case `--shards` must match what is on
//! disk and the shape flags are ignored. Every failure — busy port, bad
//! root, mismatched shard count — is a clean error message and a
//! non-zero exit, never a panic.

use std::path::PathBuf;
use std::str::FromStr;

use stair_code::CodecSpec;
use stair_net::{Server, ServerConfig, ShardSet};
use stair_store::StoreOptions;

use crate::flags::{usize_flag, Flags};

/// Usage text for `stair serve`.
pub const SERVE_USAGE: &str = "usage:
  stair serve --dir ROOT --addr HOST:PORT [--shards K] [--code SPEC]
              [--symbol S] [--stripes T] [--workers W] [--batch B]
  (new roots are initialized with K shards of the given shape; existing
   roots are reopened and --shards must match)";

/// Runs `stair serve`, blocking until the server is shut down.
pub fn run(flags: &Flags) -> Result<(), String> {
    let dir = flags
        .get("dir")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
        .ok_or_else(|| format!("--dir is required\n{SERVE_USAGE}"))?;
    let addr = flags
        .get("addr")
        .filter(|v| !v.is_empty())
        .ok_or_else(|| format!("--addr is required\n{SERVE_USAGE}"))?;
    let shards = usize_flag(flags, "shards", 4)?;
    let code = match flags.get("code") {
        Some(spec) => CodecSpec::from_str(spec).map_err(|e| e.to_string())?,
        None => CodecSpec::Stair {
            n: 8,
            r: 16,
            m: 2,
            e: vec![1, 2],
        },
    };
    let opts = StoreOptions {
        code,
        symbol: usize_flag(flags, "symbol", 512)?,
        stripes: usize_flag(flags, "stripes", 64)?,
    };
    if dir.exists() && !dir.is_dir() {
        return Err(format!("{} exists and is not a directory", dir.display()));
    }
    let set = ShardSet::open_or_create(&dir, shards, &opts).map_err(|e| e.to_string())?;
    let config = ServerConfig {
        workers: usize_flag(flags, "workers", 4)?.max(1),
        write_batch: usize_flag(flags, "batch", 32)?.max(1),
        ..ServerConfig::default()
    };
    let server = Server::bind(addr, set, config).map_err(|e| e.to_string())?;
    let info = server.info();
    println!(
        "serving {} shard(s) of {} ({} bytes, {}-byte blocks) on {} with {} worker(s)",
        info.shards,
        info.codec,
        info.capacity,
        info.block_size,
        server.local_addr(),
        config.workers
    );
    // Tests and scripts parse the line above to learn the bound port;
    // make sure it is out before the accept loop blocks.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())
}
