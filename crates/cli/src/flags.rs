//! Shared flag-map helpers for every `stair` command module — one
//! parser per flag type, so error text and accepted syntax cannot
//! drift between subcommand families.

use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed command-line flags: `--key value` pairs; valueless flags map
/// to the empty string (see `parse` in `main.rs`).
pub type Flags = HashMap<String, String>;

/// An integer flag with a default.
pub fn usize_flag(flags: &Flags, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
    }
}

/// A byte-offset/length flag with a default.
pub fn u64_flag(flags: &Flags, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
    }
}

/// The mandatory `--dir` flag.
pub fn dir_flag(flags: &Flags) -> Result<PathBuf, String> {
    flags
        .get("dir")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
        .ok_or_else(|| "--dir is required".into())
}
