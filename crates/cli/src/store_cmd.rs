//! The `stair store` subcommand family: a CLI frontend for the
//! [`stair_store::StripeStore`] engine.
//!
//! ```text
//! stair store init   --dir DIR [--code SPEC] [--symbol S --stripes T]
//! stair store status --dir DIR
//! stair store write  --dir DIR --input FILE [--offset BYTES]
//! stair store read   --dir DIR --output FILE [--offset BYTES] [--len BYTES]
//! stair store fail   --dir DIR --device J [--stripe I --sector K --len L]
//! stair store scrub  --dir DIR [--threads T]
//! stair store repair --dir DIR [--threads T]
//! stair store inject --dir DIR --p-sec P [--seed S] [--burst B1,ALPHA]
//! ```
//!
//! `--code` takes a codec spec (`stair:n,r,m,e1-e2-...`, `sd:n,r,m,s`,
//! or `rs:n,r,m`), so one store engine benchmarks every code family the
//! paper compares. The legacy `--n/--r/--m/--e` flags still work and
//! build a STAIR spec.

use std::path::PathBuf;
use std::str::FromStr;

use stair_arraysim::FailureInjector;
use stair_code::CodecSpec;
use stair_reliability::BurstModel;
use stair_store::{StoreOptions, StripeStore};

use crate::flags::{dir_flag, u64_flag, usize_flag, Flags};

/// Usage text for the `store` family.
pub const STORE_USAGE: &str = "usage:
  stair store init   --dir DIR [--code SPEC] [--symbol S --stripes T]
                     (SPEC: stair:n,r,m,e1-e2-... | sd:n,r,m,s | rs:n,r,m;
                      legacy --n N --r R --m M --e E builds a stair spec)
  stair store status --dir DIR [--json]
  stair store write  --dir DIR --input FILE [--offset BYTES]
  stair store read   --dir DIR --output FILE [--offset BYTES] [--len BYTES]
  stair store fail   --dir DIR --device J [--stripe I --sector K --len L]
  stair store scrub  --dir DIR [--threads T]
  stair store repair --dir DIR [--threads T]
  stair store inject --dir DIR --p-sec P [--seed S] [--burst B1,ALPHA]";

/// Dispatches a `stair store <verb> ...` invocation.
pub fn run(verb: &str, flags: &Flags) -> Result<(), String> {
    match verb {
        "init" => cmd_init(flags),
        "status" => cmd_status(flags),
        "write" => cmd_write(flags),
        "read" => cmd_read(flags),
        "fail" => cmd_fail(flags),
        "scrub" => cmd_scrub(flags),
        "repair" => cmd_repair(flags),
        "inject" => cmd_inject(flags),
        _ => Err(format!("unknown store command `{verb}`\n{STORE_USAGE}")),
    }
}

fn open(flags: &Flags) -> Result<StripeStore, String> {
    StripeStore::open(&dir_flag(flags)?).map_err(|e| e.to_string())
}

/// The codec for `init`: `--code SPEC` wins; otherwise the legacy STAIR
/// flags (`--n/--r/--m/--e`) are assembled into a `stair:` spec.
fn code_flag(flags: &Flags) -> Result<CodecSpec, String> {
    if let Some(spec) = flags.get("code") {
        return CodecSpec::from_str(spec).map_err(|e| e.to_string());
    }
    let e = match flags.get("e") {
        None => vec![1, 2],
        Some(v) => v
            .split(',')
            .map(|x| {
                x.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad e entry `{x}`"))
            })
            .collect::<Result<_, _>>()?,
    };
    Ok(CodecSpec::Stair {
        n: usize_flag(flags, "n", 8)?,
        r: usize_flag(flags, "r", 16)?,
        m: usize_flag(flags, "m", 2)?,
        e,
    })
}

fn cmd_init(flags: &Flags) -> Result<(), String> {
    let opts = StoreOptions {
        code: code_flag(flags)?,
        symbol: usize_flag(flags, "symbol", 512)?,
        stripes: usize_flag(flags, "stripes", 64)?,
    };
    let dir = dir_flag(flags)?;
    let store = StripeStore::create(&dir, &opts).map_err(|e| e.to_string())?;
    println!(
        "initialized {} store at {}: {} stripes x {} blocks x {} bytes = {} bytes across {} devices",
        store.codec_spec(),
        dir.display(),
        store.stripe_count(),
        store.blocks_per_stripe(),
        store.block_size(),
        store.capacity(),
        store.geometry().n
    );
    Ok(())
}

fn cmd_status(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let status = store.status();
    if flags.contains_key("json") {
        print!(
            "{}",
            crate::status_json::store_status_json(&status).to_text()
        );
        return Ok(());
    }
    let geom = store.geometry();
    println!("codec {}", status.codec);
    println!(
        "  tolerance         : {} device(s) + {} sector(s) per stripe",
        geom.m, geom.s
    );
    println!("  storage efficiency: {:.4}", geom.storage_efficiency());
    println!("  capacity          : {} bytes", status.capacity);
    println!(
        "  geometry          : {} stripes x {} blocks x {} bytes",
        status.stripes, status.blocks_per_stripe, status.block_size
    );
    println!("  failed devices    : {:?}", status.failed_devices);
    println!("  rebuilding devices: {:?}", status.rebuilding_devices);
    println!("  known bad sectors : {}", status.known_bad_sectors);
    Ok(())
}

fn cmd_write(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let input = flags
        .get("input")
        .map(PathBuf::from)
        .ok_or_else(|| "--input is required".to_string())?;
    let offset = u64_flag(flags, "offset", 0)?;
    let data = std::fs::read(&input).map_err(|e| e.to_string())?;
    let report = store.write_at(offset, &data).map_err(|e| e.to_string())?;
    println!(
        "wrote {} bytes at offset {offset}: {} stripes ({} full re-encodes, {} delta updates patching {} parity sectors)",
        data.len(),
        report.stripes_touched,
        report.full_stripe_encodes,
        report.delta_updates,
        report.parity_sectors_patched
    );
    Ok(())
}

fn cmd_read(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let output = flags
        .get("output")
        .map(PathBuf::from)
        .ok_or_else(|| "--output is required".to_string())?;
    let offset = u64_flag(flags, "offset", 0)?;
    let default_len = store.capacity().saturating_sub(offset);
    let len = u64_flag(flags, "len", default_len)? as usize;
    let data = store.read_at(offset, len).map_err(|e| e.to_string())?;
    std::fs::write(&output, &data).map_err(|e| e.to_string())?;
    let status = store.status();
    let mode = if status.failed_devices.is_empty() && status.known_bad_sectors == 0 {
        "clean"
    } else {
        "degraded"
    };
    println!(
        "read {len} bytes at offset {offset} ({mode}) to {}",
        output.display()
    );
    Ok(())
}

fn cmd_fail(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let device = usize_flag(flags, "device", usize::MAX)?;
    if device == usize::MAX {
        return Err("--device is required".into());
    }
    if flags.contains_key("stripe") || flags.contains_key("sector") {
        let stripe = usize_flag(flags, "stripe", 0)?;
        let sector = usize_flag(flags, "sector", 0)?;
        let len = usize_flag(flags, "len", 1)?;
        store
            .corrupt_sectors(device, stripe, sector, len)
            .map_err(|e| e.to_string())?;
        println!("corrupted {len} sector(s) of device {device} in stripe {stripe} (latent until scrub/read)");
    } else {
        store.fail_device(device).map_err(|e| e.to_string())?;
        println!("failed device {device}: backing file removed");
    }
    Ok(())
}

fn cmd_scrub(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let threads = usize_flag(flags, "threads", 4)?;
    let report = store.scrub(threads).map_err(|e| e.to_string())?;
    println!(
        "scrubbed {} stripes, verified {} sectors: {} mismatches, {} unavailable device(s), {} stale record(s) cleared",
        report.stripes_scanned,
        report.sectors_verified,
        report.mismatches.len(),
        report.unavailable_devices.len(),
        report.records_cleared
    );
    if report.clean() {
        println!("store clean");
    } else {
        println!("run `stair store repair` to reconstruct");
    }
    Ok(())
}

fn cmd_repair(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let threads = usize_flag(flags, "threads", 4)?;
    let report = store.repair(threads).map_err(|e| e.to_string())?;
    println!(
        "replaced {} device(s), repaired {} stripe(s), rewrote {} sector(s)",
        report.devices_replaced.len(),
        report.stripes_repaired,
        report.sectors_rewritten
    );
    if report.complete() {
        println!("repair complete");
        Ok(())
    } else {
        Err(format!(
            "stripes beyond coverage (data lost): {:?}",
            report.unrecoverable_stripes
        ))
    }
}

fn cmd_inject(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let p_sec: f64 = flags
        .get("p-sec")
        .ok_or_else(|| "--p-sec is required".to_string())?
        .parse()
        .map_err(|_| "--p-sec expects a probability".to_string())?;
    let seed = u64_flag(flags, "seed", 42)?;
    let r = store.geometry().r;
    let mut injector = match flags.get("burst") {
        None => FailureInjector::independent(r, p_sec, seed),
        Some(spec) => {
            let (b1, alpha) = spec
                .split_once(',')
                .ok_or_else(|| "--burst expects B1,ALPHA".to_string())?;
            let b1: f64 = b1.trim().parse().map_err(|_| "bad B1".to_string())?;
            let alpha: f64 = alpha.trim().parse().map_err(|_| "bad ALPHA".to_string())?;
            FailureInjector::correlated(r, p_sec, BurstModel::from_pareto(b1, alpha, r), seed)
        }
    };
    let outcome = store
        .inject_failures(&mut injector)
        .map_err(|e| e.to_string())?;
    println!(
        "sampled {} chunks: corrupted {} sector(s) across {} chunk(s)",
        outcome.chunks_sampled, outcome.sectors_corrupted, outcome.chunks_hit
    );
    Ok(())
}
