//! The `stair store` subcommand family: a CLI frontend for the
//! [`stair_store::StripeStore`] engine.
//!
//! ```text
//! stair store init   --dir DIR [--code SPEC] [--symbol S --stripes T]
//! stair store status --dir DIR [--json]
//! stair store write  --dir DIR --input FILE [--offset BYTES]
//! stair store read   --dir DIR --output FILE [--offset BYTES] [--len BYTES]
//! stair store fail   --dir DIR --device J [--stripe I --sector K --len L]
//! stair store scrub  --dir DIR [--threads T] [--json]
//! stair store repair --dir DIR [--threads T] [--json]
//! stair store flush  --dir DIR
//! stair store recover --dir DIR [--json]
//! stair store inject --dir DIR --p-sec P [--seed S] [--burst B1,ALPHA]
//! ```
//!
//! `--code` takes a codec spec (`stair:n,r,m,e1-e2-...`, `sd:n,r,m,s`,
//! or `rs:n,r,m`), so one store engine benchmarks every code family the
//! paper compares. The legacy `--n/--r/--m/--e` flags still work and
//! build a STAIR spec.
//!
//! Only `init`, `inject`, and `recover` are store-specific; every
//! data-path verb is a thin alias for `stair dev … --dev file:DIR` (see
//! [`crate::device_cmd`]), so the local, sharded, and remote backends
//! share one implementation.
//!
//! `recover` is the operator's post-crash front door: opening the store
//! replays any journal tail left by an unclean shutdown, then a scrub
//! verifies every sector, then a clean close checkpoints the journal —
//! so a successful `recover` leaves the store provably consistent and
//! marked `clean_shutdown`.

use std::str::FromStr;

use stair_arraysim::FailureInjector;
use stair_code::CodecSpec;
use stair_device::DeviceSpec;
use stair_net::json::Json;
use stair_reliability::BurstModel;
use stair_store::{StoreOptions, StripeStore};

use crate::flags::{dir_flag, u64_flag, usize_flag, Flags};

/// Usage text for the `store` family.
pub const STORE_USAGE: &str = "usage:
  stair store init   --dir DIR [--code SPEC] [--symbol S --stripes T]
                     (SPEC: stair:n,r,m,e1-e2-... | sd:n,r,m,s | rs:n,r,m;
                      legacy --n N --r R --m M --e E builds a stair spec)
  stair store status --dir DIR [--json]
  stair store write  --dir DIR --input FILE [--offset BYTES]
  stair store read   --dir DIR --output FILE [--offset BYTES] [--len BYTES]
  stair store fail   --dir DIR --device J [--stripe I --sector K --len L]
  stair store scrub  --dir DIR [--threads T] [--json]
  stair store repair --dir DIR [--threads T] [--json]
  stair store flush  --dir DIR
  stair store recover --dir DIR [--json] [--threads T]
  stair store inject --dir DIR --p-sec P [--seed S] [--burst B1,ALPHA]";

/// Dispatches a `stair store <verb> ...` invocation.
pub fn run(verb: &str, flags: &Flags) -> Result<(), String> {
    match verb {
        "init" => cmd_init(flags),
        "inject" => cmd_inject(flags),
        "recover" => cmd_recover(flags),
        "status" | "read" | "write" | "fail" | "scrub" | "repair" | "flush" => {
            let spec = DeviceSpec::File {
                dir: dir_flag(flags)?,
            };
            crate::device_cmd::run_with_spec(verb, flags, &spec, "stair store")
        }
        _ => Err(format!("unknown store command `{verb}`\n{STORE_USAGE}")),
    }
}

fn open(flags: &Flags) -> Result<StripeStore, String> {
    StripeStore::open(&dir_flag(flags)?).map_err(|e| e.to_string())
}

/// The codec for `init`: `--code SPEC` wins; otherwise the legacy STAIR
/// flags (`--n/--r/--m/--e`) are assembled into a `stair:` spec.
fn code_flag(flags: &Flags) -> Result<CodecSpec, String> {
    if let Some(spec) = flags.get("code") {
        return CodecSpec::from_str(spec).map_err(|e| e.to_string());
    }
    let e = match flags.get("e") {
        None => vec![1, 2],
        Some(v) => v
            .split(',')
            .map(|x| {
                x.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad e entry `{x}`"))
            })
            .collect::<Result<_, _>>()?,
    };
    Ok(CodecSpec::Stair {
        n: usize_flag(flags, "n", 8)?,
        r: usize_flag(flags, "r", 16)?,
        m: usize_flag(flags, "m", 2)?,
        e,
    })
}

fn cmd_init(flags: &Flags) -> Result<(), String> {
    let opts = StoreOptions {
        code: code_flag(flags)?,
        symbol: usize_flag(flags, "symbol", 512)?,
        stripes: usize_flag(flags, "stripes", 64)?,
    };
    let dir = dir_flag(flags)?;
    let store = StripeStore::create(&dir, &opts).map_err(|e| e.to_string())?;
    println!(
        "initialized {} store at {}: {} stripes x {} blocks x {} bytes = {} bytes across {} devices",
        store.codec_spec(),
        dir.display(),
        store.stripe_count(),
        store.blocks_per_stripe(),
        store.block_size(),
        store.capacity(),
        store.geometry().n
    );
    Ok(())
}

/// `stair store recover`: open (replaying any journal tail a crash
/// left), scrub every sector, and close cleanly (checkpointing the
/// journal). Exits non-zero when the scrub still finds damage — then
/// the journal alone was not enough and `stair store repair` is needed.
fn cmd_recover(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let status = store.status();
    let threads = usize_flag(flags, "threads", 4)?;
    let outcome = store.scrub(threads).map_err(|e| e.to_string())?;
    // A clean close writes `clean_shutdown 1`; do it before reporting
    // so the verdict below describes the on-disk state we leave behind.
    drop(store);
    if flags.contains_key("json") {
        let json = Json::obj([
            ("op", Json::str("recover")),
            ("was_clean_shutdown", Json::Bool(status.clean_shutdown)),
            ("replayed_records", Json::int64(status.replayed_records)),
            (
                "scrub",
                Json::obj([
                    ("stripes_scanned", Json::int(outcome.stripes_scanned)),
                    ("sectors_verified", Json::int(outcome.sectors_verified)),
                    ("mismatches", Json::int(outcome.mismatches.len())),
                    (
                        "unavailable_devices",
                        Json::arr(outcome.unavailable_devices.iter().map(|&d| Json::int(d))),
                    ),
                    ("records_cleared", Json::int(outcome.records_cleared)),
                ]),
            ),
            ("clean", Json::Bool(outcome.clean())),
        ]);
        print!("{}", json.to_text());
    } else {
        if status.clean_shutdown {
            println!("previous shutdown was clean: nothing to replay");
        } else {
            println!(
                "unclean shutdown detected: replayed {} journal record(s)",
                status.replayed_records
            );
        }
        println!(
            "scrubbed {} stripes, verified {} sectors: {} mismatches, {} unavailable device(s)",
            outcome.stripes_scanned,
            outcome.sectors_verified,
            outcome.mismatches.len(),
            outcome.unavailable_devices.len()
        );
    }
    if outcome.clean() {
        if !flags.contains_key("json") {
            println!("store consistent; journal checkpointed");
        }
        Ok(())
    } else {
        Err("scrub found damage the journal could not cover: run `stair store repair`".into())
    }
}

fn cmd_inject(flags: &Flags) -> Result<(), String> {
    let store = open(flags)?;
    let p_sec: f64 = flags
        .get("p-sec")
        .ok_or_else(|| "--p-sec is required".to_string())?
        .parse()
        .map_err(|_| "--p-sec expects a probability".to_string())?;
    let seed = u64_flag(flags, "seed", 42)?;
    let r = store.geometry().r;
    let mut injector = match flags.get("burst") {
        None => FailureInjector::independent(r, p_sec, seed),
        Some(spec) => {
            let (b1, alpha) = spec
                .split_once(',')
                .ok_or_else(|| "--burst expects B1,ALPHA".to_string())?;
            let b1: f64 = b1.trim().parse().map_err(|_| "bad B1".to_string())?;
            let alpha: f64 = alpha.trim().parse().map_err(|_| "bad ALPHA".to_string())?;
            FailureInjector::correlated(r, p_sec, BurstModel::from_pareto(b1, alpha, r), seed)
        }
    };
    let outcome = store
        .inject_failures(&mut injector)
        .map_err(|e| e.to_string())?;
    println!(
        "sampled {} chunks: corrupted {} sector(s) across {} chunk(s)",
        outcome.chunks_sampled, outcome.sectors_corrupted, outcome.chunks_hit
    );
    Ok(())
}
