//! STAIR-coded file archives on disk: one chunk file per device plus a
//! manifest and a per-sector checksum table.

// Coordinate-indexed loops mirror the paper's (row, column) notation and
// stay symmetric with the write side; iterator adaptors would obscure that.
#![allow(clippy::needless_range_loop)]
use std::io;
use std::path::{Path, PathBuf};

use stair::{Config, StairCodec, Stripe};

use crate::checksum::fletcher32;
use crate::Manifest;

/// Encoding parameters for a new archive.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct EncodeOptions {
    /// Devices (chunk files).
    pub n: usize,
    /// Sectors per chunk per stripe.
    pub r: usize,
    /// Tolerated device failures.
    pub m: usize,
    /// Sector-failure coverage.
    pub e: Vec<usize>,
    /// Sector size in bytes.
    pub symbol: usize,
}

impl Default for EncodeOptions {
    /// `n = 8, r = 16, m = 2, e = (1, 2)`, 512-byte sectors — a RAID-6-like
    /// layout with burst protection.
    fn default() -> Self {
        EncodeOptions {
            n: 8,
            r: 16,
            m: 2,
            e: vec![1, 2],
            symbol: 512,
        }
    }
}

/// Outcome of a repair pass.
#[derive(Clone, Debug, Default, Eq, PartialEq)]
pub struct RepairOutcome {
    /// Chunk files that were missing and have been rebuilt.
    pub devices_rebuilt: Vec<usize>,
    /// `(stripe, device, sector)` triples repaired from checksum mismatches.
    pub sectors_repaired: Vec<(usize, usize, usize)>,
}

/// An opened archive directory.
#[derive(Debug)]
pub struct Archive {
    dir: PathBuf,
    manifest: Manifest,
}

impl Archive {
    /// Encodes `payload` into a fresh archive at `dir` (created if needed).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, and returns [`io::ErrorKind::InvalidInput`]
    /// for invalid STAIR parameters.
    pub fn encode_bytes(payload: &[u8], dir: &Path, opts: &EncodeOptions) -> io::Result<()> {
        let config = Config::new(opts.n, opts.r, opts.m, &opts.e).map_err(invalid)?;
        let codec: StairCodec = StairCodec::new(config.clone()).map_err(invalid)?;
        let per_stripe = config.data_symbols() * opts.symbol;
        let stripes = payload.len().div_ceil(per_stripe).max(1);
        let manifest = Manifest {
            n: opts.n,
            r: opts.r,
            m: opts.m,
            e: opts.e.clone(),
            symbol: opts.symbol,
            stripes,
            file_len: payload.len() as u64,
        };
        std::fs::create_dir_all(dir)?;

        // chunk_j.bin accumulates stripe after stripe; checksums.bin holds
        // one u32 per sector in (stripe, device, sector-row) order.
        let mut chunks: Vec<Vec<u8>> = vec![Vec::new(); opts.n];
        let mut sums: Vec<u8> = Vec::new();
        for s in 0..stripes {
            let mut stripe = Stripe::new(config.clone(), opts.symbol).map_err(invalid)?;
            let mut buf = vec![0u8; per_stripe];
            let start = s * per_stripe;
            if start < payload.len() {
                let end = (start + per_stripe).min(payload.len());
                buf[..end - start].copy_from_slice(&payload[start..end]);
            }
            stripe.write_data(&buf).map_err(invalid)?;
            codec.encode(&mut stripe).map_err(invalid)?;
            for device in 0..opts.n {
                for row in 0..opts.r {
                    let cell = stripe.cell(row, device);
                    chunks[device].extend_from_slice(cell);
                    sums.extend_from_slice(&fletcher32(cell).to_le_bytes());
                }
            }
        }
        for (device, data) in chunks.iter().enumerate() {
            std::fs::write(dir.join(chunk_name(device)), data)?;
        }
        std::fs::write(dir.join("checksums.bin"), &sums)?;
        manifest.save(dir)?;
        Ok(())
    }

    /// Encodes a file from disk.
    ///
    /// # Errors
    ///
    /// See [`Archive::encode_bytes`].
    pub fn encode_file(input: &Path, dir: &Path, opts: &EncodeOptions) -> io::Result<()> {
        let payload = std::fs::read(input)?;
        Self::encode_bytes(&payload, dir, opts)
    }

    /// Opens an existing archive.
    ///
    /// # Errors
    ///
    /// Propagates manifest I/O and parse errors.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let manifest = Manifest::load(dir)?;
        Ok(Archive {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The archive's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Scans chunk files against the checksum table. Returns, per stripe,
    /// the erased `(row, device)` coordinates (whole missing devices plus
    /// checksum mismatches).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (missing chunk files are damage, not errors).
    pub fn scan_damage(&self) -> io::Result<Vec<Vec<(usize, usize)>>> {
        let m = &self.manifest;
        let sums = std::fs::read(self.dir.join("checksums.bin"))?;
        let chunk_data: Vec<Option<Vec<u8>>> = (0..m.n)
            .map(|d| std::fs::read(self.dir.join(chunk_name(d))).ok())
            .collect();
        let mut damage = vec![Vec::new(); m.stripes];
        for s in 0..m.stripes {
            for (d, chunk) in chunk_data.iter().enumerate() {
                for row in 0..m.r {
                    let sum_idx = ((s * m.n + d) * m.r + row) * 4;
                    let want =
                        u32::from_le_bytes(sums[sum_idx..sum_idx + 4].try_into().expect("4 bytes"));
                    let ok = chunk.as_ref().is_some_and(|data| {
                        let off = (s * m.r + row) * m.symbol;
                        data.len() >= off + m.symbol
                            && fletcher32(&data[off..off + m.symbol]) == want
                    });
                    if !ok {
                        damage[s].push((row, d));
                    }
                }
            }
        }
        Ok(damage)
    }

    /// Verifies the archive; `Ok(count)` is the number of damaged sectors.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn verify(&self) -> io::Result<usize> {
        Ok(self.scan_damage()?.iter().map(Vec::len).sum())
    }

    /// Repairs all detected damage in place, rewriting chunk files.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] if some stripe's damage
    /// exceeds the code's coverage.
    pub fn repair(&self) -> io::Result<RepairOutcome> {
        let m = &self.manifest;
        let config = Config::new(m.n, m.r, m.m, &m.e).map_err(invalid)?;
        let codec: StairCodec = StairCodec::new(config.clone()).map_err(invalid)?;
        let damage = self.scan_damage()?;
        let mut chunk_data: Vec<Vec<u8>> = (0..m.n)
            .map(|d| {
                std::fs::read(self.dir.join(chunk_name(d)))
                    .unwrap_or_else(|_| vec![0u8; m.stripes * m.r * m.symbol])
            })
            .collect();
        let missing: Vec<usize> = (0..m.n)
            .filter(|&d| !self.dir.join(chunk_name(d)).exists())
            .collect();

        let mut outcome = RepairOutcome {
            devices_rebuilt: missing.clone(),
            ..Default::default()
        };
        for (s, erased) in damage.iter().enumerate() {
            if erased.is_empty() {
                continue;
            }
            let mut stripe = Stripe::new(config.clone(), m.symbol).map_err(invalid)?;
            for d in 0..m.n {
                for row in 0..m.r {
                    let off = (s * m.r + row) * m.symbol;
                    stripe
                        .cell_mut(row, d)
                        .copy_from_slice(&chunk_data[d][off..off + m.symbol]);
                }
            }
            codec.decode(&mut stripe, erased).map_err(invalid)?;
            for &(row, d) in erased {
                let off = (s * m.r + row) * m.symbol;
                chunk_data[d][off..off + m.symbol].copy_from_slice(stripe.cell(row, d));
                if !missing.contains(&d) {
                    outcome.sectors_repaired.push((s, d, row));
                }
            }
        }
        for (d, data) in chunk_data.iter().enumerate() {
            std::fs::write(self.dir.join(chunk_name(d)), data)?;
        }
        Ok(outcome)
    }

    /// Extracts the original payload, verifying checksums first and
    /// repairing transparently if needed.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on unrecoverable damage.
    pub fn extract(&self) -> io::Result<Vec<u8>> {
        if self.verify()? > 0 {
            self.repair()?;
        }
        let m = &self.manifest;
        let config = Config::new(m.n, m.r, m.m, &m.e).map_err(invalid)?;
        let chunk_data: Vec<Vec<u8>> = (0..m.n)
            .map(|d| std::fs::read(self.dir.join(chunk_name(d))))
            .collect::<io::Result<_>>()?;
        let mut payload = Vec::with_capacity(m.file_len as usize);
        for s in 0..m.stripes {
            let mut stripe = Stripe::new(config.clone(), m.symbol).map_err(invalid)?;
            for d in 0..m.n {
                for row in 0..m.r {
                    let off = (s * m.r + row) * m.symbol;
                    stripe
                        .cell_mut(row, d)
                        .copy_from_slice(&chunk_data[d][off..off + m.symbol]);
                }
            }
            payload.extend_from_slice(&stripe.read_data().map_err(invalid)?);
        }
        payload.truncate(m.file_len as usize);
        Ok(payload)
    }

    /// Deletes a chunk file (simulated device failure).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn fail_device(&self, device: usize) -> io::Result<()> {
        std::fs::remove_file(self.dir.join(chunk_name(device)))
    }

    /// Flips bits in `len` contiguous sectors of one chunk (simulated
    /// latent-error burst) in stripe `stripe` starting at sector `row`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; out-of-range coordinates are
    /// [`io::ErrorKind::InvalidInput`].
    pub fn corrupt_sectors(
        &self,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> io::Result<()> {
        let m = &self.manifest;
        if device >= m.n || stripe >= m.stripes || row >= m.r {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "coordinates out of range",
            ));
        }
        let path = self.dir.join(chunk_name(device));
        let mut data = std::fs::read(&path)?;
        for k in row..(row + len).min(m.r) {
            let off = (stripe * m.r + k) * m.symbol;
            for b in &mut data[off..off + m.symbol] {
                *b ^= 0xFF;
            }
        }
        std::fs::write(&path, data)
    }
}

fn chunk_name(device: usize) -> String {
    format!("chunk_{device:02}.bin")
}

fn invalid<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stair-cli-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn encode_extract_round_trip() {
        let dir = tmp("roundtrip");
        let data = payload(200_000);
        Archive::encode_bytes(&data, &dir, &EncodeOptions::default()).unwrap();
        let a = Archive::open(&dir).unwrap();
        assert_eq!(a.verify().unwrap(), 0);
        assert_eq!(a.extract().unwrap(), data);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn survives_device_loss_and_bursts() {
        let dir = tmp("repair");
        let data = payload(300_000);
        Archive::encode_bytes(&data, &dir, &EncodeOptions::default()).unwrap();
        let a = Archive::open(&dir).unwrap();
        a.fail_device(1).unwrap();
        a.fail_device(5).unwrap();
        a.corrupt_sectors(3, 0, 10, 2).unwrap(); // burst of 2 (≤ e_max)
        a.corrupt_sectors(7, 2, 4, 1).unwrap();
        let damaged = a.verify().unwrap();
        assert!(damaged > 0);
        let outcome = a.repair().unwrap();
        assert_eq!(outcome.devices_rebuilt, vec![1, 5]);
        assert_eq!(outcome.sectors_repaired.len(), 3);
        assert_eq!(a.verify().unwrap(), 0);
        assert_eq!(a.extract().unwrap(), data);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_beyond_coverage_is_reported() {
        let dir = tmp("loss");
        Archive::encode_bytes(&payload(50_000), &dir, &EncodeOptions::default()).unwrap();
        let a = Archive::open(&dir).unwrap();
        a.fail_device(0).unwrap();
        a.fail_device(1).unwrap();
        a.fail_device(2).unwrap(); // three failures > m = 2 + coverage
        assert!(a.repair().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn extract_transparently_repairs() {
        let dir = tmp("transparent");
        let data = payload(120_000);
        Archive::encode_bytes(&data, &dir, &EncodeOptions::default()).unwrap();
        let a = Archive::open(&dir).unwrap();
        a.corrupt_sectors(2, 1, 0, 1).unwrap();
        assert_eq!(a.extract().unwrap(), data);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payload_still_archives() {
        let dir = tmp("empty");
        Archive::encode_bytes(&[], &dir, &EncodeOptions::default()).unwrap();
        let a = Archive::open(&dir).unwrap();
        assert_eq!(a.extract().unwrap(), Vec::<u8>::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
