//! The plain-text archive manifest (`manifest.txt`): enough metadata to
//! reopen and repair an archive with no external dependencies.

use std::fmt;
use std::io;
use std::path::Path;

/// Archive metadata.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Manifest {
    /// Devices (chunk files).
    pub n: usize,
    /// Sectors per chunk per stripe.
    pub r: usize,
    /// Tolerated device failures.
    pub m: usize,
    /// Sector-failure coverage vector.
    pub e: Vec<usize>,
    /// Sector size in bytes.
    pub symbol: usize,
    /// Number of stripes.
    pub stripes: usize,
    /// Original file length in bytes (payload is zero-padded to stripe
    /// boundaries).
    pub file_len: u64,
}

impl fmt::Display for Manifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "format=stair-archive-v1")?;
        writeln!(f, "n={}", self.n)?;
        writeln!(f, "r={}", self.r)?;
        writeln!(f, "m={}", self.m)?;
        let e: Vec<String> = self.e.iter().map(usize::to_string).collect();
        writeln!(f, "e={}", e.join(","))?;
        writeln!(f, "symbol={}", self.symbol)?;
        writeln!(f, "stripes={}", self.stripes)?;
        writeln!(f, "file_len={}", self.file_len)
    }
}

impl Manifest {
    /// Writes `manifest.txt` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        std::fs::write(dir.join("manifest.txt"), self.to_string())
    }

    /// Loads `manifest.txt` from `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] for malformed manifests, and
    /// propagates I/O errors.
    pub fn load(dir: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(dir.join("manifest.txt"))?;
        Self::parse(&text)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed manifest"))
    }

    /// Parses the manifest text format.
    pub fn parse(text: &str) -> Option<Self> {
        let mut n = None;
        let mut r = None;
        let mut m = None;
        let mut e: Option<Vec<usize>> = None;
        let mut symbol = None;
        let mut stripes = None;
        let mut file_len = None;
        let mut format_ok = false;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=')?;
            match key {
                "format" => format_ok = value == "stair-archive-v1",
                "n" => n = value.parse().ok(),
                "r" => r = value.parse().ok(),
                "m" => m = value.parse().ok(),
                "e" => {
                    e = value
                        .split(',')
                        .map(|v| v.trim().parse::<usize>().ok())
                        .collect::<Option<Vec<_>>>()
                }
                "symbol" => symbol = value.parse().ok(),
                "stripes" => stripes = value.parse().ok(),
                "file_len" => file_len = value.parse().ok(),
                _ => return None,
            }
        }
        if !format_ok {
            return None;
        }
        Some(Manifest {
            n: n?,
            r: r?,
            m: m?,
            e: e?,
            symbol: symbol?,
            stripes: stripes?,
            file_len: file_len?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Manifest {
            n: 8,
            r: 16,
            m: 2,
            e: vec![1, 2],
            symbol: 512,
            stripes: 7,
            file_len: 123_456,
        };
        assert_eq!(Manifest::parse(&m.to_string()), Some(m));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Manifest::parse("hello"), None);
        assert_eq!(Manifest::parse("format=other\nn=8"), None);
        assert_eq!(Manifest::parse("format=stair-archive-v1\nn=8"), None);
    }
}
