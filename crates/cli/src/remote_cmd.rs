//! The `stair remote` subcommand family: drive a running stair-net
//! server over TCP.
//!
//! ```text
//! stair remote status   --addr A [--json]
//! stair remote read     --addr A --output FILE [--offset N] [--len N]
//! stair remote write    --addr A --input FILE [--offset N]
//! stair remote fail     --addr A --shard S --device J [--stripe I --sector K --len L]
//! stair remote scrub    --addr A [--threads T]
//! stair remote repair   --addr A [--threads T]
//! stair remote flush    --addr A
//! stair remote shutdown --addr A
//! ```

use std::path::PathBuf;

use stair_net::Client;

use crate::flags::{u64_flag, usize_flag, Flags};
use crate::status_json;

/// Usage text for the `remote` family.
pub const REMOTE_USAGE: &str = "usage:
  stair remote status   --addr HOST:PORT [--json]
  stair remote read     --addr HOST:PORT --output FILE [--offset BYTES] [--len BYTES]
  stair remote write    --addr HOST:PORT --input FILE [--offset BYTES]
  stair remote fail     --addr HOST:PORT --shard S --device J [--stripe I --sector K --len L]
  stair remote scrub    --addr HOST:PORT [--threads T]
  stair remote repair   --addr HOST:PORT [--threads T]
  stair remote flush    --addr HOST:PORT
  stair remote shutdown --addr HOST:PORT";

/// Dispatches a `stair remote <verb> ...` invocation.
pub fn run(verb: &str, flags: &Flags) -> Result<(), String> {
    let mut client = connect(flags)?;
    match verb {
        "status" => cmd_status(&mut client, flags),
        "read" => cmd_read(&mut client, flags),
        "write" => cmd_write(&mut client, flags),
        "fail" => cmd_fail(&mut client, flags),
        "scrub" => cmd_scrub(&mut client, flags),
        "repair" => cmd_repair(&mut client, flags),
        "flush" => client.flush().map_err(|e| e.to_string()).map(|()| {
            println!("flushed");
        }),
        "shutdown" => client
            .shutdown_server()
            .map_err(|e| e.to_string())
            .map(|()| {
                println!("server shutting down");
            }),
        _ => Err(format!("unknown remote command `{verb}`\n{REMOTE_USAGE}")),
    }
}

fn connect(flags: &Flags) -> Result<Client, String> {
    let addr = flags
        .get("addr")
        .filter(|v| !v.is_empty())
        .ok_or_else(|| format!("--addr is required\n{REMOTE_USAGE}"))?;
    Client::connect(addr).map_err(|e| e.to_string())
}

fn cmd_status(client: &mut Client, flags: &Flags) -> Result<(), String> {
    let statuses = client.status().map_err(|e| e.to_string())?;
    if flags.contains_key("json") {
        print!("{}", status_json::shard_statuses_json(&statuses).to_text());
        return Ok(());
    }
    let info = client.info().clone();
    println!(
        "{} shard(s) of {} on the wire protocol v{}",
        info.shards, info.codec, info.version
    );
    println!(
        "  total capacity    : {} bytes ({}-byte blocks, {}-block placement ranges)",
        info.capacity, info.block_size, info.range_blocks
    );
    for (i, s) in statuses.iter().enumerate() {
        println!(
            "  shard {i}: failed {:?}, rebuilding {:?}, {} known bad sector(s)",
            s.failed_devices, s.rebuilding_devices, s.known_bad_sectors
        );
    }
    Ok(())
}

fn cmd_read(client: &mut Client, flags: &Flags) -> Result<(), String> {
    let output = flags
        .get("output")
        .map(PathBuf::from)
        .ok_or_else(|| "--output is required".to_string())?;
    let offset = u64_flag(flags, "offset", 0)?;
    let default_len = client.capacity().saturating_sub(offset);
    let len = u64_flag(flags, "len", default_len)? as usize;
    let data = client.read_at(offset, len).map_err(|e| e.to_string())?;
    std::fs::write(&output, &data).map_err(|e| e.to_string())?;
    println!(
        "read {len} bytes at offset {offset} (checksum-verified) to {}",
        output.display()
    );
    Ok(())
}

fn cmd_write(client: &mut Client, flags: &Flags) -> Result<(), String> {
    let input = flags
        .get("input")
        .map(PathBuf::from)
        .ok_or_else(|| "--input is required".to_string())?;
    let offset = u64_flag(flags, "offset", 0)?;
    let data = std::fs::read(&input).map_err(|e| e.to_string())?;
    let report = client.write_at(offset, &data).map_err(|e| e.to_string())?;
    println!(
        "wrote {} bytes at offset {offset}: {} stripes touched ({} full re-encodes, {} delta updates)",
        report.bytes, report.stripes_touched, report.full_stripe_encodes, report.delta_updates
    );
    Ok(())
}

fn cmd_fail(client: &mut Client, flags: &Flags) -> Result<(), String> {
    let shard = usize_flag(flags, "shard", usize::MAX)?;
    let device = usize_flag(flags, "device", usize::MAX)?;
    if shard == usize::MAX || device == usize::MAX {
        return Err("--shard and --device are required".into());
    }
    if flags.contains_key("stripe") || flags.contains_key("sector") {
        let stripe = usize_flag(flags, "stripe", 0)?;
        let sector = usize_flag(flags, "sector", 0)?;
        let len = usize_flag(flags, "len", 1)?;
        client
            .corrupt_sectors(shard, device, stripe, sector, len)
            .map_err(|e| e.to_string())?;
        println!(
            "corrupted {len} sector(s) of shard {shard} device {device} in stripe {stripe} (latent until scrub/read)"
        );
    } else {
        client
            .fail_device(shard, device)
            .map_err(|e| e.to_string())?;
        println!("failed shard {shard} device {device}: backing file removed");
    }
    Ok(())
}

fn cmd_scrub(client: &mut Client, flags: &Flags) -> Result<(), String> {
    let threads = usize_flag(flags, "threads", 4)?;
    let report = client.scrub(threads).map_err(|e| e.to_string())?;
    println!(
        "scrubbed {} stripes, verified {} sectors: {} mismatches, {} unavailable device(s), {} stale record(s) cleared",
        report.stripes_scanned,
        report.sectors_verified,
        report.mismatches,
        report.unavailable_devices,
        report.records_cleared
    );
    if report.clean() {
        println!("all shards clean");
    } else {
        println!("run `stair remote repair` to reconstruct");
    }
    Ok(())
}

fn cmd_repair(client: &mut Client, flags: &Flags) -> Result<(), String> {
    let threads = usize_flag(flags, "threads", 4)?;
    let report = client.repair(threads).map_err(|e| e.to_string())?;
    println!(
        "replaced {} device(s), repaired {} stripe(s), rewrote {} sector(s)",
        report.devices_replaced, report.stripes_repaired, report.sectors_rewritten
    );
    if report.complete() {
        println!("repair complete");
        Ok(())
    } else {
        Err(format!(
            "{} stripe(s) beyond coverage (data lost)",
            report.unrecoverable_stripes
        ))
    }
}
