//! The `stair remote` subcommand family: drive a running stair-net
//! server over TCP.
//!
//! ```text
//! stair remote status   --addr A [--json]
//! stair remote read     --addr A --output FILE [--offset N] [--len N]
//! stair remote write    --addr A --input FILE [--offset N]
//! stair remote fail     --addr A --shard S --device J [--stripe I --sector K --len L]
//! stair remote scrub    --addr A [--threads T] [--json]
//! stair remote repair   --addr A [--threads T] [--json]
//! stair remote flush    --addr A
//! stair remote shutdown --addr A
//! ```
//!
//! Only `shutdown` is remote-specific (it is a protocol verb, not a
//! device operation); everything else is a thin alias for
//! `stair dev … --dev tcp:ADDR` (see [`crate::device_cmd`]), so the
//! remote data path is the same code that serves local stores.

use stair_device::DeviceSpec;
use stair_net::Client;

use crate::flags::Flags;

/// Usage text for the `remote` family.
pub const REMOTE_USAGE: &str = "usage:
  stair remote status   --addr HOST:PORT [--json]
  stair remote read     --addr HOST:PORT --output FILE [--offset BYTES] [--len BYTES]
  stair remote write    --addr HOST:PORT --input FILE [--offset BYTES]
  stair remote fail     --addr HOST:PORT --shard S --device J [--stripe I --sector K --len L]
  stair remote scrub    --addr HOST:PORT [--threads T] [--json]
  stair remote repair   --addr HOST:PORT [--threads T] [--json]
  stair remote flush    --addr HOST:PORT
  stair remote metrics  --addr HOST:PORT [--json]
  stair remote trace    --addr HOST:PORT [--json] [--from SCRIPT]
  stair remote shutdown --addr HOST:PORT";

/// Dispatches a `stair remote <verb> ...` invocation.
pub fn run(verb: &str, flags: &Flags) -> Result<(), String> {
    let addr = addr_flag(flags)?;
    match verb {
        "shutdown" => {
            let client = Client::connect(&addr).map_err(|e| e.to_string())?;
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("server shutting down");
            Ok(())
        }
        "status" | "read" | "write" | "fail" | "scrub" | "repair" | "flush" | "metrics"
        | "trace" => {
            // Remote fail requires an explicit shard (a server always
            // has one or more; defaulting silently would be a footgun).
            if verb == "fail" && !flags.contains_key("shard") {
                return Err("--shard and --device are required".into());
            }
            let spec = DeviceSpec::Tcp { addr, lanes: 1 };
            crate::device_cmd::run_with_spec(verb, flags, &spec, "stair remote")
        }
        _ => Err(format!("unknown remote command `{verb}`\n{REMOTE_USAGE}")),
    }
}

fn addr_flag(flags: &Flags) -> Result<String, String> {
    flags
        .get("addr")
        .filter(|v| !v.is_empty())
        .cloned()
        .ok_or_else(|| format!("--addr is required\n{REMOTE_USAGE}"))
}
