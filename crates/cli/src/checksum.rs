//! Sector checksums for damage detection. The implementation lives in
//! [`stair_store::checksum`] so the store engine and the archive tool share
//! one definition; this module re-exports it under the historical path.

pub use stair_store::checksum::fletcher32;
