//! The `stair dev` subcommand family — and the single data path behind
//! `stair store` and `stair remote`.
//!
//! ```text
//! stair dev status --dev SPEC [--json]
//! stair dev read   --dev SPEC --output FILE [--offset BYTES] [--len BYTES]
//! stair dev write  --dev SPEC --input FILE [--offset BYTES]
//! stair dev batch  --dev SPEC --from SCRIPT
//! stair dev fail   --dev SPEC --device J [--shard S] [--stripe I --sector K --len L]
//! stair dev scrub  --dev SPEC [--threads T] [--json]
//! stair dev repair --dev SPEC [--threads T] [--json]
//! stair dev flush  --dev SPEC
//! ```
//!
//! `batch` replays an **op-script** — one op per line, `#` comments and
//! blank lines ignored:
//!
//! ```text
//! # read  <offset> <len>
//! # write <offset> <hex-bytes>
//! write 0 deadbeef
//! read  0 4
//! ```
//!
//! The whole script is submitted as one `IoBatch` through
//! `BlockDevice::submit`, so it costs one stripe lock and one codec
//! decision per touched stripe locally, and one request frame per
//! shard over the wire. Results print as one JSON object whose shape
//! is identical across backends.
//!
//! `SPEC` is a `stair_device::DeviceSpec`: `file:<dir>`,
//! `shards:<root>[?n=K]`, or `tcp:<host:port>[?lanes=L]`. The legacy
//! `stair store …` / `stair remote …` verbs are thin aliases that build
//! the spec from `--dir` / `--addr` and land here, so every backend
//! runs the identical code and prints the identical output.

use std::path::PathBuf;
use std::str::FromStr;

use stair_device::{BatchResult, BlockDevice, DeviceSpec, Instrumented, IoBatch, IoOp, OpResult};
use stair_net::json::Json;
use stair_net::{open_admin, open_device, Client, WireTrace};

use crate::flags::{u64_flag, usize_flag, Flags};
use crate::status_json;

/// Usage text for the `dev` family.
pub const DEV_USAGE: &str = "usage:
  stair dev status --dev SPEC [--json]
  stair dev read   --dev SPEC --output FILE [--offset BYTES] [--len BYTES]
  stair dev write  --dev SPEC --input FILE [--offset BYTES]
  stair dev batch  --dev SPEC --from SCRIPT
  stair dev fail   --dev SPEC --device J [--shard S] [--stripe I --sector K --len L]
  stair dev scrub  --dev SPEC [--threads T] [--json]
  stair dev repair --dev SPEC [--threads T] [--json]
  stair dev flush  --dev SPEC
  stair dev metrics --dev SPEC [--json] [--from SCRIPT]
  stair dev trace   --dev SPEC [--json] [--from SCRIPT]
  (SPEC: file:<dir> | shards:<root>[?n=K] | tcp:<host:port>[?lanes=L]
         | cache:<inner>[?mb=M&wb=on|off&interval_ms=T])
  (SCRIPT lines: `read <offset> <len>` | `write <offset> <hex-bytes>`;
   `#` comments and blank lines ignored; results print as JSON)
  (metrics --from replays a SCRIPT through the instrumented device
   first, so per-op latency histograms are populated)
  (trace enables request tracing, replays the SCRIPT if given, then
   prints this process's flight recorder — and the server's, pulled
   over TRACE, when SPEC is tcp:)";

/// Dispatches a `stair dev <verb> ...` invocation.
pub fn run(verb: &str, flags: &Flags) -> Result<(), String> {
    let spec = flags
        .get("dev")
        .filter(|v| !v.is_empty())
        .ok_or_else(|| format!("--dev is required\n{DEV_USAGE}"))?;
    let spec = DeviceSpec::from_str(spec).map_err(|e| e.to_string())?;
    run_with_spec(verb, flags, &spec, "stair dev")
}

/// Runs one verb against the backend `spec` names. `family` is the
/// command prefix used in follow-up hints (`"stair store"`,
/// `"stair remote"`, or `"stair dev"`), so aliases keep suggesting
/// commands in the caller's own dialect.
pub fn run_with_spec(
    verb: &str,
    flags: &Flags,
    spec: &DeviceSpec,
    family: &str,
) -> Result<(), String> {
    match verb {
        "status" => cmd_status(flags, spec),
        "read" => cmd_read(flags, spec),
        "write" => cmd_write(flags, spec),
        "batch" => cmd_batch(flags, spec),
        "fail" => cmd_fail(flags, spec),
        "scrub" => cmd_scrub(flags, spec, family),
        "repair" => cmd_repair(flags, spec),
        "flush" => cmd_flush(spec),
        "metrics" => cmd_metrics(flags, spec),
        "trace" => cmd_trace(flags, spec),
        _ => Err(format!("unknown {family} command `{verb}`\n{DEV_USAGE}")),
    }
}

fn open(spec: &DeviceSpec) -> Result<Box<dyn BlockDevice>, String> {
    open_device(spec).map_err(|e| e.to_string())
}

fn cmd_status(flags: &Flags, spec: &DeviceSpec) -> Result<(), String> {
    let dev = open(spec)?;
    let status = dev.status().map_err(|e| e.to_string())?;
    if flags.contains_key("json") {
        print!("{}", status_json::device_status_json(&status).to_text());
        return Ok(());
    }
    // `DeviceStatus.shards` is never empty (the open registry and the
    // wire-status path both enforce it); guard anyway so a future
    // backend bug degrades to an error, not a panic.
    let first = status
        .shards
        .first()
        .ok_or_else(|| "device reported no shards".to_string())?;
    println!("codec {}", first.codec);
    println!("  backend           : {}", status.backend);
    println!(
        "  tolerance         : {} device(s) + {} sector(s) per stripe",
        first.device_tolerance, first.sector_tolerance
    );
    if let Some(efficiency) = storage_efficiency(first) {
        println!("  storage efficiency: {efficiency:.4}");
    }
    println!("  capacity          : {} bytes", status.capacity);
    println!(
        "  geometry          : {} shard(s) x {} stripes x {} blocks x {} bytes",
        status.shards.len(),
        first.stripes,
        first.blocks_per_stripe,
        first.block_size
    );
    if status.shards.len() == 1 {
        println!("  failed devices    : {:?}", first.failed_devices);
        println!("  rebuilding devices: {:?}", first.rebuilding_devices);
        println!("  known bad sectors : {}", first.known_bad_sectors);
        println!(
            "  last shutdown     : {}",
            shutdown_summary(first.clean_shutdown, first.replayed_records)
        );
    } else {
        for (i, s) in status.shards.iter().enumerate() {
            println!(
                "  shard {i}: failed {:?}, rebuilding {:?}, {} known bad sector(s), {}",
                s.failed_devices,
                s.rebuilding_devices,
                s.known_bad_sectors,
                shutdown_summary(s.clean_shutdown, s.replayed_records)
            );
        }
    }
    Ok(())
}

/// One-line journal verdict for the human status view: clean close,
/// or the crash recovery the open performed.
fn shutdown_summary(clean: bool, replayed: u64) -> String {
    if clean {
        "clean (journal checkpointed)".to_string()
    } else {
        format!("unclean (replayed {replayed} journal record(s))")
    }
}

/// Data fraction from the codec spec (`data blocks / (n·r)`); `None`
/// when the codec string does not parse (possible over the wire from a
/// newer peer).
fn storage_efficiency(shard: &stair_device::ShardHealth) -> Option<f64> {
    let spec = stair_code::CodecSpec::from_str(&shard.codec).ok()?;
    let total = (spec.n() * spec.r()) as f64;
    (total > 0.0).then(|| shard.blocks_per_stripe as f64 / total)
}

fn cmd_read(flags: &Flags, spec: &DeviceSpec) -> Result<(), String> {
    let dev = open(spec)?;
    let output = flags
        .get("output")
        .map(PathBuf::from)
        .ok_or_else(|| "--output is required".to_string())?;
    let offset = u64_flag(flags, "offset", 0)?;
    let default_len = dev.capacity().saturating_sub(offset);
    let len = u64_flag(flags, "len", default_len)? as usize;
    let data = dev.read_at(offset, len).map_err(|e| e.to_string())?;
    std::fs::write(&output, &data).map_err(|e| e.to_string())?;
    let mode = match dev.status() {
        Ok(status) if status.healthy() => "clean",
        Ok(_) => "degraded",
        // A status failure after a verified read is not worth failing
        // the read for.
        Err(_) => "verified",
    };
    println!(
        "read {len} bytes at offset {offset} ({mode}) to {}",
        output.display()
    );
    Ok(())
}

fn cmd_write(flags: &Flags, spec: &DeviceSpec) -> Result<(), String> {
    let dev = open(spec)?;
    let input = flags
        .get("input")
        .map(PathBuf::from)
        .ok_or_else(|| "--input is required".to_string())?;
    let offset = u64_flag(flags, "offset", 0)?;
    let data = std::fs::read(&input).map_err(|e| e.to_string())?;
    let outcome = dev.write_at(offset, &data).map_err(|e| e.to_string())?;
    println!(
        "wrote {} bytes at offset {offset}: {} stripes touched ({} full re-encodes, {} delta updates)",
        outcome.bytes, outcome.stripes_touched, outcome.full_stripe_encodes, outcome.delta_updates
    );
    Ok(())
}

fn cmd_batch(flags: &Flags, spec: &DeviceSpec) -> Result<(), String> {
    let from = flags
        .get("from")
        .filter(|v| !v.is_empty())
        .ok_or_else(|| format!("--from is required\n{DEV_USAGE}"))?;
    let text =
        std::fs::read_to_string(from).map_err(|e| format!("cannot read op-script {from}: {e}"))?;
    let batch = parse_op_script(&text)?;
    let dev = open(spec)?;
    let result = dev.submit(&batch).map_err(|e| e.to_string())?;
    print!("{}", batch_json(&batch, &result).to_text());
    Ok(())
}

/// Parses the op-script grammar: one `read <offset> <len>` or
/// `write <offset> <hex-bytes>` per line; `#` comments and blank lines
/// are skipped. Errors carry the 1-based line number.
fn parse_op_script(text: &str) -> Result<IoBatch, String> {
    let mut batch = IoBatch::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |what: &str| format!("op-script line {}: {what}", lineno + 1);
        let mut words = line.split_whitespace();
        let (verb, offset, arg) = (words.next(), words.next(), words.next());
        if words.next().is_some() {
            return Err(at("expected exactly `<verb> <offset> <arg>`"));
        }
        let (Some(verb), Some(offset), Some(arg)) = (verb, offset, arg) else {
            return Err(at(
                "expected `read <offset> <len>` or `write <offset> <hex>`",
            ));
        };
        let offset: u64 = offset
            .parse()
            .map_err(|_| at(&format!("bad offset `{offset}`")))?;
        match verb {
            "read" => {
                let len: usize = arg
                    .parse()
                    .map_err(|_| at(&format!("bad length `{arg}`")))?;
                batch.read(offset, len);
            }
            "write" => {
                batch.write(offset, from_hex(arg).map_err(|e| at(&e))?);
            }
            other => return Err(at(&format!("unknown op `{other}`"))),
        }
    }
    Ok(batch)
}

fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("hex data `{s}` has odd length"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| format!("bad hex byte `{}`", &s[i..i + 2]))
        })
        .collect()
}

fn to_hex(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

/// Renders a batch's results as one JSON object — the identical shape
/// for every backend, so CI can diff `file:` against `tcp:` replays.
fn batch_json(batch: &IoBatch, result: &BatchResult) -> Json {
    let per_op = batch.ops().iter().zip(&result.results).map(|(op, r)| {
        match (op, r) {
            (IoOp::Read { offset, len }, OpResult::Read(data)) => Json::obj([
                ("op", Json::str("read")),
                ("offset", Json::int64(*offset)),
                ("len", Json::int(*len)),
                ("data", Json::str(to_hex(data))),
            ]),
            (IoOp::Write { offset, .. }, OpResult::Write(w)) => Json::obj([
                ("op", Json::str("write")),
                ("offset", Json::int64(*offset)),
                ("bytes", Json::int64(w.bytes)),
                ("blocks_written", Json::int64(w.blocks_written)),
                ("stripes_touched", Json::int64(w.stripes_touched)),
                ("full_stripe_encodes", Json::int64(w.full_stripe_encodes)),
                ("delta_updates", Json::int64(w.delta_updates)),
            ]),
            // `submit` contracts results to line up with ops; a backend
            // violating that is a bug worth surfacing as malformed JSON
            // rather than a panic.
            _ => Json::obj([("op", Json::str("mismatch"))]),
        }
    });
    Json::obj([
        ("op", Json::str("batch")),
        ("ops", Json::int(batch.len())),
        ("results", Json::arr(per_op)),
        (
            "write_totals",
            Json::obj([
                ("bytes", Json::int64(result.write.bytes)),
                ("blocks_written", Json::int64(result.write.blocks_written)),
                ("stripes_touched", Json::int64(result.write.stripes_touched)),
                (
                    "full_stripe_encodes",
                    Json::int64(result.write.full_stripe_encodes),
                ),
                ("delta_updates", Json::int64(result.write.delta_updates)),
            ]),
        ),
    ])
}

fn cmd_fail(flags: &Flags, spec: &DeviceSpec) -> Result<(), String> {
    let dev = open_admin(spec).map_err(|e| e.to_string())?;
    let device = usize_flag(flags, "device", usize::MAX)?;
    if device == usize::MAX {
        return Err("--device is required".into());
    }
    // Defaulting the shard is only safe when there is exactly one;
    // silently picking shard 0 on a sharded backend would inject the
    // fault somewhere the operator did not name.
    let shard = match flags.get("shard") {
        Some(_) => usize_flag(flags, "shard", 0)?,
        None => {
            let shards = dev.status().map_err(|e| e.to_string())?.shards.len();
            if shards > 1 {
                return Err(format!(
                    "--shard is required: this device has {shards} shards"
                ));
            }
            0
        }
    };
    if flags.contains_key("stripe") || flags.contains_key("sector") {
        let stripe = usize_flag(flags, "stripe", 0)?;
        let sector = usize_flag(flags, "sector", 0)?;
        let len = usize_flag(flags, "len", 1)?;
        dev.corrupt_sectors(shard, device, stripe, sector, len)
            .map_err(|e| e.to_string())?;
        println!(
            "corrupted {len} sector(s) of shard {shard} device {device} in stripe {stripe} (latent until scrub/read)"
        );
    } else {
        dev.fail_device(shard, device).map_err(|e| e.to_string())?;
        println!("failed shard {shard} device {device}: backing file removed");
    }
    Ok(())
}

fn cmd_scrub(flags: &Flags, spec: &DeviceSpec, family: &str) -> Result<(), String> {
    let dev = open(spec)?;
    let threads = usize_flag(flags, "threads", 4)?;
    let outcome = dev.scrub(threads).map_err(|e| e.to_string())?;
    if flags.contains_key("json") {
        print!("{}", status_json::scrub_json(&outcome).to_text());
        return Ok(());
    }
    println!(
        "scrubbed {} stripes, verified {} sectors: {} mismatches, {} unavailable device(s), {} stale record(s) cleared",
        outcome.stripes_scanned,
        outcome.sectors_verified,
        outcome.mismatches,
        outcome.unavailable_devices,
        outcome.records_cleared
    );
    if outcome.clean() {
        println!("device clean");
    } else {
        println!("run `{family} repair` to reconstruct");
    }
    Ok(())
}

fn cmd_repair(flags: &Flags, spec: &DeviceSpec) -> Result<(), String> {
    let dev = open(spec)?;
    let threads = usize_flag(flags, "threads", 4)?;
    let outcome = dev.repair(threads).map_err(|e| e.to_string())?;
    if flags.contains_key("json") {
        print!("{}", status_json::repair_json(&outcome).to_text());
    } else {
        println!(
            "replaced {} device(s), repaired {} stripe(s), rewrote {} sector(s)",
            outcome.devices_replaced, outcome.stripes_repaired, outcome.sectors_rewritten
        );
        if outcome.complete() {
            println!("repair complete");
        }
    }
    if outcome.complete() {
        Ok(())
    } else {
        Err(format!(
            "{} stripe(s) beyond coverage (data lost)",
            outcome.unrecoverable_stripes
        ))
    }
}

fn cmd_flush(spec: &DeviceSpec) -> Result<(), String> {
    let dev = open(spec)?;
    dev.flush().map_err(|e| e.to_string())?;
    println!("flushed");
    Ok(())
}

/// `stair dev metrics`: wraps the backend in [`Instrumented`] so the
/// local view gains `dev.*` per-op latency/byte metrics, optionally
/// replays an op-script through it (`--from`, same grammar as `batch`)
/// to populate them, then prints the combined snapshot — the wrapper's
/// registry merged with whatever the backend itself reports (`store.*`
/// and `gf.*` locally, the server's `srv.*` counters over `tcp:`).
fn cmd_metrics(flags: &Flags, spec: &DeviceSpec) -> Result<(), String> {
    let dev = Instrumented::new(open(spec)?);
    if let Some(from) = flags.get("from").filter(|v| !v.is_empty()) {
        let text = std::fs::read_to_string(from)
            .map_err(|e| format!("cannot read op-script {from}: {e}"))?;
        let batch = parse_op_script(&text)?;
        dev.submit(&batch).map_err(|e| e.to_string())?;
    }
    let snap = dev.metrics().map_err(|e| e.to_string())?;
    if flags.contains_key("json") {
        print!("{}", status_json::metrics_json(&snap).to_text());
        return Ok(());
    }
    println!("counters:");
    for (name, v) in &snap.counters {
        println!("  {name:<28} {v}");
    }
    println!("gauges:");
    for (name, v) in &snap.gauges {
        println!("  {name:<28} {v}");
    }
    println!("latency histograms (us):");
    for (name, h) in &snap.histograms {
        println!(
            "  {name:<28} count {} p50 {} p99 {} max {}",
            h.count(),
            h.p50(),
            h.p99(),
            h.max
        );
    }
    println!("slow ops captured: {}", snap.slow_ops.len());
    for ev in &snap.slow_ops {
        println!(
            "  t+{}us {} shard {} {} bytes in {}us ({})",
            ev.t_us,
            ev.kind,
            ev.shard,
            ev.bytes,
            ev.duration_us,
            if ev.ok { "ok" } else { "failed" }
        );
    }
    Ok(())
}

/// `stair dev trace`: turns on request tracing, optionally replays an
/// op-script (`--from`, same grammar as `batch`) through an
/// [`Instrumented`] device so every layer records spans, then prints
/// this process's flight recorder — plus the server's, pulled over the
/// TRACE opcode, when `spec` is `tcp:`. Output goes through the same
/// serializer as `stair remote trace`, so the shapes cannot drift.
fn cmd_trace(flags: &Flags, spec: &DeviceSpec) -> Result<(), String> {
    stair_obs::trace::set_enabled(true);
    let dev = Instrumented::new(open(spec)?);
    if let Some(from) = flags.get("from").filter(|v| !v.is_empty()) {
        let text = std::fs::read_to_string(from)
            .map_err(|e| format!("cannot read op-script {from}: {e}"))?;
        let batch = parse_op_script(&text)?;
        dev.submit(&batch).map_err(|e| e.to_string())?;
    }
    let local = recorded_traces();
    let server = match spec {
        DeviceSpec::Tcp { addr, .. } => Client::connect(addr)
            .and_then(|client| client.pull_traces())
            .map_err(|e| e.to_string())?,
        _ => Vec::new(),
    };
    if flags.contains_key("json") {
        print!("{}", status_json::traces_json(&local, &server).to_text());
        return Ok(());
    }
    if local.is_empty() && server.is_empty() {
        println!("no traces recorded (pass --from SCRIPT to trace a replay)");
        return Ok(());
    }
    for (origin, traces) in [("local", &local), ("server", &server)] {
        for trace in traces {
            println!(
                "trace {:016x} ({origin}, {}us, {}{})",
                trace.trace_id,
                trace.duration_us,
                if trace.ok { "ok" } else { "failed" },
                if trace.slow { ", slow" } else { "" },
            );
            print_span_tree(&trace.spans, trace.root_span, 1);
        }
    }
    Ok(())
}

/// Prints `span_id` and its descendants, indented by depth. Orphan
/// spans (parent evicted past the per-trace cap) simply do not print —
/// the JSON view still carries them.
fn print_span_tree(spans: &[stair_net::WireSpan], span_id: u64, depth: usize) {
    let Some(span) = spans.iter().find(|s| s.span_id == span_id) else {
        return;
    };
    println!(
        "{}{} {}us{}{}",
        "  ".repeat(depth),
        span.name,
        span.duration_us,
        if span.bytes > 0 {
            format!(" {}B", span.bytes)
        } else {
            String::new()
        },
        if span.ok { "" } else { " FAILED" },
    );
    let mut children: Vec<&stair_net::WireSpan> =
        spans.iter().filter(|s| s.parent_id == span_id).collect();
    children.sort_by_key(|s| s.start_us);
    for child in children {
        print_span_tree(spans, child.span_id, depth + 1);
    }
}

/// This process's flight recorder as wire traces: the completed ring
/// plus any slow/errored captures the main ring has already evicted —
/// the same merge the server performs for a TRACE pull.
fn recorded_traces() -> Vec<WireTrace> {
    let rec = stair_obs::trace::recorder();
    let mut traces: Vec<WireTrace> = rec.traces().iter().map(WireTrace::from).collect();
    let seen: std::collections::HashSet<(u64, u64)> =
        traces.iter().map(|t| (t.trace_id, t.root_span)).collect();
    traces.extend(
        rec.slow_traces()
            .iter()
            .filter(|t| !seen.contains(&(t.trace_id, t.root_span)))
            .map(WireTrace::from),
    );
    traces
}
