//! Library backing the `stair` command-line tool: STAIR-coded file
//! archives.
//!
//! An *archive* is a directory holding one chunk file per device
//! (`chunk_00.bin` … `chunk_NN.bin`), a plain-text `manifest.txt`, and a
//! per-sector checksum table (`checksums.bin`). Losing chunk files models
//! device failures; zeroed or bit-flipped sector ranges model latent sector
//! errors — both are detected via the checksums and repaired through the
//! STAIR decoder, exactly the mixed failure mode of the paper.
//!
//! # Example
//!
//! ```
//! use stair_cli::{Archive, EncodeOptions};
//!
//! let dir = std::env::temp_dir().join(format!("stair-doc-{}", std::process::id()));
//! let payload = vec![7u8; 100_000];
//! Archive::encode_bytes(&payload, &dir, &EncodeOptions::default())?;
//! let archive = Archive::open(&dir)?;
//! assert_eq!(archive.extract()?, payload);
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod archive;
mod checksum;
mod manifest;

pub use archive::{Archive, EncodeOptions, RepairOutcome};
pub use checksum::fletcher32;
pub use manifest::Manifest;
