//! Shared infrastructure for the table/figure harnesses and Criterion
//! benches that regenerate the STAIR paper's evaluation (§5.3, §6, §7).
//!
//! Each binary under `src/bin/` reproduces one table or figure and prints
//! the same rows/series the paper reports. Absolute throughput depends on
//! the host; the *shapes* (who wins, by what factor, where crossovers sit)
//! are the reproduction targets recorded in `EXPERIMENTS.md`.
//!
//! Environment knobs:
//! * `STAIR_BENCH_STRIPE_MB` — stripe size for speed tests (default 8; the
//!   paper uses 32);
//! * `STAIR_BENCH_REPS` — timed repetitions per point (default 3);
//! * `STAIR_TRACE=1` — enable request tracing during the measurement, so
//!   every driver submission roots a `bench.submit` trace whose duration
//!   can be cross-checked against the reported latency percentiles
//!   (tracing costs a little, so leave it off for headline numbers).

#![forbid(unsafe_code)]

pub mod driver;
pub mod zipf;

use std::time::Instant;

use stair::{Config, MultXorCounts, StairCodec, Stripe};
use stair_gf::{Field, Gf16, Gf8};
use stair_sd::{SdCode, SdStripe};

/// Stripe size in bytes for throughput measurements.
pub fn stripe_bytes() -> usize {
    let mb: usize = std::env::var("STAIR_BENCH_STRIPE_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    mb * 1024 * 1024
}

/// Timed repetitions per measurement point.
pub fn reps() -> usize {
    std::env::var("STAIR_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Enables request tracing when `STAIR_TRACE=1` is set, so driver
/// submissions root `bench.submit` traces. Harness binaries call this
/// once at startup; the default (unset) keeps the measured path free
/// of recording overhead.
pub fn trace_from_env() {
    if std::env::var("STAIR_TRACE").is_ok_and(|v| v == "1") {
        stair_obs::trace::set_enabled(true);
    }
}

/// Measures throughput in MB/s over `reps` runs of `f` (after one warmup),
/// counting `total_bytes` of payload per run.
pub fn throughput_mbps(total_bytes: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let elapsed = start.elapsed().as_secs_f64();
    (total_bytes as f64 * reps as f64) / elapsed / (1024.0 * 1024.0)
}

/// All non-decreasing partitions of `s` (the candidate `e` vectors for a
/// given total number of parity sectors).
pub fn partitions(s: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(remaining: usize, max: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining == 0 {
            let mut e = cur.clone();
            e.reverse(); // non-decreasing order
            out.push(e);
            return;
        }
        for next in (1..=remaining.min(max)).rev() {
            cur.push(next);
            rec(remaining - next, next, cur, out);
            cur.pop();
        }
    }
    rec(s, s, &mut cur, &mut out);
    out
}

/// The feasible `e` vectors for `(n, r, m, s)`.
pub fn feasible_es(n: usize, r: usize, m: usize, s: usize) -> Vec<Vec<usize>> {
    partitions(s)
        .into_iter()
        .filter(|e| Config::new(n, r, m, e).is_ok())
        .collect()
}

/// The paper's conservative choice for speed comparisons (§6.2.1): among
/// all feasible `e` for a given `s`, the one whose *best* encoding method
/// is the most expensive (worst-case configuration).
pub fn worst_case_e(n: usize, r: usize, m: usize, s: usize) -> Option<Vec<usize>> {
    feasible_es(n, r, m, s).into_iter().max_by_key(|e| {
        let cfg = Config::new(n, r, m, e).expect("filtered to feasible");
        let c = MultXorCounts::analytic(&cfg);
        c.upstairs.min(c.downstairs)
    })
}

/// An encoded STAIR stripe ready for benchmarking, with its codec.
pub struct StairBench {
    /// The codec under test.
    pub codec: StairCodec,
    /// An encoded stripe of roughly [`stripe_bytes`] size.
    pub stripe: Stripe,
}

impl StairBench {
    /// Builds codec and filled stripe for `(n, r, m, e)` sized to
    /// `stripe_size` bytes total.
    pub fn new(n: usize, r: usize, m: usize, e: &[usize], stripe_size: usize) -> Self {
        let config = Config::new(n, r, m, e).expect("valid benchmark config");
        let symbol = (stripe_size / (n * r)).max(16) & !15; // 16-byte aligned
        let codec = StairCodec::new(config.clone()).expect("codec");
        let mut stripe = Stripe::new(config, symbol.max(16)).expect("stripe");
        stripe.fill_pattern(0x5A);
        Self { codec, stripe }
    }

    /// Total stored bytes of the stripe.
    pub fn total_bytes(&self) -> usize {
        self.stripe.symbol_size() * self.codec.config().n() * self.codec.config().r()
    }

    /// The worst-case erasure pattern of §6.2.2: the `m` leftmost chunks
    /// plus `e_i` sectors at the bottom of the following `m'` chunks.
    pub fn worst_case_erasures(&self) -> Vec<(usize, usize)> {
        let cfg = self.codec.config();
        let (r, m) = (cfg.r(), cfg.m());
        let mut erased: Vec<(usize, usize)> = Vec::new();
        for c in 0..m {
            erased.extend((0..r).map(|row| (row, c)));
        }
        for (i, &el) in cfg.e().iter().enumerate() {
            let c = m + i;
            erased.extend((r - el..r).map(|row| (row, c)));
        }
        erased
    }
}

/// An SD code over whichever field its stripe size requires (`w = 8` when
/// `r·n ≤ 255`, else `w = 16` — §6.2.1's "smallest feasible w").
pub enum AnySd {
    /// GF(2^8) instance.
    G8(SdCode<Gf8>),
    /// GF(2^16) instance.
    G16(SdCode<Gf16>),
}

impl AnySd {
    /// Builds the SD code with the smallest feasible word size.
    pub fn new(n: usize, r: usize, m: usize, s: usize) -> Result<Self, stair_sd::Error> {
        if r * n < Gf8::ORDER {
            Ok(AnySd::G8(SdCode::new(n, r, m, s)?))
        } else {
            Ok(AnySd::G16(SdCode::new(n, r, m, s)?))
        }
    }

    /// The field width in bits.
    pub fn w(&self) -> u32 {
        match self {
            AnySd::G8(_) => 8,
            AnySd::G16(_) => 16,
        }
    }

    /// Allocates a matching stripe.
    pub fn stripe(&self, symbol: usize) -> SdStripe {
        match self {
            AnySd::G8(c) => SdStripe::new(c, symbol),
            AnySd::G16(c) => SdStripe::new(c, symbol & !1),
        }
    }

    /// Encodes in place.
    pub fn encode(&self, stripe: &mut SdStripe) -> Result<(), stair_sd::Error> {
        match self {
            AnySd::G8(c) => c.encode(stripe),
            AnySd::G16(c) => c.encode(stripe),
        }
    }

    /// Decodes in place.
    pub fn decode(
        &self,
        stripe: &mut SdStripe,
        erased: &[(usize, usize)],
    ) -> Result<(), stair_sd::Error> {
        match self {
            AnySd::G8(c) => c.decode(stripe, erased),
            AnySd::G16(c) => c.decode(stripe, erased),
        }
    }

    /// The worst-case erasure pattern: `m` leftmost devices + `s` sectors
    /// at the top of device `m`.
    pub fn worst_case_erasures(&self, r: usize) -> Vec<(usize, usize)> {
        let (m, s) = match self {
            AnySd::G8(c) => (c.m(), c.s()),
            AnySd::G16(c) => (c.m(), c.s()),
        };
        let mut erased: Vec<(usize, usize)> = Vec::new();
        for c in 0..m {
            erased.extend((0..r).map(|row| (row, c)));
        }
        erased.extend((0..s.min(r)).map(|row| (row, m)));
        erased
    }
}

/// Prints a labelled measurement row in a fixed-width layout.
pub fn print_row(label: &str, values: &[(String, f64)]) {
    print!("{label:<28}");
    for (name, v) in values {
        print!("  {name}={v:>9.1}");
    }
    println!();
}

/// STAIR encode throughput (MB/s) for one config with the auto-selected
/// method.
pub fn stair_encode_speed(n: usize, r: usize, m: usize, e: &[usize], stripe_size: usize) -> f64 {
    let mut b = StairBench::new(n, r, m, e, stripe_size);
    let total = b.total_bytes();
    let codec = b.codec.clone();
    throughput_mbps(total, reps(), move || {
        codec.encode(&mut b.stripe).expect("encode");
    })
}

/// STAIR worst-case decode throughput (MB/s), plan reused across runs (the
/// plan is tiny compared to the data volume, matching how the paper's
/// implementation caches coefficients per configuration).
pub fn stair_decode_speed(n: usize, r: usize, m: usize, e: &[usize], stripe_size: usize) -> f64 {
    let mut b = StairBench::new(n, r, m, e, stripe_size);
    b.codec.encode(&mut b.stripe).expect("encode");
    let erased = b.worst_case_erasures();
    let plan = b.codec.plan_decode(&erased).expect("plan");
    let total = b.total_bytes();
    let codec = b.codec.clone();
    throughput_mbps(total, reps(), move || {
        codec.apply_plan(&plan, &mut b.stripe).expect("decode");
    })
}

/// SD encode throughput (MB/s); `None` if no construction exists.
pub fn sd_encode_speed(n: usize, r: usize, m: usize, s: usize, stripe_size: usize) -> Option<f64> {
    let code = AnySd::new(n, r, m, s).ok()?;
    let symbol = (stripe_size / (n * r)).max(16) & !15;
    let mut stripe = code.stripe(symbol);
    stripe.fill_pattern(0xC3);
    let total = symbol * n * r;
    Some(throughput_mbps(total, reps(), move || {
        code.encode(&mut stripe).expect("sd encode");
    }))
}

/// SD worst-case decode throughput (MB/s); `None` if no construction.
pub fn sd_decode_speed(n: usize, r: usize, m: usize, s: usize, stripe_size: usize) -> Option<f64> {
    let code = AnySd::new(n, r, m, s).ok()?;
    let symbol = (stripe_size / (n * r)).max(16) & !15;
    let mut stripe = code.stripe(symbol);
    stripe.fill_pattern(0xC3);
    code.encode(&mut stripe).ok()?;
    let erased = code.worst_case_erasures(r);
    let total = symbol * n * r;
    Some(throughput_mbps(total, reps(), move || {
        code.decode(&mut stripe, &erased).expect("sd decode");
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_of_4_match_figure_9() {
        let p = partitions(4);
        assert_eq!(p.len(), 5);
        assert!(p.contains(&vec![4]));
        assert!(p.contains(&vec![1, 3]));
        assert!(p.contains(&vec![2, 2]));
        assert!(p.contains(&vec![1, 1, 2]));
        assert!(p.contains(&vec![1, 1, 1, 1]));
        for e in &p {
            assert!(
                e.windows(2).all(|w| w[0] <= w[1]),
                "{e:?} must be non-decreasing"
            );
        }
    }

    #[test]
    fn worst_case_e_is_feasible_and_maximal() {
        let e = worst_case_e(16, 16, 2, 4).unwrap();
        assert!(Config::new(16, 16, 2, &e).is_ok());
    }

    #[test]
    fn speed_helpers_produce_positive_numbers() {
        std::env::set_var("STAIR_BENCH_REPS", "1");
        let v = stair_encode_speed(8, 8, 1, &[1, 1], 64 * 1024);
        assert!(v > 0.0);
        let d = stair_decode_speed(8, 8, 1, &[1, 1], 64 * 1024);
        assert!(d > 0.0);
        let sd = sd_encode_speed(8, 8, 1, 2, 64 * 1024).unwrap();
        assert!(sd > 0.0);
    }

    #[test]
    fn worst_case_erasures_are_covered() {
        let b = StairBench::new(8, 16, 2, &[1, 2], 64 * 1024);
        let erased = b.worst_case_erasures();
        assert!(b.codec.config().covers(&erased).unwrap());
        assert_eq!(erased.len(), 2 * 16 + 3);
    }
}
