//! Regenerates **Fig. 10**: devices saved by STAIR codes over traditional
//! erasure codes, as a function of r for s ≤ 4 and m' ≤ s.

use stair::devices_saved;

fn main() {
    println!("Fig. 10: devices saved (m' − s/r) per system");
    for s in 1..=4usize {
        println!("\ns = {s}:");
        print!("{:>6}", "r");
        for m_prime in 1..=s {
            print!("  m'={m_prime:>10}");
        }
        println!();
        for r in [2usize, 4, 8, 16, 24, 32] {
            print!("{r:>6}");
            for m_prime in 1..=s {
                print!("  {:>13.3}", devices_saved(s, m_prime, r));
            }
            println!();
        }
    }
    println!("\n(paper: saving approaches m' as r grows; maximal at m' = s; SD codes");
    println!(" always save s − s/r but exist only for s ≤ 3 — §6.1)");
}
