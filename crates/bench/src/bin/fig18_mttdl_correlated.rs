//! Regenerates **Fig. 18**: MTTDL_sys vs P_bit under *correlated* sector
//! failure bursts with (b1, α) = (0.98, 1.79) — the "D-2" drive model fit.

use stair_reliability::{BurstModel, Scheme, SectorModel, SystemParams};

fn main() {
    let params = SystemParams::paper_defaults();
    let model = SectorModel::Correlated(BurstModel::from_pareto(0.98, 1.79, params.r));
    let pbits: Vec<f64> = (0..=16)
        .map(|i| 1e-14 * 10f64.powf(i as f64 / 4.0))
        .collect();

    println!("Fig. 18: MTTDL_sys (hours) vs P_bit, correlated bursts (b1=0.98, α=1.79)\n");
    let schemes: Vec<(&str, Scheme)> = vec![
        ("RS", Scheme::reed_solomon()),
        ("STAIR/SD s=1", Scheme::stair(&[1])),
        ("STAIR e=(2)", Scheme::stair(&[2])),
        ("STAIR e=(1,1)", Scheme::stair(&[1, 1])),
        ("SD s=2", Scheme::sd(2)),
        ("STAIR e=(3)", Scheme::stair(&[3])),
        ("STAIR e=(1,2)", Scheme::stair(&[1, 2])),
        ("STAIR e=(1,1,1)", Scheme::stair(&[1, 1, 1])),
        ("SD s=3", Scheme::sd(3)),
    ];
    print!("{:>10}", "P_bit");
    for (name, _) in &schemes {
        print!(" {name:>15}");
    }
    println!();
    for &pb in &pbits {
        print!("{pb:>10.1e}");
        for (_, scheme) in &schemes {
            print!(" {:>15.3e}", params.mttdl_sys(scheme, &model, pb));
        }
        println!();
    }
    println!("\n(paper: all schemes show power-law decrease; STAIR e=(e0..em'−1) tracks");
    println!(" SD with s = e_max; e=(s) is the best shape under bursts — §7.2.2)");
}
