//! Throughput harness for the stair-store engine, per codec: MB/s for
//! sequential write, sequential read, degraded read (m failed devices +
//! a sector burst where the code covers one), and the post-repair read,
//! plus the wall-clock of the online repair itself.
//!
//! This is the paper's STAIR-vs-SD-vs-RS comparison run on the real I/O
//! path: every codec drives the *same* store engine over the same
//! geometry (`n = 8` devices, `r = 16` sectors/chunk, `m = 2`), with
//! STAIR `e = (1,2)` against SD `s = 3` (equal sector budgets) and plain
//! RS as the no-sector-protection baseline. All timing goes through the
//! device-generic driver (`stair_bench::driver`) shared with
//! `net_throughput`, exercising the store through the same
//! `BlockDevice` trait every other consumer uses.
//!
//! Flags: `--json <path>` additionally writes the machine-readable
//! report documented in `EXPERIMENTS.md`.
//!
//! Knobs: `STAIR_STORE_MB` (logical capacity per codec, default 8),
//! `STAIR_BENCH_REPS` (timed repetitions, default 3),
//! `STAIR_STORE_THREADS` (scrub/repair workers, default 4),
//! `STAIR_STORE_CODES` (semicolon-separated specs overriding the
//! default three-way comparison — specs contain commas themselves).

use std::time::Instant;

use stair_bench::driver::{measure_devices, DevOp, IoShape};
use stair_bench::{print_row, reps};
use stair_code::CodecSpec;
use stair_device::BlockDevice;
use stair_net::json::{metrics_json, Json};
use stair_store::{StoreOptions, StripeStore};

struct Measurement {
    code: String,
    op: &'static str,
    mb_per_s: f64,
    /// Wall-clock seconds, only for one-shot passes (repair).
    seconds: Option<f64>,
    /// Per-request latency `(p50, p99, max)` in µs; `None` for one-shot
    /// passes that issue no per-request calls (repair).
    lat_us: Option<(f64, f64, f64)>,
}

fn main() {
    stair_bench::trace_from_env();
    let json_path = parse_json_flag();
    let mb: usize = std::env::var("STAIR_STORE_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let threads: usize = std::env::var("STAIR_STORE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let specs: Vec<CodecSpec> = std::env::var("STAIR_STORE_CODES")
        .map(|v| {
            v.split(';')
                .map(|s| s.trim().parse().expect("bad spec in STAIR_STORE_CODES"))
                .collect()
        })
        .unwrap_or_else(|_| {
            vec![
                "stair:8,16,2,1-2".parse().unwrap(),
                "sd:8,16,2,3".parse().unwrap(),
                "rs:8,16,2".parse().unwrap(),
            ]
        });
    let symbol = 4096usize;

    let mut results: Vec<Measurement> = Vec::new();
    let mut metrics: Vec<Json> = Vec::new();
    for code in specs {
        bench_codec(&code, symbol, mb, threads, &mut results, &mut metrics);
    }

    if let Some(path) = json_path {
        let report = Json::obj([
            ("harness", Json::str("store_throughput")),
            (
                "config",
                Json::obj([
                    ("mb", Json::int(mb)),
                    ("symbol", Json::int(symbol)),
                    ("threads", Json::int(threads)),
                    ("reps", Json::int(reps())),
                ]),
            ),
            (
                "results",
                Json::arr(results.iter().map(|m| {
                    let lat = |pick: fn((f64, f64, f64)) -> f64| {
                        m.lat_us.map(|l| Json::Num(pick(l))).unwrap_or(Json::Null)
                    };
                    Json::obj([
                        ("code", Json::str(m.code.clone())),
                        ("op", Json::str(m.op)),
                        ("mb_per_s", Json::Num(m.mb_per_s)),
                        ("lat_p50_us", lat(|l| l.0)),
                        ("lat_p99_us", lat(|l| l.1)),
                        ("lat_max_us", lat(|l| l.2)),
                        ("seconds", m.seconds.map(Json::Num).unwrap_or(Json::Null)),
                    ])
                })),
            ),
            ("metrics", Json::arr(metrics)),
        ]);
        std::fs::write(&path, report.to_text()).expect("write --json report");
        println!("wrote JSON report to {path}");
    }
}

/// `--json <path>` from argv (the only flag this harness takes).
fn parse_json_flag() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: store_throughput [--json <path>]   (got {other:?})");
            std::process::exit(2);
        }
    }
}

fn bench_codec(
    code: &CodecSpec,
    symbol: usize,
    mb: usize,
    threads: usize,
    results: &mut Vec<Measurement>,
    metrics: &mut Vec<Json>,
) {
    let dir = std::env::temp_dir().join(format!(
        "stair-store-bench-{}-{}",
        code.family(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Stripe count sized so data capacity ≈ the requested MB.
    let probe = StoreOptions {
        code: code.clone(),
        symbol,
        stripes: 1,
    };
    let per_stripe = {
        let s = StripeStore::create(&dir, &probe).expect("probe store");
        s.capacity() as usize
    };
    std::fs::remove_dir_all(&dir).expect("clean probe");
    let stripes = (mb * 1024 * 1024).div_ceil(per_stripe).max(4);
    let opts = StoreOptions {
        code: code.clone(),
        symbol,
        stripes,
    };

    let store = StripeStore::create(&dir, &opts).expect("create store");
    let geom = store.geometry().clone();
    let capacity = store.capacity() as usize;
    println!(
        "== {code}: n={} r={} m={} s={} symbol={symbol} stripes={stripes} ({:.1} MiB data, efficiency {:.3})",
        geom.n,
        geom.r,
        geom.m,
        geom.s,
        capacity as f64 / (1024.0 * 1024.0),
        geom.storage_efficiency()
    );
    let label = |what: &str| format!("{:<5} {what}", code.family());
    let mut push =
        |op: &'static str, mb_per_s: f64, seconds: Option<f64>, lat_us: Option<(f64, f64, f64)>| {
            results.push(Measurement {
                code: code.to_string(),
                op,
                mb_per_s,
                seconds,
                lat_us,
            });
        };

    // Whole-capacity transfers, one device handle (the driver still
    // carves regions and times exactly as it does for the wire).
    let dev: &dyn BlockDevice = &store;
    let shape = IoShape {
        seq_io: capacity,
        rand_io: symbol,
    };
    let run = |op: DevOp| {
        let m = measure_devices(&[dev], op, capacity, shape, reps());
        (
            m.mb_per_s(),
            Some((m.lat_p50_us, m.lat_p99_us, m.lat_max_us)),
        )
    };

    let (w, lat) = run(DevOp::SeqWrite);
    print_row(&label("sequential write"), &[("MB/s".into(), w)]);
    push("seq_write", w, None, lat);

    let (rd, lat) = run(DevOp::SeqRead);
    print_row(&label("sequential read (clean)"), &[("MB/s".into(), rd)]);
    push("seq_read_clean", rd, None, lat);

    // Degrade: the full m whole-device budget, plus a burst (in a still-
    // healthy device) where the code covers one. Device/row choices are
    // derived from the geometry so any STAIR_STORE_CODES spec works.
    for lost in 0..geom.m {
        store.fail_device(lost).expect("fail device");
    }
    if geom.burst > 0 {
        let burst = geom.burst.min(2).min(geom.r);
        store
            .corrupt_sectors(geom.m, stripes / 2, 0, burst)
            .expect("burst");
    }
    let (dg, lat) = run(DevOp::SeqRead);
    print_row(&label("sequential read (degraded)"), &[("MB/s".into(), dg)]);
    push("seq_read_degraded", dg, None, lat);

    let t0 = Instant::now();
    let report = store.repair(threads).expect("repair");
    let secs = t0.elapsed().as_secs_f64();
    assert!(report.complete(), "repair incomplete: {report:?}");
    let repair_rate = capacity as f64 / secs / (1024.0 * 1024.0);
    print_row(
        &label("online repair"),
        &[("MB/s".into(), repair_rate), ("s".into(), secs)],
    );
    push("repair", repair_rate, Some(secs), None);

    let (pr, lat) = run(DevOp::SeqRead);
    print_row(&label("sequential read (repaired)"), &[("MB/s".into(), pr)]);
    push("seq_read_repaired", pr, None, lat);

    let scrub = store.scrub(threads).expect("scrub");
    assert!(scrub.clean(), "scrub not clean after repair: {scrub:?}");
    println!(
        "   scrub clean: {} sectors verified across {} stripes",
        scrub.sectors_verified, scrub.stripes_scanned
    );

    // The engine's own registry view of the run, in the same shape
    // `stair dev metrics --json` reports (gf.* counters are process-
    // global, so they accumulate across codecs).
    let snap = store.metrics().expect("store metrics");
    metrics.push(Json::obj([
        ("code", Json::str(code.to_string())),
        ("metrics", metrics_json(&snap)),
    ]));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
