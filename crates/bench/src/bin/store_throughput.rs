//! Throughput harness for the stair-store engine: MB/s for sequential
//! write, sequential read, degraded read (m failed devices + a sector
//! burst), and the post-repair read, plus the wall-clock of the online
//! repair itself.
//!
//! Knobs: `STAIR_STORE_MB` (logical capacity, default 8),
//! `STAIR_BENCH_REPS` (timed repetitions, default 3),
//! `STAIR_STORE_THREADS` (scrub/repair workers, default 4).

use std::time::Instant;

use stair_bench::{print_row, reps, throughput_mbps};
use stair_store::{StoreOptions, StripeStore};

fn main() {
    let mb: usize = std::env::var("STAIR_STORE_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let threads: usize = std::env::var("STAIR_STORE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let (n, r, m, e, symbol) = (8usize, 16usize, 2usize, vec![1, 2], 4096usize);

    // Stripe count sized so data capacity ≈ the requested MB.
    let probe = StoreOptions {
        n,
        r,
        m,
        e: e.clone(),
        symbol,
        stripes: 1,
    };
    let dir = std::env::temp_dir().join(format!("stair-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let per_stripe = {
        let s = StripeStore::create(&dir, &probe).expect("probe store");
        s.capacity() as usize
    };
    std::fs::remove_dir_all(&dir).expect("clean probe");
    let stripes = (mb * 1024 * 1024).div_ceil(per_stripe).max(4);
    let opts = StoreOptions {
        n,
        r,
        m,
        e: e.clone(),
        symbol,
        stripes,
    };

    let store = StripeStore::create(&dir, &opts).expect("create store");
    let capacity = store.capacity() as usize;
    let payload: Vec<u8> = (0..capacity).map(|i| (i % 249) as u8).collect();
    println!(
        "stair-store throughput: n={n} r={r} m={m} e={e:?} symbol={symbol} stripes={stripes} ({:.1} MiB data)",
        capacity as f64 / (1024.0 * 1024.0)
    );

    let w = throughput_mbps(capacity, reps(), || {
        store.write_at(0, &payload).expect("write");
    });
    print_row("sequential write", &[("MB/s".into(), w)]);

    let rd = throughput_mbps(capacity, reps(), || {
        let got = store.read_at(0, capacity).expect("read");
        assert_eq!(got.len(), capacity);
    });
    print_row("sequential read (clean)", &[("MB/s".into(), rd)]);

    // Degrade: m whole devices plus a 2-sector burst elsewhere.
    store.fail_device(1).expect("fail 1");
    store.fail_device(4).expect("fail 4");
    store.corrupt_sectors(6, stripes / 2, 3, 2).expect("burst");
    let dg = throughput_mbps(capacity, reps(), || {
        let got = store.read_at(0, capacity).expect("degraded read");
        assert_eq!(got.len(), capacity);
    });
    print_row("sequential read (degraded)", &[("MB/s".into(), dg)]);

    let t0 = Instant::now();
    let report = store.repair(threads).expect("repair");
    let secs = t0.elapsed().as_secs_f64();
    assert!(report.complete(), "repair incomplete: {report:?}");
    print_row(
        "online repair",
        &[
            ("MB/s".into(), capacity as f64 / secs / (1024.0 * 1024.0)),
            ("s".into(), secs),
        ],
    );

    let pr = throughput_mbps(capacity, reps(), || {
        let got = store.read_at(0, capacity).expect("post-repair read");
        assert_eq!(got.len(), capacity);
    });
    print_row("sequential read (repaired)", &[("MB/s".into(), pr)]);

    let scrub = store.scrub(threads).expect("scrub");
    assert!(scrub.clean(), "scrub not clean after repair: {scrub:?}");
    println!(
        "scrub clean: {} sectors verified across {} stripes",
        scrub.sectors_verified, scrub.stripes_scanned
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
