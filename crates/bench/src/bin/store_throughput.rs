//! Throughput harness for the stair-store engine, per codec: MB/s for
//! sequential write, sequential read, degraded read (m failed devices +
//! a sector burst where the code covers one), and the post-repair read,
//! plus the wall-clock of the online repair itself.
//!
//! This is the paper's STAIR-vs-SD-vs-RS comparison run on the real I/O
//! path: every codec drives the *same* store engine over the same
//! geometry (`n = 8` devices, `r = 16` sectors/chunk, `m = 2`), with
//! STAIR `e = (1,2)` against SD `s = 3` (equal sector budgets) and plain
//! RS as the no-sector-protection baseline.
//!
//! Knobs: `STAIR_STORE_MB` (logical capacity per codec, default 8),
//! `STAIR_BENCH_REPS` (timed repetitions, default 3),
//! `STAIR_STORE_THREADS` (scrub/repair workers, default 4),
//! `STAIR_STORE_CODES` (semicolon-separated specs overriding the
//! default three-way comparison — specs contain commas themselves).

use std::time::Instant;

use stair_bench::{print_row, reps, throughput_mbps};
use stair_code::CodecSpec;
use stair_store::{StoreOptions, StripeStore};

fn main() {
    let mb: usize = std::env::var("STAIR_STORE_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let threads: usize = std::env::var("STAIR_STORE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let specs: Vec<CodecSpec> = std::env::var("STAIR_STORE_CODES")
        .map(|v| {
            v.split(';')
                .map(|s| s.trim().parse().expect("bad spec in STAIR_STORE_CODES"))
                .collect()
        })
        .unwrap_or_else(|_| {
            vec![
                "stair:8,16,2,1-2".parse().unwrap(),
                "sd:8,16,2,3".parse().unwrap(),
                "rs:8,16,2".parse().unwrap(),
            ]
        });
    let symbol = 4096usize;

    for code in specs {
        bench_codec(&code, symbol, mb, threads);
    }
}

fn bench_codec(code: &CodecSpec, symbol: usize, mb: usize, threads: usize) {
    let dir = std::env::temp_dir().join(format!(
        "stair-store-bench-{}-{}",
        code.family(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Stripe count sized so data capacity ≈ the requested MB.
    let probe = StoreOptions {
        code: code.clone(),
        symbol,
        stripes: 1,
    };
    let per_stripe = {
        let s = StripeStore::create(&dir, &probe).expect("probe store");
        s.capacity() as usize
    };
    std::fs::remove_dir_all(&dir).expect("clean probe");
    let stripes = (mb * 1024 * 1024).div_ceil(per_stripe).max(4);
    let opts = StoreOptions {
        code: code.clone(),
        symbol,
        stripes,
    };

    let store = StripeStore::create(&dir, &opts).expect("create store");
    let geom = store.geometry().clone();
    let capacity = store.capacity() as usize;
    let payload: Vec<u8> = (0..capacity).map(|i| (i % 249) as u8).collect();
    println!(
        "== {code}: n={} r={} m={} s={} symbol={symbol} stripes={stripes} ({:.1} MiB data, efficiency {:.3})",
        geom.n,
        geom.r,
        geom.m,
        geom.s,
        capacity as f64 / (1024.0 * 1024.0),
        geom.storage_efficiency()
    );
    let label = |what: &str| format!("{:<5} {what}", code.family());

    let w = throughput_mbps(capacity, reps(), || {
        store.write_at(0, &payload).expect("write");
    });
    print_row(&label("sequential write"), &[("MB/s".into(), w)]);

    let rd = throughput_mbps(capacity, reps(), || {
        let got = store.read_at(0, capacity).expect("read");
        assert_eq!(got.len(), capacity);
    });
    print_row(&label("sequential read (clean)"), &[("MB/s".into(), rd)]);

    // Degrade: the full m whole-device budget, plus a burst (in a still-
    // healthy device) where the code covers one. Device/row choices are
    // derived from the geometry so any STAIR_STORE_CODES spec works.
    for dev in 0..geom.m {
        store.fail_device(dev).expect("fail device");
    }
    if geom.burst > 0 {
        let burst = geom.burst.min(2).min(geom.r);
        store
            .corrupt_sectors(geom.m, stripes / 2, 0, burst)
            .expect("burst");
    }
    let dg = throughput_mbps(capacity, reps(), || {
        let got = store.read_at(0, capacity).expect("degraded read");
        assert_eq!(got.len(), capacity);
    });
    print_row(&label("sequential read (degraded)"), &[("MB/s".into(), dg)]);

    let t0 = Instant::now();
    let report = store.repair(threads).expect("repair");
    let secs = t0.elapsed().as_secs_f64();
    assert!(report.complete(), "repair incomplete: {report:?}");
    print_row(
        &label("online repair"),
        &[
            ("MB/s".into(), capacity as f64 / secs / (1024.0 * 1024.0)),
            ("s".into(), secs),
        ],
    );

    let pr = throughput_mbps(capacity, reps(), || {
        let got = store.read_at(0, capacity).expect("post-repair read");
        assert_eq!(got.len(), capacity);
    });
    print_row(&label("sequential read (repaired)"), &[("MB/s".into(), pr)]);

    let scrub = store.scrub(threads).expect("scrub");
    assert!(scrub.clean(), "scrub not clean after repair: {scrub:?}");
    println!(
        "   scrub clean: {} sectors verified across {} stripes",
        scrub.sectors_verified, scrub.stripes_scanned
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
