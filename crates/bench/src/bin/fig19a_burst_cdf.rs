//! Regenerates **Fig. 19(a)**: cumulative distribution functions of the
//! sector-failure burst length for the five (b1, α) pairs the paper plots.

use stair_reliability::BurstModel;

fn main() {
    let pairs = [
        (0.9, 1.0),
        (0.98, 1.79),
        (0.99, 2.0),
        (0.999, 3.0),
        (0.9999, 4.0),
    ];
    let r = 16;
    println!("Fig. 19(a): burst-length CDFs, truncated at r = {r}\n");
    print!("{:>6}", "len");
    for (b1, a) in pairs {
        print!("  b1={b1:<6} α={a:<4}");
    }
    println!();
    let models: Vec<BurstModel> = pairs
        .iter()
        .map(|&(b1, a)| BurstModel::from_pareto(b1, a, r))
        .collect();
    for len in 1..=r {
        print!("{len:>6}");
        for m in &models {
            print!("  {:>16.6}", m.cdf(len));
        }
        println!();
    }
    print!("\nmean B:");
    for m in &models {
        print!("  {:>16.4}", m.mean());
    }
    println!("\n\n(paper: smaller b1 and α mean burstier failures; field fits give B ≈ 1.03)");
}
