//! Regenerates **Fig. 14**: update penalty of STAIR codes for different e
//! with n = 16, s = 4, r ∈ {8, 16, 24, 32}, m ∈ {1, 2, 3}.

use stair::{Config, StairCodec};
use stair_bench::partitions;

fn main() {
    let (n, s) = (16usize, 4usize);
    println!("Fig. 14: average update penalty, n={n} s={s}");
    println!(
        "{:>12} {:>4} {:>8} {:>8} {:>8}",
        "e", "r", "m=1", "m=2", "m=3"
    );
    for r in [8usize, 16, 24, 32] {
        for e in partitions(s) {
            print!("{:>12} {r:>4}", format!("{e:?}"));
            for m in 1..=3usize {
                match Config::new(n, r, m, &e) {
                    Ok(config) => {
                        let codec: StairCodec = StairCodec::new(config).expect("codec");
                        print!(" {:>8.2}", codec.relations().update_penalty().average);
                    }
                    Err(_) => print!(" {:>8}", "-"),
                }
            }
            println!();
        }
        println!();
    }
    println!("(paper: penalty increases with m, and for fixed s grows with e_max — §6.3)");
}
