//! Regenerates the **§7.2 N_arr table**: number of storage arrays needed
//! to hold 10 PiB of user data for s = 0..12 (n = 8, r = 16, m = 1,
//! C = 300 GiB).

use stair_reliability::{Scheme, SystemParams};

fn main() {
    let params = SystemParams::paper_defaults();
    println!("§7.2 N_arr table (U = 10 PiB, C = 300 GiB, n = 8, r = 16, m = 1)\n");
    println!("{:>4} {:>8}", "s", "N_arr");
    for s in 0..=12usize {
        let scheme = if s == 0 {
            Scheme::reed_solomon()
        } else {
            Scheme::sd(s)
        };
        println!("{s:>4} {:>8}", params.narr(&scheme));
    }
    println!("\n(paper: 4994, 5039, 5085, 5131, 5179, 5227, 5276, 5327, 5378, 5430,");
    println!(" 5483, 5538, 5593)");
}
