//! Kill-9 chaos harness for the stair-journal crash-consistency claim:
//! a child process streams batched writes into a store and is
//! SIGKILLed at a random moment mid-stream; the parent then reopens
//! the store (replaying the journal), scrubs every sector, and
//! byte-compares the image against a shadow model built from the
//! child's acknowledged batches. One run performs many such
//! iterations over the `file:` and `shards:` backends.
//!
//! Invariants checked every iteration:
//!
//! * **No acknowledged write is lost** — every block whose last
//!   acknowledged writer is batch `k` holds exactly batch `k`'s bytes
//!   (or the in-flight batch's bytes, when that batch also wrote it).
//! * **No torn stripe** — a post-replay scrub verifies every sector
//!   against its checksum and must come back clean.
//! * **Unacknowledged writes are atomic per block** — a block touched
//!   only by the killed in-flight batch holds either its previous
//!   value or the new one, never a blend.
//!
//! The child and parent share one deterministic model: batch `k`'s
//! block set and fill bytes derive from `(seed, k)` via a xorshift
//! generator, so the parent reconstructs every write the child could
//! have issued without any side channel beyond the `ack <k>` lines the
//! child prints after each successful submit.
//!
//! Flags: `--json <path>` writes a machine-readable report.
//! Environment: `STAIR_CHAOS_ITERS` (iterations per backend, default
//! 25), `STAIR_CHAOS_BACKENDS` (comma list of `file,shards,cache`,
//! default all three — `cache` is a write-through `cache:file:` tier,
//! whose acks are the store's own and must therefore survive exactly
//! like `file:`'s), `STAIR_CHAOS_SEED` (base seed, default 9).

use std::collections::BTreeSet;
use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::Duration;

use stair_device::{BlockDevice, DeviceSpec, IoBatch};
use stair_net::json::Json;
use stair_net::{open_device, ShardSet};
use stair_store::{StoreOptions, StripeStore};

/// Small geometry: crashes must land inside multi-stripe batches, not
/// take minutes to verify.
fn opts() -> StoreOptions {
    StoreOptions {
        code: "stair:4,4,2,1-2".parse().expect("codec spec"),
        symbol: 64,
        stripes: 6,
    }
}

const SHARDS: usize = 2;
/// Upper bound on batches per child life; the kill almost always lands
/// far earlier.
const MAX_BATCHES: u64 = 100_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() == 3 && args[0] == "--child" {
        let seed: u64 = args[2].parse().expect("child seed");
        child(&args[1], seed);
    }
    parent(&args);
}

// ---------------------------------------------------------------------
// Deterministic write model (shared by child and parent)
// ---------------------------------------------------------------------

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The distinct blocks batch `k` writes, derived from `(seed, k)`
/// alone so both processes agree without communicating.
fn batch_blocks(seed: u64, k: u64, total_blocks: usize) -> Vec<usize> {
    let mut state = seed ^ (k + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if state == 0 {
        state = 1;
    }
    let count = 1 + (xorshift(&mut state) % 4) as usize;
    let mut picks = BTreeSet::new();
    while picks.len() < count {
        picks.insert((xorshift(&mut state) % total_blocks as u64) as usize);
    }
    picks.into_iter().collect()
}

/// The bytes batch `k` writes into block `b`.
fn fill(seed: u64, k: u64, b: usize, block: usize) -> Vec<u8> {
    let h = seed
        .wrapping_mul(0x100_0000_01b3)
        .wrapping_add(k.wrapping_mul(31))
        .wrapping_add(b as u64 * 7 + 1);
    (0..block)
        .map(|i| (h as u8).wrapping_add(i as u8))
        .collect()
}

// ---------------------------------------------------------------------
// Child: stream batches, ack each durable submit, die by SIGKILL
// ---------------------------------------------------------------------

fn child(spec: &str, seed: u64) -> ! {
    let spec: DeviceSpec = spec.parse().expect("child device spec");
    let dev = open_device(&spec).expect("child open");
    let block = dev.block_size();
    let total_blocks = dev.capacity() as usize / block;
    let stdout = std::io::stdout();
    for k in 0..MAX_BATCHES {
        let mut batch = IoBatch::new();
        for &b in &batch_blocks(seed, k, total_blocks) {
            batch.write((b * block) as u64, fill(seed, k, b, block));
        }
        dev.submit(&batch).expect("child submit");
        // The ack line is the acknowledgment the parent audits: it is
        // only written after submit returned, so once the parent reads
        // `ack k`, batch k's bytes must survive any later kill.
        let mut out = stdout.lock();
        writeln!(out, "ack {k}").expect("child ack");
        out.flush().expect("child ack flush");
    }
    std::process::exit(0)
}

// ---------------------------------------------------------------------
// Parent: iterate spawn → kill → replay → scrub → byte-compare
// ---------------------------------------------------------------------

struct BackendTally {
    backend: String,
    iterations: u64,
    total_acked: u64,
    unclean_opens: u64,
    total_replayed: u64,
    failures: Vec<String>,
}

fn parent(args: &[String]) -> ! {
    let json_path = match args {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: chaos_kill9 [--json <path>]   (got {other:?})");
            std::process::exit(2);
        }
    };
    let iters: u64 = std::env::var("STAIR_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let base_seed: u64 = std::env::var("STAIR_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let backends: Vec<String> = std::env::var("STAIR_CHAOS_BACKENDS")
        .unwrap_or_else(|_| "file,shards,cache".into())
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();

    let root = std::env::temp_dir().join(format!("stair-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("chaos root");

    println!(
        "== chaos_kill9: {} iteration(s) x {backends:?}, seed {base_seed}",
        iters
    );
    let mut tallies = Vec::new();
    let mut delay_state = base_seed | 1;
    for backend in &backends {
        let mut tally = BackendTally {
            backend: backend.clone(),
            iterations: iters,
            total_acked: 0,
            unclean_opens: 0,
            total_replayed: 0,
            failures: Vec::new(),
        };
        for iter in 0..iters {
            let seed = base_seed.wrapping_mul(1_000_003).wrapping_add(iter * 2 + 1);
            // 1–40 ms: spans child startup through deep steady state.
            let delay_us = 1_000 + xorshift(&mut delay_state) % 39_000;
            if let Err(msg) = run_iteration(&root, backend, iter, seed, delay_us, &mut tally) {
                eprintln!("FAIL [{backend} iter {iter}]: {msg}");
                tally.failures.push(format!("iter {iter}: {msg}"));
            }
        }
        println!(
            "-- {backend}: {} iter(s), {} acked batch(es), {} unclean open(s), {} record(s) replayed, {} failure(s)",
            tally.iterations,
            tally.total_acked,
            tally.unclean_opens,
            tally.total_replayed,
            tally.failures.len()
        );
        tallies.push(tally);
    }

    let failed: usize = tallies.iter().map(|t| t.failures.len()).sum();
    if let Some(path) = json_path {
        std::fs::write(&path, report(&tallies, iters, base_seed).to_text())
            .expect("write --json report");
        println!("wrote JSON report to {path}");
    }
    let _ = std::fs::remove_dir_all(&root);
    if failed > 0 {
        eprintln!("chaos_kill9: {failed} failed iteration(s)");
        std::process::exit(1);
    }
    println!("chaos_kill9: all iterations verified");
    std::process::exit(0)
}

/// One spawn → kill → recover → verify cycle. Returns a description of
/// the first violated invariant, if any.
fn run_iteration(
    root: &std::path::Path,
    backend: &str,
    iter: u64,
    seed: u64,
    delay_us: u64,
    tally: &mut BackendTally,
) -> Result<(), String> {
    let dir = root.join(format!("{backend}-{iter}"));
    let spec_str = match backend {
        "file" => {
            StripeStore::create(&dir, &opts()).map_err(|e| format!("create: {e}"))?;
            format!("file:{}", dir.display())
        }
        "shards" => {
            ShardSet::create(&dir, SHARDS, &opts()).map_err(|e| format!("create: {e}"))?;
            format!("shards:{}?n={SHARDS}", dir.display())
        }
        // Write-through cache over a file store: the wrapper forwards
        // every submit before acking, so a kill must lose nothing the
        // child acked — the same bar as the bare store. (Write-back
        // acks are volatile by contract; the chaos bar applies to the
        // shipping default.)
        "cache" => {
            StripeStore::create(&dir, &opts()).map_err(|e| format!("create: {e}"))?;
            format!("cache:file:{}?mb=1", dir.display())
        }
        other => return Err(format!("unknown STAIR_CHAOS_BACKENDS entry `{other}`")),
    };

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .args(["--child", &spec_str, &seed.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn: {e}"))?;
    std::thread::sleep(Duration::from_micros(delay_us));
    child.kill().map_err(|e| format!("kill: {e}"))?;
    let out = child.wait_with_output().map_err(|e| format!("wait: {e}"))?;

    // Count the contiguous ack prefix; a partial final line (killed
    // mid-print) parses as absent, which only makes the check stricter.
    let mut acks: u64 = 0;
    for line in String::from_utf8_lossy(&out.stdout).lines() {
        match line
            .strip_prefix("ack ")
            .and_then(|n| n.parse::<u64>().ok())
        {
            Some(k) if k == acks => acks += 1,
            _ => break,
        }
    }
    tally.total_acked += acks;

    // Reopen: journal replay happens inside open.
    let spec: DeviceSpec = spec_str.parse().map_err(|e| format!("spec: {e}"))?;
    let dev = open_device(&spec).map_err(|e| format!("reopen: {e}"))?;
    let status = dev.status().map_err(|e| format!("status: {e}"))?;
    let replayed: u64 = status.shards.iter().map(|s| s.replayed_records).sum();
    tally.total_replayed += replayed;
    if status.shards.iter().any(|s| !s.clean_shutdown) {
        tally.unclean_opens += 1;
    }

    let scrub = dev.scrub(2).map_err(|e| format!("scrub: {e}"))?;
    if !scrub.clean() {
        return Err(format!(
            "post-replay scrub found damage (torn stripe): {} mismatch(es), {} unavailable",
            scrub.mismatches, scrub.unavailable_devices
        ));
    }

    let block = dev.block_size();
    let total_blocks = dev.capacity() as usize / block;
    let image = dev
        .read_at(0, total_blocks * block)
        .map_err(|e| format!("read: {e}"))?;

    // Shadow model: last acknowledged writer per block, plus the one
    // in-flight batch the kill may or may not have landed.
    let mut last_writer: Vec<Option<u64>> = vec![None; total_blocks];
    for k in 0..acks {
        for b in batch_blocks(seed, k, total_blocks) {
            last_writer[b] = Some(k);
        }
    }
    let inflight: BTreeSet<usize> = if acks < MAX_BATCHES {
        batch_blocks(seed, acks, total_blocks).into_iter().collect()
    } else {
        BTreeSet::new()
    };
    for b in 0..total_blocks {
        let got = &image[b * block..(b + 1) * block];
        let acked_ok = match last_writer[b] {
            Some(k) => got == fill(seed, k, b, block),
            None => got.iter().all(|&x| x == 0),
        };
        let inflight_ok = inflight.contains(&b) && got == fill(seed, acks, b, block);
        if !acked_ok && !inflight_ok {
            return Err(format!(
                "block {b}: lost or torn write (last acked writer {:?}, {} acked batch(es), \
                 {replayed} record(s) replayed)",
                last_writer[b], acks
            ));
        }
    }
    drop(dev);
    std::fs::remove_dir_all(&dir).map_err(|e| format!("cleanup: {e}"))?;
    Ok(())
}

fn report(tallies: &[BackendTally], iters: u64, seed: u64) -> Json {
    Json::obj([
        ("harness", Json::str("chaos_kill9")),
        (
            "config",
            Json::obj([
                ("code", Json::str(opts().code.to_string())),
                ("symbol", Json::int(opts().symbol)),
                ("stripes", Json::int(opts().stripes)),
                ("shards", Json::int(SHARDS)),
                ("iterations_per_backend", Json::int64(iters)),
                ("seed", Json::int64(seed)),
            ]),
        ),
        (
            "results",
            Json::arr(tallies.iter().map(|t| {
                Json::obj([
                    ("backend", Json::str(t.backend.clone())),
                    ("iterations", Json::int64(t.iterations)),
                    ("acked_batches", Json::int64(t.total_acked)),
                    ("unclean_opens", Json::int64(t.unclean_opens)),
                    ("replayed_records", Json::int64(t.total_replayed)),
                    ("failures", Json::int(t.failures.len())),
                    (
                        "failure_detail",
                        Json::arr(t.failures.iter().map(|f| Json::str(f.clone()))),
                    ),
                ])
            })),
        ),
        (
            "all_verified",
            Json::Bool(tallies.iter().all(|t| t.failures.is_empty())),
        ),
    ])
}
