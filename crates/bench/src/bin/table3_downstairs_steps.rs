//! Regenerates **Table 3**: the downstairs encoding schedule for the
//! paper's running example (n = 8, r = 4, m = 2, e = (1,1,2)) with inside
//! global parities.

use stair::{Config, EncodingMethod, StairCodec};

fn main() {
    let config = Config::new(8, 4, 2, &[1, 1, 2]).expect("config");
    let codec: StairCodec = StairCodec::new(config).expect("codec");
    let schedule = codec
        .encode_schedule(EncodingMethod::Downstairs)
        .expect("schedule");
    println!("Table 3: downstairs encoding, n=8 r=4 m=2 e=(1,1,2)\n");
    print!("{}", schedule.render(codec.layout()));
    println!(
        "\ntotal Mult_XORs: {} (Eq. 6 predicts {})",
        schedule.mult_xors(),
        {
            let c = stair::MultXorCounts::analytic(codec.config());
            c.downstairs
        }
    );
    let up = codec
        .encode_schedule(EncodingMethod::Upstairs)
        .expect("schedule");
    println!("upstairs Mult_XORs: {} (Eq. 5)", up.mult_xors());
}
