//! Regenerates **Fig. 17**: MTTDL_sys vs P_bit under *independent* sector
//! failures — (a) RS, STAIR/SD s = 1, STAIR e = (2), (1,1), SD s = 2;
//! (b) STAIR s = 3 variants e = (3), (1,2), (1,1,1).

use stair_reliability::{Scheme, SectorModel, SystemParams};

fn main() {
    let params = SystemParams::paper_defaults();
    let model = SectorModel::Independent;
    let pbits: Vec<f64> = (0..=16)
        .map(|i| 1e-14 * 10f64.powf(i as f64 / 4.0))
        .collect();

    println!("Fig. 17(a): MTTDL_sys (hours) vs P_bit, independent sector failures\n");
    let schemes_a: Vec<(&str, Scheme)> = vec![
        ("RS (s=0)", Scheme::reed_solomon()),
        ("STAIR/SD s=1", Scheme::stair(&[1])),
        ("STAIR e=(2)", Scheme::stair(&[2])),
        ("STAIR e=(1,1)", Scheme::stair(&[1, 1])),
        ("SD s=2", Scheme::sd(2)),
    ];
    print_curves(&params, &model, &pbits, &schemes_a);

    println!("\nFig. 17(b): STAIR configurations with s = 3\n");
    let schemes_b: Vec<(&str, Scheme)> = vec![
        ("STAIR e=(3)", Scheme::stair(&[3])),
        ("STAIR e=(1,2)", Scheme::stair(&[1, 2])),
        ("STAIR e=(1,1,1)", Scheme::stair(&[1, 1, 1])),
    ];
    print_curves(&params, &model, &pbits, &schemes_b);

    println!("\n(paper: s=1 beats RS by >2 orders at P_bit=1e-14; e=(1,2) is the most");
    println!(" reliable s=3 shape under independent failures — §7.2.1)");
}

fn print_curves(
    params: &SystemParams,
    model: &SectorModel,
    pbits: &[f64],
    schemes: &[(&str, Scheme)],
) {
    print!("{:>10}", "P_bit");
    for (name, _) in schemes {
        print!(" {name:>16}");
    }
    println!();
    for &pb in pbits {
        print!("{pb:>10.1e}");
        for (_, scheme) in schemes {
            print!(" {:>16.3e}", params.mttdl_sys(scheme, model, pb));
        }
        println!();
    }
}
