//! Regenerates **Fig. 13**: worst-case decoding speed of STAIR vs SD codes
//! (the m leftmost chunks plus s further sectors lost), plus the §6.2.2
//! pure-device-failure (s = 0) comparison.

use stair::{Config, StairCodec, Stripe};
use stair_bench::{
    print_row, reps, sd_decode_speed, stair_decode_speed, stripe_bytes, throughput_mbps,
    worst_case_e,
};

fn main() {
    let stripe = stripe_bytes();
    println!(
        "Fig. 13: worst-case decoding speed (MB/s), stripe = {} MB\n",
        stripe / (1024 * 1024)
    );

    println!("(a) varying n, r = 16");
    sweep(&[4, 8, 12, 16, 20, 24, 28, 32], |n| (n, 16), stripe);

    println!("\n(b) varying r, n = 16");
    sweep(&[4, 8, 12, 16, 20, 24, 28, 32], |r| (16, r), stripe);

    println!("\n§6.2.2: decoding with only device failures (s = 0) vs worst case, n = r = 16");
    for m in 1..=3usize {
        let e = worst_case_e(16, 16, m, 1).expect("feasible");
        let worst = stair_decode_speed(16, 16, m, &e, stripe);
        let device_only = stair_device_only_decode_speed(16, 16, m, &e, stripe);
        println!(
            "  m={m}: device-only {device_only:.0} MB/s vs worst-case(s=1) {worst:.0} MB/s \
             (+{:.1}%)",
            (device_only / worst - 1.0) * 100.0
        );
    }
}

fn sweep(xs: &[usize], to_nr: impl Fn(usize) -> (usize, usize), stripe: usize) {
    for m in 1..=3usize {
        println!("  m = {m}:");
        for &x in xs {
            let (n, r) = to_nr(x);
            if m >= n {
                continue;
            }
            let mut row: Vec<(String, f64)> = Vec::new();
            for s in 1..=3usize {
                if let Some(v) = sd_decode_speed(n, r, m, s, stripe) {
                    row.push((format!("SD{s}"), v));
                }
            }
            for s in 1..=4usize {
                if let Some(e) = worst_case_e(n, r, m, s) {
                    row.push((format!("ST{s}"), stair_decode_speed(n, r, m, &e, stripe)));
                }
            }
            print_row(&format!("    n={n} r={r}"), &row);
        }
    }
}

/// Decode speed when only the m leftmost devices failed (identical to
/// Reed-Solomon decoding; §6.2.2).
fn stair_device_only_decode_speed(
    n: usize,
    r: usize,
    m: usize,
    e: &[usize],
    stripe_size: usize,
) -> f64 {
    let config = Config::new(n, r, m, e).expect("config");
    let symbol = (stripe_size / (n * r)).max(16) & !15;
    let codec: StairCodec = StairCodec::new(config.clone()).expect("codec");
    let mut stripe = Stripe::new(config, symbol).expect("stripe");
    stripe.fill_pattern(9);
    codec.encode(&mut stripe).expect("encode");
    let erased: Vec<(usize, usize)> = (0..m)
        .flat_map(|c| (0..r).map(move |row| (row, c)))
        .collect();
    let plan = codec.plan_decode(&erased).expect("plan");
    throughput_mbps(symbol * n * r, reps(), move || {
        codec.apply_plan(&plan, &mut stripe).expect("decode");
    })
}
