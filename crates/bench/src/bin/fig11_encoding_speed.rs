//! Regenerates **Fig. 11**: encoding speed of STAIR vs SD codes.
//!
//! (a) varying n with r = 16;  (b) varying r with n = 16;
//! m ∈ {1, 2, 3}, STAIR s ∈ {1..4} (worst-case e per s), SD s ∈ {1..3}.
//!
//! Set `STAIR_BENCH_STRIPE_MB=32` to match the paper's stripe size.

use stair_bench::{print_row, sd_encode_speed, stair_encode_speed, stripe_bytes, worst_case_e};

fn main() {
    let stripe = stripe_bytes();
    println!(
        "Fig. 11: encoding speed (MB/s), stripe = {} MB, worst-case e per s\n",
        stripe / (1024 * 1024)
    );

    println!("(a) varying n, r = 16");
    sweep(&[4, 8, 12, 16, 20, 24, 28, 32], |n| (n, 16), stripe);

    println!("\n(b) varying r, n = 16");
    sweep(&[4, 8, 12, 16, 20, 24, 28, 32], |r| (16, r), stripe);

    println!("\n(paper: STAIR beats SD by ~106% on average through parity reuse; speed");
    println!(" increases with n and r as the parity fraction shrinks — §6.2.1)");
}

fn sweep(xs: &[usize], to_nr: impl Fn(usize) -> (usize, usize), stripe: usize) {
    for m in 1..=3usize {
        println!("  m = {m}:");
        for &x in xs {
            let (n, r) = to_nr(x);
            if m >= n {
                continue;
            }
            let mut row: Vec<(String, f64)> = Vec::new();
            for s in 1..=3usize {
                if let Some(v) = sd_encode_speed(n, r, m, s, stripe) {
                    row.push((format!("SD{s}"), v));
                }
            }
            for s in 1..=4usize {
                if let Some(e) = worst_case_e(n, r, m, s) {
                    row.push((format!("ST{s}"), stair_encode_speed(n, r, m, &e, stripe)));
                }
            }
            print_row(&format!("    n={n} r={r}"), &row);
        }
    }
}
