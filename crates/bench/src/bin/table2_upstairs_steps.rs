//! Regenerates **Table 2**: the upstairs decoding schedule for the paper's
//! running example (n = 8, r = 4, m = 2, e = (1,1,2)) under the Fig. 4
//! worst-case failure pattern.

use stair::{Config, GlobalPlacement, StairCodec};

fn main() {
    let config =
        Config::with_placement(8, 4, 2, &[1, 1, 2], GlobalPlacement::Outside).expect("config");
    let codec: StairCodec = StairCodec::new(config).expect("codec");
    let erased: Vec<(usize, usize)> = (0..4)
        .flat_map(|i| [(i, 6), (i, 7)])
        .chain([(3, 3), (3, 4), (2, 5), (3, 5)])
        .collect();
    let plan = codec.plan_decode(&erased).expect("plan");
    println!("Table 2: upstairs decoding, n=8 r=4 m=2 e=(1,1,2)");
    println!("failure pattern: chunks 6,7 failed; sector failures (3,3) (3,4) (2,5) (3,5)\n");
    print!("{}", plan.schedule().render(codec.layout()));
    println!("\ntotal Mult_XORs: {}", plan.mult_xors());
}
