//! Regenerates **Fig. 15**: update penalty of STAIR (min/avg/max over all
//! feasible e) vs SD vs Reed–Solomon, for n = r = 16, m ∈ {1, 2, 3}.

use stair::{Config, StairCodec};
use stair_bench::{feasible_es, AnySd};
use stair_gf::Field;

fn main() {
    let (n, r) = (16usize, 16usize);
    println!("Fig. 15: update penalty, n = r = 16\n");
    for m in 1..=3usize {
        println!("  m = {m}:");
        println!("    RS: {m}.00 (each data symbol updates its m row parities)");
        for s in 1..=4usize {
            // STAIR: range over all feasible e.
            let mut penalties: Vec<f64> = Vec::new();
            for e in feasible_es(n, r, m, s) {
                let config = Config::new(n, r, m, &e).expect("feasible");
                let codec: StairCodec = StairCodec::new(config).expect("codec");
                penalties.push(codec.relations().update_penalty().average);
            }
            penalties.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let avg = penalties.iter().sum::<f64>() / penalties.len() as f64;
            print!(
                "    s={s}: STAIR min/avg/max = {:.2}/{avg:.2}/{:.2}",
                penalties.first().expect("non-empty"),
                penalties.last().expect("non-empty"),
            );
            if s <= 3 {
                match AnySd::new(n, r, m, s) {
                    Ok(code) => print!("   SD = {:.2}", sd_update_penalty(&code)),
                    Err(_) => print!("   SD = (no construction)"),
                }
            } else {
                print!("   SD = (no construction for s > 3)");
            }
            println!();
        }
    }
    println!("\n(paper: STAIR's range covers SD's value; both exceed RS — suited to");
    println!(" systems with rare updates or full-stripe writes — §6.3)");
}

/// Average number of parity sectors touched when one SD data sector is
/// updated (non-zero columns of the dense encoding matrix).
fn sd_update_penalty(code: &AnySd) -> f64 {
    match code {
        AnySd::G8(c) => dense_penalty(c),
        AnySd::G16(c) => dense_penalty(c),
    }
}

fn dense_penalty<F: Field>(code: &stair_sd::SdCode<F>) -> f64 {
    // encode matrix is parity × data; penalty of data symbol d = number of
    // parities with a non-zero coefficient on d.
    let data = code.data_positions().len();
    let mut total = 0usize;
    for d in 0..data {
        let mut touched = 0usize;
        for p in 0..code.parity_positions().len() {
            if code.encode_coefficient(p, d) != F::zero() {
                touched += 1;
            }
        }
        total += touched;
    }
    total as f64 / data as f64
}
