//! Throughput harness for the stair-net service: MB/s and req/s over
//! the wire, for sequential and random reads and writes, at 1..N client
//! threads, clean vs degraded (one shard with a failed device) — the
//! end-to-end numbers every later scaling PR is measured against.
//!
//! The server runs in-process on a loopback port (ephemeral, `:0`);
//! every byte still crosses the full protocol stack: framing, request
//! pipelining, worker-pool dispatch, shard placement, and per-response
//! checksums. Each client thread owns one connection and a disjoint
//! region of the block space, so measurements are contention-free at
//! the data level and contend only where a real service would (socket,
//! worker pool, shard locks). The timing loops are the device-generic
//! driver (`stair_bench::driver`) shared with `store_throughput`: the
//! same code measures a local store and a TCP client, because both are
//! `BlockDevice`s.
//!
//! Flags: `--json <path>` additionally writes the machine-readable
//! report documented in `EXPERIMENTS.md`.
//!
//! Environment knobs: `STAIR_NET_MB` (logical capacity, default 4),
//! `STAIR_NET_SHARDS` (default 4), `STAIR_NET_CODE` (codec spec,
//! default `stair:8,16,2,1-2`), `STAIR_NET_THREADS` (comma list,
//! default `1,2,4`), `STAIR_NET_WORKERS` (server workers, default 4).

use stair_bench::driver::{measure_devices, measure_sampled_reads, DevMeasurement, DevOp, IoShape};
use stair_bench::zipf::{Dist, Sampler};
use stair_code::CodecSpec;
use stair_device::{BlockDevice, DeviceSpec};
use stair_net::json::{metrics_json, Json};
use stair_net::{open_device, Client, Server, ServerConfig, ShardSet};
use stair_store::{StoreOptions, StripeStore};

/// Sequential transfers go in 64 KiB requests; random ones in single
/// blocks (the small-write / small-read shape that exercises the
/// parity-delta path).
const SEQ_IO: usize = 64 * 1024;

/// Seed for the zipfian cache-phase sampler — fixed so the cached and
/// uncached runs replay the identical offset sequence.
const CACHE_SEED: u64 = 0x00C0_FFEE;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Measurement {
    phase: &'static str,
    op: &'static str,
    threads: usize,
    timing: DevMeasurement,
}

fn main() {
    stair_bench::trace_from_env();
    let json_path = parse_json_flag();
    let mb = env_usize("STAIR_NET_MB", 4);
    let shards = env_usize("STAIR_NET_SHARDS", 4).max(1);
    let workers = env_usize("STAIR_NET_WORKERS", 4).max(1);
    let code: CodecSpec = std::env::var("STAIR_NET_CODE")
        .unwrap_or_else(|_| "stair:8,16,2,1-2".into())
        .parse()
        .expect("bad STAIR_NET_CODE spec");
    let threads: Vec<usize> = std::env::var("STAIR_NET_THREADS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .map(|t| t.trim().parse().expect("bad STAIR_NET_THREADS entry"))
        .collect();
    let symbol = 4096usize;

    // Size stripes-per-shard so total data capacity ≈ the requested MB.
    let dir = std::env::temp_dir().join(format!("stair-net-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let probe_dir = dir.join("probe");
    let per_stripe = {
        let s = StripeStore::create(
            &probe_dir,
            &StoreOptions {
                code: code.clone(),
                symbol,
                stripes: 1,
            },
        )
        .expect("probe store");
        s.capacity() as usize
    };
    std::fs::remove_dir_all(&probe_dir).expect("clean probe");
    let stripes = (mb * 1024 * 1024).div_ceil(per_stripe * shards).max(2);
    let opts = StoreOptions {
        code: code.clone(),
        symbol,
        stripes,
    };

    let set = ShardSet::create(&dir, shards, &opts).expect("create shards");
    let capacity = set.capacity() as usize;
    let server = Server::bind(
        "127.0.0.1:0",
        set,
        ServerConfig {
            workers,
            write_batch: 32,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr().to_string();
    let running = std::thread::spawn(move || server.run());

    println!(
        "== net_throughput: {shards} shard(s) of {code}, {stripes} stripes each, {:.1} MiB total, {workers} server worker(s), symbol {symbol}",
        capacity as f64 / (1024.0 * 1024.0)
    );

    let shape = IoShape {
        seq_io: SEQ_IO,
        rand_io: symbol,
    };
    let mut results: Vec<Measurement> = Vec::new();
    let mut cache_summary = Json::Null;
    for phase in ["clean", "degraded"] {
        if phase == "degraded" {
            // The cache phase runs on the still-clean store (between
            // the two phases): the same zipfian single-block read
            // sequence against a plain `tcp:` client and a
            // `cache:tcp:` wrapper, bytes compared, hit rate pulled
            // from the cache's own counters.
            cache_summary = cache_phase(&addr, capacity, symbol, &mut results);
            // One whole device lost on shard 0: reads through that shard
            // reconstruct, writes keep flowing around it.
            let admin = Client::connect(&addr).expect("admin connect");
            admin.fail_device(0, 1).expect("fail device");
            println!("-- degraded: shard 0 lost device 1 --");
        }
        for &t in &threads {
            // One connection per thread, reused across warmup + timed.
            let clients: Vec<Client> = (0..t)
                .map(|_| Client::connect(&addr).expect("bench client"))
                .collect();
            let devs: Vec<&dyn BlockDevice> =
                clients.iter().map(|c| c as &dyn BlockDevice).collect();
            for op in [
                DevOp::SeqWrite,
                DevOp::SeqRead,
                DevOp::RandWrite,
                DevOp::RandRead,
            ] {
                let timing = measure_devices(&devs, op, capacity, shape, 1);
                println!(
                    "{:<9} {:<10} threads={t:<2}  MB/s={:>8.1}  req/s={:>9.1}  p50={:>7.0}us  p99={:>7.0}us",
                    phase,
                    op.name(),
                    timing.mb_per_s(),
                    timing.req_per_s(),
                    timing.lat_p50_us,
                    timing.lat_p99_us
                );
                results.push(Measurement {
                    phase,
                    op: op.name(),
                    threads: t,
                    timing,
                });
            }
        }
    }

    // Sanity: after all that traffic, a full read still verifies length
    // (contents are per-thread patterns; transport checksums verified
    // every response already).
    let admin = Client::connect(&addr).expect("admin");
    let got = admin.read_at(0, capacity).expect("final degraded read");
    assert_eq!(got.len(), capacity);

    // Pull the server's registry over the METRICS opcode — per-opcode
    // request counts, latency histograms, store counters — so the JSON
    // report carries the service's own view of the run.
    let server_metrics = admin.metrics().expect("server metrics");
    println!(
        "-- server metrics: {} write req, {} read req over the wire",
        server_metrics.counter("srv.req.write").unwrap_or(0),
        server_metrics.counter("srv.req.read").unwrap_or(0)
    );
    admin.shutdown_server().expect("shutdown");
    running.join().expect("server thread").expect("server run");
    std::fs::remove_dir_all(&dir).expect("cleanup");

    if let Some(path) = json_path {
        let report = json_report(
            shards,
            &code,
            symbol,
            stripes,
            capacity,
            workers,
            &results,
            cache_summary,
            &server_metrics,
        );
        std::fs::write(&path, report.to_text()).expect("write --json report");
        println!("wrote JSON report to {path}");
    }
}

/// The cache-tier phase: the identical seeded zipfian single-block
/// read workload against a plain `tcp:` client and a `cache:tcp:`
/// wrapper over the same server. Returns the JSON summary (hit rate,
/// speedup, byte-equality) and pushes both timings into `results`.
fn cache_phase(addr: &str, capacity: usize, block: usize, results: &mut Vec<Measurement>) -> Json {
    let dist = Dist::Zipf(1.0);
    let slots = capacity / block;
    let ops = (slots * 2).max(2048);

    let plain = Client::connect(addr).expect("cache-phase plain client");
    let uncached = measure_sampled_reads(&plain, capacity, block, dist, CACHE_SEED, ops, 2);

    let spec: DeviceSpec = format!("cache:tcp:{addr}?mb=64")
        .parse()
        .expect("cache spec");
    let cached_dev = open_device(&spec).expect("open cache:tcp:");
    let cached = measure_sampled_reads(
        cached_dev.as_ref(),
        capacity,
        block,
        dist,
        CACHE_SEED,
        ops,
        2,
    );

    // Correctness before speed: the cached device must return the very
    // bytes the server holds, over the same sampled sequence.
    let mut sampler = Sampler::new(dist, slots, CACHE_SEED);
    for _ in 0..ops.min(512) {
        let at = (sampler.next_slot() * block) as u64;
        let want = plain.read_at(at, block).expect("uncached read");
        let got = cached_dev.read_at(at, block).expect("cached read");
        assert_eq!(want, got, "cache:tcp: returned different bytes at {at}");
    }

    let snap = cached_dev.metrics().expect("cache metrics");
    let hits = snap
        .counter(stair_obs::metric_names::CACHE_HIT)
        .unwrap_or(0);
    let misses = snap
        .counter(stair_obs::metric_names::CACHE_MISS)
        .unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let speedup = cached.req_per_s() / uncached.req_per_s().max(1e-9);
    println!(
        "-- cache: {dist} single-block reads  tcp:={:>9.0} req/s  cache:tcp:={:>9.0} req/s  x{speedup:.1}  hit rate {:.1}%",
        uncached.req_per_s(),
        cached.req_per_s(),
        100.0 * hit_rate
    );
    results.push(Measurement {
        phase: "cache",
        op: "zipf_read",
        threads: 1,
        timing: uncached,
    });
    results.push(Measurement {
        phase: "cache",
        op: "zipf_read_cached",
        threads: 1,
        timing: cached,
    });
    Json::obj([
        ("dist", Json::str(dist.to_string())),
        ("seed", Json::int(CACHE_SEED as usize)),
        ("ops_per_pass", Json::int(ops)),
        ("cache_mb", Json::int(64)),
        ("hits", Json::int(hits as usize)),
        ("misses", Json::int(misses as usize)),
        ("hit_rate", Json::Num(hit_rate)),
        ("speedup_vs_uncached", Json::Num(speedup)),
        ("bytes_identical", Json::Bool(true)),
    ])
}

/// `--json <path>` from argv (the only flag this harness takes).
fn parse_json_flag() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: net_throughput [--json <path>]   (got {other:?})");
            std::process::exit(2);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn json_report(
    shards: usize,
    code: &CodecSpec,
    symbol: usize,
    stripes: usize,
    capacity: usize,
    workers: usize,
    results: &[Measurement],
    cache_summary: Json,
    server_metrics: &stair_obs::MetricsSnapshot,
) -> Json {
    Json::obj([
        ("harness", Json::str("net_throughput")),
        (
            "config",
            Json::obj([
                ("shards", Json::int(shards)),
                ("code", Json::str(code.to_string())),
                ("symbol", Json::int(symbol)),
                ("stripes_per_shard", Json::int(stripes)),
                ("capacity_bytes", Json::int(capacity)),
                ("server_workers", Json::int(workers)),
                ("seq_io_bytes", Json::int(SEQ_IO)),
                ("rand_io_bytes", Json::int(symbol)),
            ]),
        ),
        (
            "results",
            Json::arr(results.iter().map(|m| {
                Json::obj([
                    ("phase", Json::str(m.phase)),
                    ("op", Json::str(m.op)),
                    ("threads", Json::int(m.threads)),
                    ("mb_per_s", Json::Num(m.timing.mb_per_s())),
                    ("req_per_s", Json::Num(m.timing.req_per_s())),
                    ("lat_p50_us", Json::Num(m.timing.lat_p50_us)),
                    ("lat_p99_us", Json::Num(m.timing.lat_p99_us)),
                    ("lat_max_us", Json::Num(m.timing.lat_max_us)),
                    ("bytes", Json::int(m.timing.bytes)),
                    ("requests", Json::int(m.timing.requests)),
                    ("seconds", Json::Num(m.timing.seconds)),
                ])
            })),
        ),
        ("cache", cache_summary),
        ("metrics", metrics_json(server_metrics)),
    ])
}
