//! Throughput harness for the stair-net service: MB/s and req/s over
//! the wire, for sequential and random reads and writes, at 1..N client
//! threads, clean vs degraded (one shard with a failed device) — the
//! end-to-end numbers every later scaling PR is measured against.
//!
//! The server runs in-process on a loopback port (ephemeral, `:0`);
//! every byte still crosses the full protocol stack: framing, request
//! pipelining, worker-pool dispatch, shard placement, and per-response
//! checksums. Each client thread owns one connection and a disjoint
//! region of the block space, so measurements are contention-free at
//! the data level and contend only where a real service would (socket,
//! worker pool, shard locks).
//!
//! Flags: `--json <path>` additionally writes the machine-readable
//! report documented in `EXPERIMENTS.md`.
//!
//! Environment knobs: `STAIR_NET_MB` (logical capacity, default 4),
//! `STAIR_NET_SHARDS` (default 4), `STAIR_NET_CODE` (codec spec,
//! default `stair:8,16,2,1-2`), `STAIR_NET_THREADS` (comma list,
//! default `1,2,4`), `STAIR_NET_WORKERS` (server workers, default 4).

use std::time::Instant;

use stair_code::CodecSpec;
use stair_net::json::Json;
use stair_net::{Client, Server, ServerConfig, ShardSet};
use stair_store::{StoreOptions, StripeStore};

/// Sequential transfers go in 64 KiB requests; random ones in single
/// blocks (the small-write / small-read shape that exercises the
/// parity-delta path).
const SEQ_IO: usize = 64 * 1024;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Measurement {
    phase: &'static str,
    op: &'static str,
    threads: usize,
    bytes: usize,
    requests: usize,
    seconds: f64,
}

impl Measurement {
    fn mb_per_s(&self) -> f64 {
        self.bytes as f64 / self.seconds / (1024.0 * 1024.0)
    }
    fn req_per_s(&self) -> f64 {
        self.requests as f64 / self.seconds
    }
}

fn main() {
    let json_path = parse_json_flag();
    let mb = env_usize("STAIR_NET_MB", 4);
    let shards = env_usize("STAIR_NET_SHARDS", 4).max(1);
    let workers = env_usize("STAIR_NET_WORKERS", 4).max(1);
    let code: CodecSpec = std::env::var("STAIR_NET_CODE")
        .unwrap_or_else(|_| "stair:8,16,2,1-2".into())
        .parse()
        .expect("bad STAIR_NET_CODE spec");
    let threads: Vec<usize> = std::env::var("STAIR_NET_THREADS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .map(|t| t.trim().parse().expect("bad STAIR_NET_THREADS entry"))
        .collect();
    let symbol = 4096usize;

    // Size stripes-per-shard so total data capacity ≈ the requested MB.
    let dir = std::env::temp_dir().join(format!("stair-net-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let probe_dir = dir.join("probe");
    let per_stripe = {
        let s = StripeStore::create(
            &probe_dir,
            &StoreOptions {
                code: code.clone(),
                symbol,
                stripes: 1,
            },
        )
        .expect("probe store");
        s.capacity() as usize
    };
    std::fs::remove_dir_all(&probe_dir).expect("clean probe");
    let stripes = (mb * 1024 * 1024).div_ceil(per_stripe * shards).max(2);
    let opts = StoreOptions {
        code: code.clone(),
        symbol,
        stripes,
    };

    let set = ShardSet::create(&dir, shards, &opts).expect("create shards");
    let capacity = set.capacity() as usize;
    let server = Server::bind(
        "127.0.0.1:0",
        set,
        ServerConfig {
            workers,
            write_batch: 32,
        },
    )
    .expect("bind server");
    let addr = server.local_addr().to_string();
    let running = std::thread::spawn(move || server.run());

    println!(
        "== net_throughput: {shards} shard(s) of {code}, {stripes} stripes each, {:.1} MiB total, {workers} server worker(s), symbol {symbol}",
        capacity as f64 / (1024.0 * 1024.0)
    );

    let mut results: Vec<Measurement> = Vec::new();
    for phase in ["clean", "degraded"] {
        if phase == "degraded" {
            // One whole device lost on shard 0: reads through that shard
            // reconstruct, writes keep flowing around it.
            let mut admin = Client::connect(&addr).expect("admin connect");
            admin.fail_device(0, 1).expect("fail device");
            println!("-- degraded: shard 0 lost device 1 --");
        }
        for &t in &threads {
            for op in ["seq_write", "seq_read", "rand_write", "rand_read"] {
                let m = measure(&addr, capacity, phase, op, t, symbol);
                println!(
                    "{:<9} {op:<10} threads={t:<2}  MB/s={:>8.1}  req/s={:>9.1}",
                    phase,
                    m.mb_per_s(),
                    m.req_per_s()
                );
                results.push(m);
            }
        }
    }

    // Sanity: after all that traffic, a full read still verifies length
    // (contents are per-thread patterns; transport checksums verified
    // every response already).
    let mut admin = Client::connect(&addr).expect("admin");
    let got = admin.read_at(0, capacity).expect("final degraded read");
    assert_eq!(got.len(), capacity);
    admin.shutdown_server().expect("shutdown");
    running.join().expect("server thread").expect("server run");
    std::fs::remove_dir_all(&dir).expect("cleanup");

    if let Some(path) = json_path {
        let report = json_report(shards, &code, symbol, stripes, capacity, workers, &results);
        std::fs::write(&path, report.to_text()).expect("write --json report");
        println!("wrote JSON report to {path}");
    }
}

/// `--json <path>` from argv (the only flag this harness takes).
fn parse_json_flag() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: net_throughput [--json <path>]   (got {other:?})");
            std::process::exit(2);
        }
    }
}

/// One measurement: `t` clients over disjoint regions, one timed pass.
fn measure(
    addr: &str,
    capacity: usize,
    phase: &'static str,
    op: &'static str,
    t: usize,
    block: usize,
) -> Measurement {
    let region = capacity / t / SEQ_IO * SEQ_IO;
    assert!(region >= SEQ_IO, "capacity too small for {t} threads");
    let pass = || -> Vec<(usize, usize)> {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..t {
                handles.push(scope.spawn(move || run_workload(addr, op, c, region, block)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("bench thread"))
                .collect()
        })
    };
    pass(); // warmup (pays connection setup and first-touch costs)
    let start = Instant::now();
    let totals = pass();
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let (bytes, requests) = totals
        .into_iter()
        .fold((0, 0), |(b, r), (tb, tr)| (b + tb, r + tr));
    Measurement {
        phase,
        op,
        threads: t,
        bytes,
        requests,
        seconds,
    }
}

/// The per-thread workload body shared by the warmup and timed passes.
fn run_workload(addr: &str, op: &str, c: usize, region: usize, block: usize) -> (usize, usize) {
    let mut client = Client::connect(addr).expect("bench client");
    let base = (c * region) as u64;
    let mut bytes = 0usize;
    let mut requests = 0usize;
    match op {
        "seq_write" => {
            let payload = pattern(SEQ_IO, c as u64);
            let mut at = 0;
            while at + SEQ_IO <= region {
                client.write_at(base + at as u64, &payload).expect("write");
                bytes += SEQ_IO;
                requests += 1;
                at += SEQ_IO;
            }
        }
        "seq_read" => {
            let mut at = 0;
            while at + SEQ_IO <= region {
                let got = client.read_at(base + at as u64, SEQ_IO).expect("read");
                assert_eq!(got.len(), SEQ_IO);
                bytes += SEQ_IO;
                requests += 1;
                at += SEQ_IO;
            }
        }
        "rand_write" | "rand_read" => {
            let ops = (region / SEQ_IO).max(1) * (SEQ_IO / block).min(16);
            let payload = pattern(block, c as u64 + 7);
            let mut state = 0x9E3779B97F4A7C15u64.wrapping_add(c as u64);
            for _ in 0..ops {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let slot = (state >> 16) as usize % (region / block);
                let at = base + (slot * block) as u64;
                if op == "rand_write" {
                    client.write_at(at, &payload).expect("rand write");
                } else {
                    let got = client.read_at(at, block).expect("rand read");
                    assert_eq!(got.len(), block);
                }
                bytes += block;
                requests += 1;
            }
        }
        other => unreachable!("unknown op {other}"),
    }
    (bytes, requests)
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(seed * 131) % 251) as u8)
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn json_report(
    shards: usize,
    code: &CodecSpec,
    symbol: usize,
    stripes: usize,
    capacity: usize,
    workers: usize,
    results: &[Measurement],
) -> Json {
    Json::obj([
        ("harness", Json::str("net_throughput")),
        (
            "config",
            Json::obj([
                ("shards", Json::int(shards)),
                ("code", Json::str(code.to_string())),
                ("symbol", Json::int(symbol)),
                ("stripes_per_shard", Json::int(stripes)),
                ("capacity_bytes", Json::int(capacity)),
                ("server_workers", Json::int(workers)),
                ("seq_io_bytes", Json::int(SEQ_IO)),
                ("rand_io_bytes", Json::int(symbol)),
            ]),
        ),
        (
            "results",
            Json::arr(results.iter().map(|m| {
                Json::obj([
                    ("phase", Json::str(m.phase)),
                    ("op", Json::str(m.op)),
                    ("threads", Json::int(m.threads)),
                    ("mb_per_s", Json::Num(m.mb_per_s())),
                    ("req_per_s", Json::Num(m.req_per_s())),
                    ("bytes", Json::int(m.bytes)),
                    ("requests", Json::int(m.requests)),
                    ("seconds", Json::Num(m.seconds)),
                ])
            })),
        ),
    ])
}
