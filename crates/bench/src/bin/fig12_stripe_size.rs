//! Regenerates **Fig. 12**: encoding speed vs stripe size (128 KB .. 512
//! MB) for n = r = 16. Cap the largest size with
//! `STAIR_BENCH_MAX_STRIPE_MB` (default 128) if memory is tight.

use stair_bench::{print_row, sd_encode_speed, stair_encode_speed, worst_case_e};

fn main() {
    let max_mb: usize = std::env::var("STAIR_BENCH_MAX_STRIPE_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let (n, r) = (16usize, 16usize);
    println!("Fig. 12: encoding speed (MB/s) vs stripe size, n = r = 16\n");
    for m in 1..=3usize {
        println!("  m = {m}:");
        let mut kb = 128usize;
        while kb <= max_mb * 1024 {
            let stripe = kb * 1024;
            let mut row: Vec<(String, f64)> = Vec::new();
            for s in 1..=3usize {
                if let Some(v) = sd_encode_speed(n, r, m, s, stripe) {
                    row.push((format!("SD{s}"), v));
                }
            }
            for s in 1..=4usize {
                if let Some(e) = worst_case_e(n, r, m, s) {
                    row.push((format!("ST{s}"), stair_encode_speed(n, r, m, &e, stripe)));
                }
            }
            let label = if kb >= 1024 {
                format!("    {} MB", kb / 1024)
            } else {
                format!("    {kb} KB")
            };
            print_row(&label, &row);
            kb *= 4;
        }
    }
    println!("\n(paper: speed first rises then falls with stripe size — SIMD vs cache");
    println!(" effects; STAIR's advantage over SD persists at every size — §6.2.1)");
}
