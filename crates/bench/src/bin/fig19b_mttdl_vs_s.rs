//! Regenerates **Fig. 19(b)**: MTTDL_sys of STAIR with e = (s) vs
//! e = (1, s−1) as s grows, for four (b1, α) burstiness levels and
//! P_bit ∈ {1e-14, 1e-12, 1e-10}.

use stair_reliability::{BurstModel, Scheme, SectorModel, SystemParams};

fn main() {
    let params = SystemParams::paper_defaults();
    let pairs = [(0.9, 1.0), (0.99, 2.0), (0.999, 3.0), (0.9999, 4.0)];
    println!("Fig. 19(b): MTTDL_sys (hours) vs s for e=(s) and e=(1,s−1)\n");
    for pb in [1e-14, 1e-12, 1e-10] {
        println!("P_bit = {pb:.0e}:");
        print!("{:>4}", "s");
        for (b1, a) in pairs {
            print!("  (s)@{b1}/{a:<4}  (1,s-1)@{b1}/{a:<4}");
        }
        println!();
        for s in 1..=12usize {
            print!("{s:>4}");
            for (b1, a) in pairs {
                let model = SectorModel::Correlated(BurstModel::from_pareto(b1, a, params.r));
                let es = params.mttdl_sys(&Scheme::stair(&[s]), &model, pb);
                let e1s = if s >= 2 {
                    params.mttdl_sys(&Scheme::stair(&[1, s - 1]), &model, pb)
                } else {
                    es
                };
                print!("  {es:>12.3e}  {e1s:>16.3e}");
            }
            println!();
        }
        println!();
    }
    println!("(paper: under bursty failures e=(s) pulls away as s grows — the case for");
    println!(" supporting s beyond SD's s ≤ 3; under near-independent failures the");
    println!(" ordering can invert — §7.2.2)");
}
