//! Cross-checks the analytical stripe-loss probability `P_str` (Appendix
//! B / the general enumerator) against Monte-Carlo sampling through the
//! `stair-arraysim` failure injectors.

use stair_arraysim::montecarlo::estimate_p_str;
use stair_reliability::{p_chk, p_str, BurstModel, Scheme, SectorModel};

fn main() {
    let trials: u64 = std::env::var("STAIR_MC_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let (n, m, r) = (8usize, 1usize, 16usize);
    println!("Monte-Carlo vs analytic P_str, n={n} m={m} r={r}, {trials} trials\n");
    println!(
        "{:>16} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "scheme", "model", "p_sec", "analytic", "sampled", "z-score"
    );
    let cases: Vec<(&str, Scheme)> = vec![
        ("RS", Scheme::reed_solomon()),
        ("STAIR (1)", Scheme::stair(&[1])),
        ("STAIR (1,2)", Scheme::stair(&[1, 2])),
        ("STAIR (4)", Scheme::stair(&[4])),
        ("SD s=2", Scheme::sd(2)),
    ];
    for p_sec in [0.02f64, 0.005] {
        for (name, scheme) in &cases {
            for (mname, model) in [
                ("indep", SectorModel::Independent),
                (
                    "burst",
                    SectorModel::Correlated(BurstModel::from_pareto(0.9, 1.0, r)),
                ),
            ] {
                let pchk = p_chk(&model, p_sec, r);
                let analytic = p_str(scheme, n, m, &pchk);
                let est = estimate_p_str(scheme, n, m, r, p_sec, &model, trials, 4, 0xC0FFEE);
                let z = (est.p - analytic) / est.std_err.max(1e-12);
                println!(
                    "{name:>16} {mname:>12} {p_sec:>10} {analytic:>12.3e} {:>12.3e} {z:>10.2}",
                    est.p
                );
            }
        }
    }
    println!("\n(independent-model rows agree to sampling noise; burst rows carry the");
    println!(" first-order Eq. 15–17 approximation, so |z| can exceed noise slightly)");
}
