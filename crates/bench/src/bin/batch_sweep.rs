//! The batch-size axis: req/s and submission-latency percentiles for
//! single-op vs batched small-block I/O, on every backend of the
//! unified device API — `file:` (a local stripe store), `shards:` (the
//! in-process shard set), and `tcp:` (a loopback server crossing the
//! full protocol stack).
//!
//! Each measurement walks the block space in consecutive single-block
//! ops, submitting them `B` at a time through `BlockDevice::submit`
//! (`B = 1` is the plain `read_at`/`write_at` baseline). Consecutive
//! blocks share stripes, so growing `B` amortizes exactly what the
//! batched data path promises: stripe locks and codec passes locally,
//! request frames over the wire. Expected shape: write req/s grows
//! steeply with `B` (each batch pays one parity decision per stripe
//! instead of one per block, and one round trip per shard instead of
//! one per op); read req/s grows mainly on `tcp:` (locally the clean
//! read path was already cheap).
//!
//! Every `(backend, batch)` cell is measured twice — journal on and
//! journal off (`STAIR_JOURNAL` toggled around store creation) — so
//! the write-ahead journal's overhead is a measured column, not a
//! guess. Reads are unaffected by the journal (no append on the read
//! path); writes pay one record append + fsync per touched stripe.
//!
//! Two more axes ride along. The **skew axis** re-runs every cell with
//! offsets drawn from a seeded distribution (`seq` is the consecutive
//! baseline, `zipf:1.0` the hot-set shape real traffic has) — same op
//! count, same blocks, different order. The **write-back phase**
//! measures what the `cache:` tier's group commit buys at `batch = 1`:
//! the same single-block write workload through a plain store and
//! through `CachedDevice` with `wb=on`, comparing
//! `store.encode_passes` per stripe (the store pays one codec pass per
//! touched stripe per submission, so coalescing N hot writes into one
//! drain divides the encode work by N).
//!
//! Flags: `--json <path>` writes the machine-readable report
//! documented in `EXPERIMENTS.md`.
//!
//! Environment knobs: `STAIR_BATCH_MB` (logical capacity, default 2),
//! `STAIR_BATCH_SIZES` (comma list, default `1,4,16,64,256`),
//! `STAIR_BATCH_BACKENDS` (comma list of `file,shards,tcp`, default all
//! three), `STAIR_BATCH_CODE` (codec spec, default `stair:8,16,2,1-2`),
//! `STAIR_BATCH_SHARDS` (shard count for shards/tcp, default 2),
//! `STAIR_BATCH_DIST` (comma list of `seq|uniform|zipf:<theta>`,
//! default `seq,zipf:1.0`).

use stair_bench::driver::{measure_batched_with, DevMeasurement};
use stair_bench::zipf::Dist;
use stair_cache::{CacheConfig, CachedDevice};
use stair_code::CodecSpec;
use stair_device::BlockDevice;
use stair_net::json::{metrics_json, Json};
use stair_net::{Client, Server, ServerConfig, ShardSet};
use stair_store::{StoreOptions, StripeStore};

/// Seed for the skewed-offset samplers (per-thread offsets derive from
/// it), fixed so regenerated baselines replay the same workload.
const DIST_SEED: u64 = 0x5EED_CAFE;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Measurement {
    backend: &'static str,
    op: &'static str,
    batch: usize,
    journal: bool,
    dist: Dist,
    timing: DevMeasurement,
}

fn main() {
    stair_bench::trace_from_env();
    let json_path = parse_json_flag();
    let mb = env_usize("STAIR_BATCH_MB", 2);
    let shards = env_usize("STAIR_BATCH_SHARDS", 2).max(1);
    let code: CodecSpec = std::env::var("STAIR_BATCH_CODE")
        .unwrap_or_else(|_| "stair:8,16,2,1-2".into())
        .parse()
        .expect("bad STAIR_BATCH_CODE spec");
    let sizes: Vec<usize> = std::env::var("STAIR_BATCH_SIZES")
        .unwrap_or_else(|_| "1,4,16,64,256".into())
        .split(',')
        .map(|s| s.trim().parse().expect("bad STAIR_BATCH_SIZES entry"))
        .collect();
    let backends: Vec<String> = std::env::var("STAIR_BATCH_BACKENDS")
        .unwrap_or_else(|_| "file,shards,tcp".into())
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let dists: Vec<Dist> = std::env::var("STAIR_BATCH_DIST")
        .unwrap_or_else(|_| "seq,zipf:1.0".into())
        .split(',')
        .map(|s| s.trim().parse().expect("bad STAIR_BATCH_DIST entry"))
        .collect();
    let symbol = 512usize;

    let root = std::env::temp_dir().join(format!("stair-batch-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Size stripes so data capacity ≈ the requested MB (per backend).
    let probe_dir = root.join("probe");
    let per_stripe = StripeStore::create(
        &probe_dir,
        &StoreOptions {
            code: code.clone(),
            symbol,
            stripes: 1,
        },
    )
    .expect("probe store")
    .capacity() as usize;
    std::fs::remove_dir_all(&probe_dir).expect("clean probe");

    println!(
        "== batch_sweep: {code}, symbol {symbol}, ~{mb} MiB per backend, batch sizes {sizes:?}"
    );
    let mut results: Vec<Measurement> = Vec::new();
    let mut metrics: Vec<Json> = Vec::new();
    // Journal on first (the shipping default), then off: the journal's
    // enabled flag is read once per store open, so each axis point gets
    // a fresh store created under the right `STAIR_JOURNAL` value.
    for journal in [true, false] {
        std::env::set_var("STAIR_JOURNAL", if journal { "1" } else { "0" });
        for backend in &backends {
            match backend.as_str() {
                "file" => {
                    let stripes = (mb << 20).div_ceil(per_stripe).max(2);
                    let dir = root.join(format!("file-j{}", journal as u8));
                    let store = StripeStore::create(
                        &dir,
                        &StoreOptions {
                            code: code.clone(),
                            symbol,
                            stripes,
                        },
                    )
                    .expect("create store");
                    sweep(
                        "file",
                        &store,
                        &sizes,
                        &dists,
                        journal,
                        &mut results,
                        &mut metrics,
                    );
                    std::fs::remove_dir_all(&dir).expect("cleanup file");
                }
                "shards" => {
                    let stripes = (mb << 20).div_ceil(per_stripe * shards).max(2);
                    let dir = root.join(format!("shards-j{}", journal as u8));
                    let set = ShardSet::create(
                        &dir,
                        shards,
                        &StoreOptions {
                            code: code.clone(),
                            symbol,
                            stripes,
                        },
                    )
                    .expect("create shards");
                    sweep(
                        "shards",
                        &set,
                        &sizes,
                        &dists,
                        journal,
                        &mut results,
                        &mut metrics,
                    );
                    std::fs::remove_dir_all(&dir).expect("cleanup shards");
                }
                "tcp" => {
                    let stripes = (mb << 20).div_ceil(per_stripe * shards).max(2);
                    let dir = root.join(format!("tcp-j{}", journal as u8));
                    let set = ShardSet::create(
                        &dir,
                        shards,
                        &StoreOptions {
                            code: code.clone(),
                            symbol,
                            stripes,
                        },
                    )
                    .expect("create shards");
                    let server =
                        Server::bind("127.0.0.1:0", set, ServerConfig::default()).expect("bind");
                    let addr = server.local_addr().to_string();
                    let handle = server.handle();
                    let running = std::thread::spawn(move || server.run());
                    let client = Client::connect(&addr).expect("connect");
                    sweep(
                        "tcp",
                        &client,
                        &sizes,
                        &dists,
                        journal,
                        &mut results,
                        &mut metrics,
                    );
                    handle.shutdown();
                    running.join().expect("server thread").expect("server run");
                    std::fs::remove_dir_all(&dir).expect("cleanup tcp");
                }
                other => panic!("unknown STAIR_BATCH_BACKENDS entry `{other}`"),
            }
        }
    }
    std::env::remove_var("STAIR_JOURNAL");

    // The write-back phase: what the cache tier's group commit does to
    // the codec bill at batch=1 (the un-batched client the wrapper is
    // for).
    let write_back = measure_write_back(&root, &code, symbol, per_stripe, mb);

    // The headline claim must hold on every backend that ran both ends
    // of the axis: batched writes beat single-op submission on req/s
    // (with the journal on — the shipping configuration). The second
    // line is the journal's measured cost at the batched end.
    for backend in &backends {
        let rate = |batch: usize, journal: bool| {
            results
                .iter()
                .find(|m| {
                    m.backend == backend.as_str()
                        && m.op == "write"
                        && m.batch == batch
                        && m.journal == journal
                        && m.dist == Dist::Seq
                })
                .map(|m| m.timing.req_per_s())
        };
        let last = sizes.last().copied().unwrap_or(sizes[0]);
        if let (Some(single), Some(batched)) = (rate(sizes[0], true), rate(last, true)) {
            println!(
                "-- {backend}: write req/s x{:.1} at batch={last} vs {} (journal on)",
                batched / single,
                sizes[0]
            );
        }
        if let (Some(on), Some(off)) = (rate(last, true), rate(last, false)) {
            println!(
                "-- {backend}: journaled writes retain {:.0}% of un-journaled req/s at batch={last}",
                100.0 * on / off
            );
        }
    }

    if let Some(path) = json_path {
        let report = json_report(
            &code, symbol, shards, &sizes, &dists, &results, write_back, metrics,
        );
        std::fs::write(&path, report.to_text()).expect("write --json report");
        println!("wrote JSON report to {path}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Runs the identical batch=1 single-block write workload twice — once
/// straight into a fresh store, once through `CachedDevice` with the
/// write tier on (1 MiB budget, pressure-drained, final `flush()`) —
/// and compares `store.encode_passes`. Write-through pays one codec
/// pass per block write; the drain coalesces each contiguous run into
/// one `IoBatch`, so the store pays ~one pass per touched stripe per
/// drain.
fn measure_write_back(
    root: &std::path::Path,
    code: &CodecSpec,
    symbol: usize,
    per_stripe: usize,
    mb: usize,
) -> Vec<Json> {
    let stripes = (mb << 20).div_ceil(per_stripe).max(2);
    let opts = StoreOptions {
        code: code.clone(),
        symbol,
        stripes,
    };
    let mut rows = Vec::new();
    for (mode, wb) in [("write_through", false), ("write_back", true)] {
        let dir = root.join(format!("wb-{mode}"));
        let store = StripeStore::create(&dir, &opts).expect("create wb store");
        let capacity = store.capacity() as usize;
        let block = store.block_size();
        let blocks = capacity / block;
        let dev: Box<dyn BlockDevice> = if wb {
            Box::new(CachedDevice::new(store, CacheConfig::from_spec(1, true, 0)))
        } else {
            Box::new(store)
        };
        let payload = vec![0xB7u8; block];
        let grab = |dev: &dyn BlockDevice| {
            let snap = dev.metrics().expect("wb metrics");
            let c = |name: &str| snap.counter(name).unwrap_or(0);
            (
                c("store.encode_passes"),
                c("store.delta_update_calls"),
                c("store.stripe_locks"),
            )
        };
        let before = grab(dev.as_ref());
        for slot in 0..blocks {
            dev.write_at((slot * block) as u64, &payload)
                .expect("wb write");
        }
        dev.flush().expect("wb flush");
        let after = grab(dev.as_ref());
        let (encodes, deltas, locks) = (after.0 - before.0, after.1 - before.1, after.2 - before.2);
        // The codec bill: every write costs either a full-stripe encode
        // or per-cell parity-delta updates. Write-through at batch=1
        // pays one delta call per block; the drain coalesces each
        // stripe's blocks into one submission, whose full-stripe commit
        // is a single encode pass.
        let codec_per_stripe = (encodes + deltas) as f64 / stripes as f64;
        println!(
            "-- write_back: {mode:<13} {blocks} block writes over {stripes} stripes -> \
             {encodes} encodes + {deltas} deltas ({codec_per_stripe:.2} codec passes/stripe), {locks} stripe locks"
        );
        rows.push(Json::obj([
            ("mode", Json::str(mode)),
            ("batch", Json::int(1)),
            ("blocks_written", Json::int(blocks)),
            ("stripes", Json::int(stripes)),
            ("encode_passes", Json::int(encodes as usize)),
            ("delta_update_calls", Json::int(deltas as usize)),
            ("stripe_locks", Json::int(locks as usize)),
            ("codec_passes_per_stripe", Json::Num(codec_per_stripe)),
        ]));
        drop(dev);
        std::fs::remove_dir_all(&dir).expect("cleanup wb");
    }
    rows
}

fn sweep(
    backend: &'static str,
    dev: &dyn BlockDevice,
    sizes: &[usize],
    dists: &[Dist],
    journal: bool,
    results: &mut Vec<Measurement>,
    metrics: &mut Vec<Json>,
) {
    let capacity = dev.capacity() as usize;
    let block = dev.block_size();
    let jtag = if journal { "jrnl+" } else { "jrnl-" };
    for &dist in dists {
        for &batch in sizes {
            // One walk of the block space is capacity/block/batch submit
            // calls — 16 at batch=256 on the default 2 MiB, where a single
            // checkpoint stall would swing the mean by tens of percent. Do
            // enough passes that every cell times ≥256 submissions.
            let per_pass = (capacity / block).div_ceil(batch).max(1);
            let passes = 256usize.div_ceil(per_pass);
            for (op, write) in [("write", true), ("read", false)] {
                let timing = measure_batched_with(
                    &[dev],
                    write,
                    capacity,
                    block,
                    batch,
                    passes,
                    dist,
                    DIST_SEED,
                );
                println!(
                    "{backend:<7} {jtag} {:<8} {op:<5} batch={batch:<3} req/s={:>9.0}  MB/s={:>7.1}  p50={:>7.0}us  p99={:>7.0}us",
                    dist.to_string(),
                    timing.req_per_s(),
                    timing.mb_per_s(),
                    timing.lat_p50_us,
                    timing.lat_p99_us
                );
                results.push(Measurement {
                    backend,
                    op,
                    batch,
                    journal,
                    dist,
                    timing,
                });
            }
        }
    }
    // The backend's own registry view of the sweep, in the same shape
    // `stair dev metrics --json` reports (for `tcp` it crosses the wire
    // via the METRICS opcode, so these are the *server's* counters).
    let snap = dev.metrics().expect("backend metrics");
    metrics.push(Json::obj([
        ("backend", Json::str(backend)),
        ("journal", Json::Bool(journal)),
        ("metrics", metrics_json(&snap)),
    ]));
}

/// `--json <path>` from argv (the only flag this harness takes).
fn parse_json_flag() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: batch_sweep [--json <path>]   (got {other:?})");
            std::process::exit(2);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn json_report(
    code: &CodecSpec,
    symbol: usize,
    shards: usize,
    sizes: &[usize],
    dists: &[Dist],
    results: &[Measurement],
    write_back: Vec<Json>,
    metrics: Vec<Json>,
) -> Json {
    Json::obj([
        ("harness", Json::str("batch_sweep")),
        (
            "config",
            Json::obj([
                ("code", Json::str(code.to_string())),
                ("symbol", Json::int(symbol)),
                ("shards", Json::int(shards)),
                (
                    "batch_sizes",
                    Json::arr(sizes.iter().map(|&b| Json::int(b))),
                ),
                (
                    "journal_axis",
                    Json::arr([Json::Bool(true), Json::Bool(false)]),
                ),
                (
                    "dist_axis",
                    Json::arr(dists.iter().map(|d| Json::str(d.to_string()))),
                ),
                ("dist_seed", Json::int(DIST_SEED as usize)),
            ]),
        ),
        (
            "results",
            Json::arr(results.iter().map(|m| {
                Json::obj([
                    ("backend", Json::str(m.backend)),
                    ("op", Json::str(m.op)),
                    ("batch", Json::int(m.batch)),
                    ("journal", Json::Bool(m.journal)),
                    ("dist", Json::str(m.dist.to_string())),
                    ("req_per_s", Json::Num(m.timing.req_per_s())),
                    ("mb_per_s", Json::Num(m.timing.mb_per_s())),
                    ("lat_p50_us", Json::Num(m.timing.lat_p50_us)),
                    ("lat_p99_us", Json::Num(m.timing.lat_p99_us)),
                    ("lat_max_us", Json::Num(m.timing.lat_max_us)),
                    ("bytes", Json::int(m.timing.bytes)),
                    ("requests", Json::int(m.timing.requests)),
                    ("seconds", Json::Num(m.timing.seconds)),
                ])
            })),
        ),
        ("write_back", Json::arr(write_back)),
        ("metrics", Json::arr(metrics)),
    ])
}
