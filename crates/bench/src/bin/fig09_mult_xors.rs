//! Regenerates **Fig. 9**: `Mult_XOR` counts per stripe of the three
//! encoding methods (standard / upstairs / downstairs) for n = 8, m = 2,
//! s = 4, across all e and r ∈ {8, 16, 24, 32}.

use stair::{Config, MultXorCounts, StairCodec};
use stair_bench::partitions;

fn main() {
    let (n, m, s) = (8, 2, 4);
    println!("Fig. 9: Mult_XORs per stripe, n={n} m={m} s={s}");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "e", "r", "Standard", "Upstairs", "Downstairs"
    );
    for r in [8usize, 16, 24, 32] {
        for e in partitions(s) {
            let Ok(config) = Config::new(n, r, m, &e) else {
                continue;
            };
            let codec: StairCodec = StairCodec::new(config.clone()).expect("codec");
            let mut counts = MultXorCounts::analytic(&config);
            counts.standard = codec.relations().standard_mult_xors();
            println!(
                "{:>12} {:>10} {:>10} {:>10} {:>10}",
                format!("{e:?}"),
                r,
                counts.standard,
                counts.upstairs,
                counts.downstairs
            );
        }
        println!();
    }
    println!("(paper: upstairs grows with e_max, downstairs with m'; reuse methods beat");
    println!(" standard most of the time — §5.3)");
}
